#!/usr/bin/env python3
"""Multiple-failure study (Sec. 4.3.2 of the paper).

The paper argues that at reported datacenter failure rates, failures
within one training run are rare and far apart, so their effects are
independent and the single-failure necessary conditions still apply.
This example:

1. computes the expected failure count for a realistic run;
2. injects several spread-out transient faults into one training run;
3. shows the detector + two-iteration re-execution handling each
   independently.

Run:  python examples/multi_fault_study.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.ffs import FFDescriptor
from repro.core.faults import (
    HardwareFault,
    MultiFaultInjector,
    OpSite,
    expected_faults_per_run,
)
from repro.core.mitigation import (
    HardwareFailureDetector,
    MitigationHook,
    RecoveryManager,
)
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload


def main() -> None:
    # ------------------------------------------------------------------
    # 1. How many failures should a run expect?
    # ------------------------------------------------------------------
    print("expected hardware failures per training run "
          "(rate: 1e-4 failures/device-hour):")
    for iterations, seconds, devices, label in [
        (50_000, 0.2, 8, "mid-sized DNN (the paper's majority case)"),
        (500_000, 1.0, 256, "large-scale pretraining run"),
    ]:
        expected = expected_faults_per_run(iterations, seconds, devices)
        print(f"  {label}: {expected:.2f}")
    print("  -> mid-sized runs see at most ~one failure; large runs see a")
    print("     few, far apart (Sec. 4.3.2's independence argument)\n")

    # ------------------------------------------------------------------
    # 2. Three spread-out faults in one run, with mitigation.
    # ------------------------------------------------------------------
    spec = build_workload("resnet", size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=4, seed=0,
                                      test_every=10, stop_on_nonfinite=False)
    ff = FFDescriptor("global_control", group=1, has_feedback=True)
    faults = [
        HardwareFault(ff=ff, site=OpSite("1.conv1", "weight_grad"),
                      iteration=10, device=1, seed=3),
        HardwareFault(ff=ff, site=OpSite("2.conv2", "weight_grad"),
                      iteration=30, device=2, seed=5),
        HardwareFault(ff=ff, site=OpSite("1.conv2", "weight_grad"),
                      iteration=50, device=0, seed=3),
    ]
    multi = MultiFaultInjector(faults)
    detector = HardwareFailureDetector()
    trainer.add_hook(multi)
    trainer.add_hook(MitigationHook(detector, RecoveryManager(max_recoveries=10)))
    trainer.train(70)

    print(f"faults fired: {multi.fired_count}/3")
    print(f"detections at iterations: {trainer.record.detections}")
    print(f"re-executions from iterations: {trainer.record.recoveries}")
    print(f"history state after the run: "
          f"{trainer.optimizer.history_magnitude():.3e} (clean)")
    print(f"final train accuracy: {trainer.record.final_train_accuracy():.2f}")

    clean = SyncDataParallelTrainer(build_workload("resnet", size="tiny", seed=0),
                                    num_devices=4, seed=0, test_every=10)
    clean.train(70)
    print(f"fault-free final accuracy:  "
          f"{clean.record.final_train_accuracy():.2f}")


if __name__ == "__main__":
    main()
