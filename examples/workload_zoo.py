#!/usr/bin/env python3
"""Train every Table 2 workload and print a convergence summary.

Demonstrates the breadth of the substrate: four ResNet configurations
(the paper's BN / NoBN / SGD / LargeDecay ablation axes), DenseNet,
EfficientNet, NFNet, a YOLO-style detector, an LSTM maze navigator, and a
Transformer — all running on the simulated synchronous data-parallel
trainer.

Run:  python examples/workload_zoo.py [tiny|small]
"""

from __future__ import annotations

import sys
import time

from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload, workload_names


def main(size: str = "tiny") -> None:
    print(f"{'workload':<20s} {'params':>8s} {'iters':>6s} "
          f"{'start':>6s} {'final':>6s} {'test':>6s} {'time':>7s}")
    print("-" * 66)
    for name in workload_names():
        spec = build_workload(name, size=size, seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=4, seed=0,
                                          test_every=max(spec.iterations // 5, 1))
        start = time.perf_counter()
        record = trainer.train()
        elapsed = time.perf_counter() - start
        print(f"{name:<20s} {trainer.master.num_parameters():>8d} "
              f"{spec.iterations:>6d} {record.train_acc[0]:>6.2f} "
              f"{record.final_train_accuracy():>6.2f} "
              f"{record.final_test_accuracy():>6.2f} {elapsed:>6.1f}s")
    print()
    print("Notes: resnet_largedecay's test accuracy trails its training")
    print("accuracy because BatchNorm moving statistics converge slowly at")
    print("decay 0.99 — the same slowness that makes it the LowTestAccuracy")
    print("workload when a fault corrupts those statistics.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
