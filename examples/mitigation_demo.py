#!/usr/bin/env python3
"""Mitigation demo: Algorithm 1 bounds + two-iteration re-execution.

Runs the same history-corrupting fault as examples/quickstart.py three
ways:

* unprotected — the fault corrupts Adam's history state permanently;
* detection only — the bound check flags it within two iterations;
* detection + recovery — training rewinds two iterations, re-executes
  them cleanly, and finishes indistinguishable from the fault-free run.

Run:  python examples/mitigation_demo.py
"""

from __future__ import annotations

from repro.accelerator.ffs import FFDescriptor
from repro.core.faults import FaultInjector, HardwareFault, OpSite
from repro.core.mitigation import (
    HardwareFailureDetector,
    MitigationHook,
    RecoveryManager,
    derive_bounds_for_trainer,
)
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload

NUM_DEVICES = 4
INJECT_AT = 20
TOTAL = 60


def make_fault() -> HardwareFault:
    return HardwareFault(
        ff=FFDescriptor("global_control", group=1, has_feedback=True),
        site=OpSite("1.conv1", "weight_grad"),
        iteration=INJECT_AT, device=1, seed=3,
    )


def make_trainer() -> SyncDataParallelTrainer:
    spec = build_workload("resnet", size="tiny", seed=0)
    return SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                   test_every=10, eval_device=1)


def main() -> None:
    # ------------------------------------------------------------------
    # The derived bounds (Algorithm 1) for this workload.
    # ------------------------------------------------------------------
    probe = make_trainer()
    probe.train(2)
    bounds = derive_bounds_for_trainer(probe)
    print("Algorithm 1 bounds for this workload:")
    print(f"  gradient-history bound 20*sqrt(n_l)/m = {bounds.history_bound:.3f}")
    print(f"  mvar bound (1 + N_l eta^2 k^2)^l      = {bounds.mvar_bound:.3f}")
    print(f"  (checked with slack {bounds.slack:.0f}x; Table 4 faulty values "
          "are 1e8-1e38)")

    # ------------------------------------------------------------------
    # 1. Unprotected.
    # ------------------------------------------------------------------
    trainer = make_trainer()
    trainer.add_hook(FaultInjector(make_fault()))
    trainer.train(TOTAL)
    print("\n[unprotected]")
    print(f"  history magnitude after fault: "
          f"{trainer.optimizer.history_magnitude():.3e}  <- corrupted state "
          "persists")
    print(f"  final train acc {trainer.record.final_train_accuracy():.2f}")

    # ------------------------------------------------------------------
    # 2. Detection only.
    # ------------------------------------------------------------------
    trainer = make_trainer()
    detector = HardwareFailureDetector()
    trainer.add_hook(FaultInjector(make_fault()))
    trainer.add_hook(detector)
    trainer.train(TOTAL)
    event = detector.events[0]
    print("\n[detection only]")
    print(f"  {event.describe()}")
    print(f"  detection latency: {detector.detection_latency(INJECT_AT)} "
          "iterations (the paper guarantees <= 2)")

    # ------------------------------------------------------------------
    # 3. Detection + two-iteration re-execution.
    # ------------------------------------------------------------------
    trainer = make_trainer()
    detector = HardwareFailureDetector()
    mitigation = MitigationHook(detector, RecoveryManager(strategy="snapshot"))
    trainer.add_hook(FaultInjector(make_fault()))
    trainer.add_hook(mitigation)
    trainer.train(TOTAL)
    print("\n[detection + recovery]")
    print(f"  detections at {trainer.record.detections}, "
          f"re-executed from {trainer.record.recoveries}")
    print(f"  history magnitude after recovery: "
          f"{trainer.optimizer.history_magnitude():.3e}  <- clean")
    print(f"  final train acc {trainer.record.final_train_accuracy():.2f}")

    clean = make_trainer()
    clean.train(TOTAL)
    print(f"\nfault-free final train acc for comparison: "
          f"{clean.record.final_train_accuracy():.2f}")


if __name__ == "__main__":
    main()
