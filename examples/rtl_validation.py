#!/usr/bin/env python3
"""Software-fault-model validation against the micro-RTL simulator.

A miniature of the paper's Sec. 3.2.3 validation: inject bit flips into
named flip-flops of a cycle-accurate MAC-array model (accumulators,
operand registers, valid signals, address counters), diff the output
against the golden run, and check that every non-masked fault's faulty
element positions match the software fault model's prediction.

Run:  python examples/rtl_validation.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.rtl import MACArraySimulator, RTLFault
from repro.core.faults.validation import predicted_positions_for, run_validation


def main() -> None:
    # ------------------------------------------------------------------
    # One fault, step by step.
    # ------------------------------------------------------------------
    sim = MACArraySimulator()
    rng = np.random.default_rng(0)
    m, k, f = 6, 96, 24
    x = rng.normal(size=(m, k)).astype(np.float32)
    w = rng.normal(0, 0.1, size=(k, f)).astype(np.float32)
    golden = sim.run(x, w)

    fault = RTLFault("acc", cycle=sim.write_micro_cycle(0, k), index=3, bit=30)
    faulty = sim.run(x, w, fault)
    diff = sim.diff_positions(golden, faulty)
    predicted = predicted_positions_for(fault, sim, m, k, f)
    print("single experiment: flip bit 30 of MAC lane 3's accumulator at "
          "the write cycle")
    print(f"  RTL faulty positions:        {diff.tolist()}")
    print(f"  software model's prediction: {predicted.tolist()}")
    print(f"  golden value {golden.reshape(-1)[diff[0]]:.4f} -> "
          f"faulty value {faulty.reshape(-1)[diff[0]]:.4e}")

    # ------------------------------------------------------------------
    # The statistical validation campaign.
    # ------------------------------------------------------------------
    print("\nrunning 400 random RTL fault injections...")
    summary = run_validation(num_experiments=400, m=m, k=k, f=f, seed=0)
    print(f"  masked by hardware:  {summary.masked}")
    print(f"  matched prediction:  {summary.matched}")
    print(f"  mismatched:          {summary.mismatched}")
    print(f"  match rate on non-masked faults: {summary.match_rate:.1%}")
    print("\n(the paper: 40K RTL experiments, all non-masked faults matched;")
    print(" estimated <1 in 1M faults mis-modeled at 99% confidence)")


if __name__ == "__main__":
    main()
