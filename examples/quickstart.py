#!/usr/bin/env python3
"""Quickstart: train a workload, inject one hardware fault, observe it.

Reproduces the core loop of the paper in under a minute:

1. build a Table 2 workload (miniature ResNet on synthetic images);
2. train it fault-free on 4 simulated devices;
3. inject a single-cycle single-FF bit flip (a Table 1 group-1 control
   fault) into one device's backward pass;
4. watch the optimizer's gradient-history values blow up — the paper's
   necessary condition for the SlowDegrade outcome — and classify the
   resulting convergence trace.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.accelerator.ffs import FFDescriptor
from repro.core.analysis.classify import classify_outcome
from repro.core.faults import FaultInjector, HardwareFault, OpSite
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload

NUM_DEVICES = 4
INJECT_AT = 20
TOTAL = 60


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A fault-free reference run.
    # ------------------------------------------------------------------
    spec = build_workload("resnet", size="tiny", seed=0)
    print(f"workload: {spec.name} — {spec.describe()}")

    reference = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                        test_every=10)
    reference.train(TOTAL)
    print(f"fault-free: final train acc "
          f"{reference.record.final_train_accuracy():.2f}, "
          f"test acc {reference.record.final_test_accuracy():.2f}")

    # ------------------------------------------------------------------
    # 2. The same run with one hardware fault injected.
    # ------------------------------------------------------------------
    spec = build_workload("resnet", size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=10, eval_device=1)

    # A single-cycle bit flip in a global control FF (Table 1 group 1):
    # the output-valid signal flips and a burst of MAC outputs take random
    # values spanning the float32 dynamic range.  It lands in the backward
    # pass (a weight-gradient tensor) of device 1 at iteration 20.
    fault = HardwareFault(
        ff=FFDescriptor("global_control", group=1, has_feedback=True),
        site=OpSite("1.conv1", "weight_grad"),
        iteration=INJECT_AT,
        device=1,
        seed=3,
    )
    injector = FaultInjector(fault)
    trainer.add_hook(injector)
    trainer.train(TOTAL)

    print(f"\ninjected: {fault.describe()}")
    record = injector.record
    print(f"fault effect: {record.num_faulty} faulty elements, "
          f"max |value| {record.max_abs_faulty():.3e}")
    print(f"optimizer history magnitude now: "
          f"{trainer.optimizer.history_magnitude():.3e} "
          f"(fault-free: {reference.optimizer.history_magnitude():.3e})")

    # ------------------------------------------------------------------
    # 3. Classify the outcome against the reference (Table 3 taxonomy).
    # ------------------------------------------------------------------
    report = classify_outcome(trainer.record, reference.record, INJECT_AT)
    print(f"\noutcome: {report.outcome.value} "
          f"(unexpected: {report.is_unexpected})")
    print(f"final train acc {trainer.record.final_train_accuracy():.2f}, "
          f"test acc {trainer.record.final_test_accuracy():.2f}")
    print("\nNext: examples/mitigation_demo.py shows the paper's detection")
    print("and two-iteration re-execution recovering this exact fault.")


if __name__ == "__main__":
    main()
