#!/usr/bin/env python3
"""Statistical fault-injection campaign (a miniature of the paper's 2.9M
experiments).

Samples random hardware faults — FF from the inventory (Table 1
populations), op site, training iteration, device — injects each into a
fresh copy of the workload resumed from a shared baseline, and prints the
Fig. 3-style outcome breakdown with confidence intervals, the Sec. 4.3.1
FF-class stratification, and the Table 4 condition ranges.

Run:  python examples/fault_campaign.py [num_experiments]
"""

from __future__ import annotations

import sys

from repro.core.analysis.stats import unobserved_outcome_bound
from repro.core.faults import Campaign
from repro.workloads import build_workload


def main(num_experiments: int = 40) -> None:
    spec = build_workload("resnet", size="tiny", seed=0)
    campaign = Campaign(spec, num_devices=4, seed=0, warmup_iterations=15,
                        horizon=45, inject_window=10, test_every=10)
    print(f"preparing baseline ({campaign.warmup_iterations} warm-up + "
          f"{campaign.horizon} reference iterations)...")
    campaign.prepare()

    print(f"running {num_experiments} fault-injection experiments...")
    result = campaign.run(num_experiments, seed=77)

    print("\noutcome breakdown (normalized to total experiments, Fig. 3):")
    for outcome, fraction in sorted(result.breakdown().items(),
                                    key=lambda kv: -kv[1]):
        if fraction > 0:
            print(f"  {outcome:<24s} {fraction:6.1%}")

    interval = result.unexpected_interval()
    print(f"\nunexpected-outcome rate: {result.unexpected_fraction():.1%} "
          f"(99% CI [{interval.low:.1%}, {interval.high:.1%}]; "
          f"paper: 9.7%-17.7% at >100K experiments per workload)")
    print(f"probability of an unseen outcome class: "
          f"< {unobserved_outcome_bound(result.num_experiments):.1%} "
          "(99.5% confidence)")

    print("\ncontribution by FF class (Sec. 4.3.1):")
    for category, stats in result.by_ff_category().items():
        print(f"  {category:<18s} population {stats['population_fraction']:5.1%}  "
              f"share of unexpected {stats['unexpected_share']:5.1%}")

    ranges = result.condition_ranges()
    if ranges:
        print("\nnecessary-condition ranges observed (Table 4):")
        for outcome, (lo, hi) in ranges.items():
            print(f"  {outcome:<24s} {lo:.2e} .. {hi:.2e}")
    else:
        print("\nno latent outcomes in this sample (they are a few percent "
              "of experiments; increase num_experiments)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
