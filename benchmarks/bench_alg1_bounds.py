"""Algorithm 1: the mathematically derived detection bounds.

For every Adam workload, derives the gradient-history bound
``20*sqrt(n_l)/m`` and the mvar bound ``(1 + N_l eta^2 k^2)^l``, trains
fault-free, and reports the margin between the largest observed
history/mvar values and the bounds — versus the margin to the smallest
Table 4 faulty magnitude (2.7e8).  The separation is what gives the
detector zero false positives and full condition coverage.
"""

from __future__ import annotations

from _report import emit, header, paper_vs_measured, table
from conftest import NUM_DEVICES
from repro.core.mitigation import derive_bounds_for_trainer
from repro.distributed import SyncDataParallelTrainer
from repro.optim.base import max_abs
from repro.workloads import build_workload

ADAM_WORKLOADS = ["resnet", "resnet_nobn", "resnet_largedecay", "densenet",
                  "efficientnet", "nfnet", "yolo", "multigrid", "transformer"]
SMALLEST_FAULTY = 2.7e8  # smallest Table 4 magnitude


def bench_alg1_bounds(benchmark):
    rows = []
    all_within = True
    for name in ADAM_WORKLOADS:
        spec = build_workload(name, size="tiny", seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                          test_every=0)
        trainer.train()
        bounds = derive_bounds_for_trainer(trainer, slack=100.0)
        first = max_abs(trainer.optimizer.first_moment_arrays())
        second = max_abs(trainer.optimizer.second_moment_arrays())
        mvar = trainer.mvar_magnitude()
        within = (
            first < bounds.effective_history_bound
            and second < bounds.effective_second_moment_bound
            and (not spec.has_batchnorm or mvar < bounds.effective_mvar_bound)
        )
        all_within = all_within and within
        rows.append({
            "workload": name,
            "history bound": bounds.history_bound,
            "max|m| observed": first,
            "max|v| observed": second,
            "mvar bound": bounds.mvar_bound if spec.has_batchnorm else "-",
            "max|mvar| observed": mvar if spec.has_batchnorm else "-",
            "fault-free within bounds": within,
        })

    header("Algorithm 1 — derived bounds vs. fault-free observations "
           "(slack 100x applied at check time)")
    table(rows, floatfmt="{:.3g}")
    emit()

    worst_bound = max(
        r["history bound"] * 100 for r in rows
    )
    paper_vs_measured(
        "fault-free values stay within bounds with overwhelming margin",
        "P(|m_t| > 20*sqrt(n_l)/m) < 3e-89 under Properties 1-4",
        f"all {len(rows)} workloads within slacked bounds: {all_within}; "
        f"largest slacked bound {worst_bound:.3g} vs smallest Table 4 "
        f"faulty magnitude {SMALLEST_FAULTY:.1g} "
        f"({SMALLEST_FAULTY / worst_bound:.1g}x separation)",
        all_within and worst_bound * 10 < SMALLEST_FAULTY,
    )
    assert all_within

    spec = build_workload("resnet", size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=0)
    trainer.train(2)
    benchmark(lambda: derive_bounds_for_trainer(trainer))
