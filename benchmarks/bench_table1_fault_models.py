"""Table 1: the software fault-model inventory.

Regenerates Table 1's structure — every fault-model group with its FF
population fraction and its observed behaviour (faulty-element counts and
value character) when applied to a representative conv-layer output — and
benchmarks the fault-application hot path.
"""

from __future__ import annotations

import numpy as np

from _report import header, table
from repro.accelerator.ffs import GLOBAL_GROUP_FRACTIONS, FFDescriptor
from repro.core.faults.software_models import (
    GLOBAL_GROUP_MODELS,
    DatapathBitFlip,
    LocalControlFault,
)

#: A conv-activation-sized tensor: shard batch 8, 32 channels, 16x16.
TENSOR_SHAPE = (8, 32, 16, 16)

DESCRIPTIONS = {
    1: "all lane outputs <- random values spanning dynamic range, n cycles",
    2: "all lane outputs <- 0, n cycles",
    3: "one MAC lane's output <- random value per cycle, n cycles",
    4: "outputs written to wrong addresses (relative positions kept)",
    5: "input-1 reads from wrong addresses -> wrong-but-plausible outputs",
    6: "input-2 reads from wrong addresses -> wrong-but-plausible outputs",
    7: "input-1 reads return zeros -> outputs lose partial sums",
    8: "input-2 reads return zeros -> outputs lose partial sums",
    9: "input-1 valid drops -> stale operand reuse",
    10: "input-2 valid drops -> stale operand reuse",
}


def _characterize(model, ff, tensor, trials=40):
    rng_master = np.random.default_rng(1234)
    counts, max_abs = [], 0.0
    for _ in range(trials):
        seed = int(rng_master.integers(0, 2**31))
        _, record = model.apply(tensor, np.random.default_rng(seed), ff)
        counts.append(record.num_faulty)
        value = record.max_abs_faulty()
        if np.isfinite(value):
            max_abs = max(max_abs, value)
        else:
            max_abs = float("inf")
    return {
        "mean_faulty_elems": float(np.mean(counts)),
        "max_faulty_elems": int(np.max(counts)),
        "max_abs_value": max_abs,
    }


def bench_table1_inventory(benchmark):
    rng = np.random.default_rng(0)
    tensor = rng.normal(size=TENSOR_SHAPE).astype(np.float32)

    rows = []
    for group in sorted(GLOBAL_GROUP_MODELS):
        ff = FFDescriptor("global_control", group=group, has_feedback=True)
        model = GLOBAL_GROUP_MODELS[group]()
        stats = _characterize(model, ff, tensor)
        rows.append({
            "group": group,
            "%FFs": 100 * GLOBAL_GROUP_FRACTIONS[group],
            **stats,
            "behaviour": DESCRIPTIONS[group],
        })
    for name, model, ff in [
        ("datapath", DatapathBitFlip(), FFDescriptor("datapath", bit=30)),
        ("local_ctl", LocalControlFault(),
         FFDescriptor("local_control", has_feedback=True)),
    ]:
        stats = _characterize(model, ff, tensor)
        rows.append({"group": name, "%FFs": "-", **stats,
                     "behaviour": "FIdelity-style single-register fault"})

    header("Table 1 — software fault models (tiny conv tensor "
           f"{TENSOR_SHAPE}, 40 seeded applications each)")
    table(rows)

    # Hot path: one group-1 application per call.
    ff1 = FFDescriptor("global_control", group=1, has_feedback=True)
    model1 = GLOBAL_GROUP_MODELS[1]()
    seeds = iter(range(10_000_000))

    def apply_once():
        model1.apply(tensor, np.random.default_rng(next(seeds)), ff1)

    benchmark(apply_once)
