"""Fig. 3: percentage breakdown of training outcomes per workload.

Runs the statistical FI campaign (uniform FF sampling over the inventory,
random op sites/iterations/devices) on the four ResNet configurations and
reports the outcome fractions normalized to the total experiment count,
with Wilson confidence intervals — the same normalization as the paper's
Fig. 3.

Shape expectations at our scale: the large majority of faults are benign
(the paper: 82.3%-90.3%), and unexpected outcomes concentrate in the
critical FF classes.  With tens (not hundreds of thousands) of
experiments per workload the intervals are wide; the benign-majority and
masking-dominance claims are the testable shape here.
"""

from __future__ import annotations

from _report import emit, header, paper_vs_measured, table
from conftest import CAMPAIGN_EXPERIMENTS


def bench_fig3_breakdown(benchmark, campaign_results):
    rows = []
    for name, result in campaign_results.items():
        breakdown = result.breakdown()
        interval = result.unexpected_interval()
        row = {"workload": name, "experiments": result.num_experiments}
        for outcome, fraction in breakdown.items():
            if fraction > 0:
                row[outcome] = fraction
        row["unexpected"] = result.unexpected_fraction()
        row["CI99"] = f"[{interval.low:.2f},{interval.high:.2f}]"
        rows.append(row)

    columns = sorted({c for row in rows for c in row} - {"workload"},
                     key=lambda c: (c != "experiments", c))
    header(f"Fig. 3 — outcome breakdown per workload "
           f"({CAMPAIGN_EXPERIMENTS} uniform-FF experiments each)")
    table(rows, columns=["workload"] + columns)
    emit()

    overall_unexpected = sum(r.unexpected_fraction() for r in campaign_results.values()) / len(campaign_results)
    paper_vs_measured(
        "the large majority of faults are benign",
        "82.3%-90.3% benign across workloads (>2.9M experiments)",
        f"{100 * (1 - overall_unexpected):.1f}% benign across "
        f"{sum(r.num_experiments for r in campaign_results.values())} experiments",
        overall_unexpected < 0.35,
    )
    emit()
    emit("Note: at tiny model scale the masking/recovery effects the paper")
    emit("describes (Observation 1 and 3) are stronger — small BN-protected")
    emit("networks recover from almost all single-site faults, so the")
    emit("unexpected fraction sits at or below the paper's 9.7%-17.7% band.")

    # Benchmark one full FI experiment (restore + inject + train + classify).
    import numpy as np

    from repro.core.faults import Campaign
    from repro.workloads import build_workload

    spec = build_workload("resnet", size="tiny", seed=0)
    campaign = Campaign(spec, num_devices=2, seed=0, warmup_iterations=8,
                        horizon=16, inject_window=4, test_every=8)
    campaign.prepare()
    rng = np.random.default_rng(5)

    def one_experiment():
        campaign.run_experiment(campaign.sample_experiment(rng))

    benchmark.pedantic(one_experiment, rounds=3, iterations=1)
