"""Sec. 4.1's extended-training recovery claim.

The paper: benign-category cases with slight degradation "by and large
correspond to those where faults were injected late in the training
process.  For these cases, when we increased the training time by
10% / 17% ... the training/test accuracy differed by only less than
2% / 0.5% from that of the corresponding fault-free runs."

This bench injects a moderate fault late in training, measures the
accuracy deficit at the nominal budget, then extends training by ~10%
and ~17% and measures how much of the deficit the extra iterations
recover.
"""

from __future__ import annotations

from _report import emit, header, paper_vs_measured, table
from conftest import NUM_DEVICES
from bench_fig2_latent_outcomes import ControlledFault
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload

BUDGET = 60
INJECT_AT = 50          # "late in the training process"
EXTENSIONS = (0.10, 0.17)


def _run(extra_iterations: int, with_fault: bool):
    spec = build_workload("resnet_nobn", size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=10, stop_on_nonfinite=False)
    if with_fault:
        trainer.add_hook(ControlledFault("2.conv1", "input_grad", INJECT_AT,
                                         device=1, magnitude=1e10,
                                         elements=512, seed=4, coherent=True))
    trainer.train(BUDGET + extra_iterations)
    return trainer.record


def bench_recovery_extension(benchmark):
    rows = []
    deltas = {}
    for extension in (0.0,) + EXTENSIONS:
        extra = int(round(BUDGET * extension))
        faulty = _run(extra, with_fault=True)
        clean = _run(extra, with_fault=False)
        delta = clean.final_train_accuracy() - faulty.final_train_accuracy()
        test_delta = clean.final_test_accuracy() - faulty.final_test_accuracy()
        deltas[extension] = delta
        rows.append({
            "training budget": f"{BUDGET}+{extra} ({extension:.0%} extra)",
            "clean final acc": clean.final_train_accuracy(),
            "faulty final acc": faulty.final_train_accuracy(),
            "train deficit": delta,
            "test deficit": test_delta,
        })

    header("Sec. 4.1 — late faults recover with extended training "
           f"(fault at iteration {INJECT_AT} of {BUDGET})")
    table(rows)
    emit()
    paper_vs_measured(
        "extra training time shrinks the late-fault deficit",
        "+10% training time -> within 2% of fault-free; +17% -> within 0.5%",
        f"deficit at nominal budget {deltas[0.0]:+.3f}; "
        f"at +10% {deltas[0.10]:+.3f}; at +17% {deltas[0.17]:+.3f}",
        deltas[0.17] <= deltas[0.0] + 1e-9,
    )
    assert deltas[0.17] <= max(deltas[0.0], 0.02) + 0.05

    benchmark.pedantic(lambda: _run(0, with_fault=True), rounds=2, iterations=1)
