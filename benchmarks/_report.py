"""Reporting helpers shared by the benchmark harness.

Each benchmark regenerates one table or figure of the paper and emits a
textual version of it.  pytest captures stdout (even file descriptor 1),
so lines are buffered here and flushed by the ``pytest_terminal_summary``
hook in ``benchmarks/conftest.py`` — they appear at the end of
``pytest benchmarks/ --benchmark-only | tee bench_output.txt``.

Benchmarks can additionally persist their measurements as
machine-readable ``BENCH_<name>.json`` artifacts (:func:`write_artifact`)
so CI and trend tooling can track them without scraping the text.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.bench.provenance import run_provenance

#: Buffered report lines, flushed at terminal summary.
LINES: list[str] = []

#: One provenance stamp per harness run, shared by every artifact and
#: the text report banner (computed lazily, cached).
_PROVENANCE: dict | None = None


def provenance() -> dict:
    """The run's shared provenance stamp (git SHA, time, host, python)."""
    global _PROVENANCE
    if _PROVENANCE is None:
        _PROVENANCE = run_provenance()
    return _PROVENANCE


def provenance_banner() -> str:
    """One report line identifying where these measurements came from."""
    stamp = provenance()
    return (f"provenance: {stamp['git_sha'][:12]} @ {stamp['timestamp']} "
            f"on {stamp['host']} (python {stamp['python']})")


def write_artifact(name: str, data: dict) -> Path:
    """Persist one benchmark's measurements as ``BENCH_<name>.json``.

    The artifact lands in ``$BENCH_ARTIFACT_DIR`` (default: the current
    working directory), stamped with the run's provenance so ``repro
    bench record`` can attach each number to a commit, and its path is
    echoed into the text report.
    """
    directory = Path(os.environ.get("BENCH_ARTIFACT_DIR", "."))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    stamped = {**data, "provenance": provenance()}
    path.write_text(json.dumps(stamped, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    emit(f"artifact -> {path}")
    return path


def emit(text: str = "") -> None:
    """Buffer a report line for the terminal summary."""
    LINES.append(text)


def header(title: str) -> None:
    emit()
    emit("=" * 78)
    emit(title)
    emit("=" * 78)


def table(rows: list[dict], columns: list[str] | None = None,
          floatfmt: str = "{:.4g}") -> None:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        emit("(no rows)")
        return
    columns = columns or list(rows[0])

    def fmt(value) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    emit("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    emit("  ".join("-" * w for w in widths))
    for row in rendered:
        emit("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def paper_vs_measured(claim: str, paper: str, measured: str, holds: bool) -> None:
    status = "OK " if holds else "DIFF"
    emit(f"[{status}] {claim}")
    emit(f"       paper:    {paper}")
    emit(f"       measured: {measured}")
