"""Ablation: optimizer choice gates which latent outcomes are reachable.

Observation 3 of the paper: "the SlowDegrade and SharpSlowDegrade
outcomes can only be generated if the optimizer normalizes gradients
using gradient history values, while the SharpDegrade outcome can only
occur if the optimizer does not."

This ablation injects the *same* large backward-pass gradient fault under
Adam, RMSProp (both normalizing) and plain SGD (non-normalizing) and
contrasts the mechanisms:

* normalizing optimizers absorb the gradient into history state — the
  weights stay bounded but the history carries the fault forward;
* SGD applies the faulty gradient to the weights at full magnitude —
  weights explode instantly, history (there is none) stays empty.
"""

from __future__ import annotations

import numpy as np

from _report import emit, header, paper_vs_measured, table
from conftest import NUM_DEVICES
from bench_fig2_latent_outcomes import ControlledFault
from repro.distributed import SyncDataParallelTrainer
from repro.optim import SGD, Adam, RMSProp
from repro.workloads import build_workload

INJECT_AT = 15
MAGNITUDE = 1e10


def _run(optimizer_factory, label):
    spec = build_workload("resnet", size="tiny", seed=0)
    spec.optimizer_fn = optimizer_factory
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=0, stop_on_nonfinite=False)
    trainer.add_hook(ControlledFault("1.conv1", "weight_grad", INJECT_AT,
                                     device=0, magnitude=MAGNITUDE,
                                     elements=64, seed=7))
    trainer.train(INJECT_AT + 5)
    max_weight = max(
        float(np.abs(np.nan_to_num(p.data, nan=3e38, posinf=3e38,
                                   neginf=-3e38)).max())
        for p in trainer.master.parameters()
    )
    return {
        "optimizer": label,
        "normalizes": trainer.optimizer.normalizes_gradients(),
        "max|weight| after fault": max_weight,
        "max|history| after fault": trainer.optimizer.history_magnitude(),
    }


def bench_ablation_optimizer(benchmark):
    rows = [
        _run(lambda p: Adam(p, lr=3e-3), "Adam"),
        _run(lambda p: RMSProp(p, lr=3e-3), "RMSProp"),
        _run(lambda p: SGD(p, lr=0.05), "SGD (plain)"),
        _run(lambda p: SGD(p, lr=0.05, momentum=0.9), "SGD + momentum"),
    ]
    header(f"Ablation — the same backward-pass fault (|g|={MAGNITUDE:.0e}) "
           "under different optimizers")
    table(rows, floatfmt="{:.3g}")
    emit()
    emit("Normalizing optimizers (Adam, RMSProp) keep weights bounded and")
    emit("store the fault in their history terms (SlowDegrade territory);")
    emit("plain SGD writes lr*g straight into the weights (SharpDegrade /")
    emit("short-term INFs-NaNs territory); SGD+momentum is between: the")
    emit("velocity is a history term but it is not used to normalize, so")
    emit("the weights still take the full hit.")

    adam, rms, sgd, sgdm = rows
    paper_vs_measured(
        "history-normalizing optimizers gate SlowDegrade; non-normalizing "
        "ones gate SharpDegrade (Observation 3)",
        "SlowDegrade/SharpSlowDegrade require gradient normalization; "
        "SharpDegrade requires its absence",
        f"weights after fault: Adam {adam['max|weight| after fault']:.2g}, "
        f"RMSProp {rms['max|weight| after fault']:.2g}, "
        f"SGD {sgd['max|weight| after fault']:.2g}; "
        f"history after fault: Adam {adam['max|history| after fault']:.2g}, "
        f"SGD {sgd['max|history| after fault']:.2g}",
        adam["max|weight| after fault"] < 1e3
        and rms["max|weight| after fault"] < 1e3
        and sgd["max|weight| after fault"] > 1e6
        and adam["max|history| after fault"] > 1e6,
    )
    assert sgd["max|weight| after fault"] > adam["max|weight| after fault"] * 1e3

    benchmark.pedantic(lambda: _run(lambda p: Adam(p, lr=3e-3), "Adam"),
                       rounds=2, iterations=1)
