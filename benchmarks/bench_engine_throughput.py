"""Engine throughput: serial vs parallel campaign execution.

The paper's >2.9M-experiment characterization (Sec. 3.3) is only
practical because experiments are embarrassingly parallel: each one
restores the same warmed-up snapshot, injects one seeded fault, and
trains independently.  This benchmark measures the campaign engine's
experiments/sec at 1 worker (in-process) and at ``PARALLEL`` forked
workers on the same seeded experiment list, and checks the determinism
contract: identical outcome breakdowns at every worker count.

Speedup scales with physical cores; on a single-core host the parallel
path only pays fork/IPC overhead, so the >=2x expectation is asserted
only when enough cores are present.
"""

from __future__ import annotations

import os
import time

from _report import emit, header, paper_vs_measured, table, write_artifact
from repro.core.faults import Campaign
from repro.workloads import build_workload

#: Workers for the parallel measurement.
PARALLEL = 4
#: Experiments per measurement; enough to amortize worker startup.
EXPERIMENTS = 16
CAMPAIGN_SEED = 77


def _make_campaign() -> Campaign:
    spec = build_workload("resnet", size="tiny", seed=0)
    return Campaign(spec, num_devices=2, seed=0, warmup_iterations=8,
                    horizon=16, inject_window=6, test_every=8)


def _timed_run(campaign: Campaign, parallel: int):
    campaign.prepare()  # exclude baseline training from the measurement
    start = time.perf_counter()
    result = campaign.run(EXPERIMENTS, seed=CAMPAIGN_SEED, parallel=parallel)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_engine_throughput():
    cores = os.cpu_count() or 1
    serial_result, serial_s = _timed_run(_make_campaign(), parallel=1)
    parallel_result, parallel_s = _timed_run(_make_campaign(),
                                             parallel=PARALLEL)

    # Determinism contract: same seeds => same outcomes at any worker count.
    assert parallel_result.breakdown() == serial_result.breakdown()

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    header("engine throughput: serial vs parallel campaign execution")
    emit(f"host: {cores} cpu core(s); {EXPERIMENTS} experiments per run")
    table([
        {"mode": "serial (in-process)", "workers": 1,
         "seconds": serial_s, "exp_per_sec": EXPERIMENTS / serial_s},
        {"mode": "parallel (forked pool)", "workers": PARALLEL,
         "seconds": parallel_s, "exp_per_sec": EXPERIMENTS / parallel_s},
    ])
    paper_vs_measured(
        "campaigns scale with core count (engine fan-out)",
        paper=f">=2x experiments/sec at {PARALLEL} workers on a multi-core host",
        measured=f"{speedup:.2f}x speedup on {cores} core(s)",
        holds=speedup >= 2.0 or cores < 4,
    )
    write_artifact("engine_throughput", {
        "cores": cores,
        "experiments": EXPERIMENTS,
        "serial_seconds": serial_s,
        "serial_exp_per_sec": EXPERIMENTS / serial_s,
        "parallel_workers": PARALLEL,
        "parallel_seconds": parallel_s,
        "parallel_exp_per_sec": EXPERIMENTS / parallel_s,
        "speedup": speedup,
        "deterministic_breakdown":
            parallel_result.breakdown() == serial_result.breakdown(),
    })
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >=2x speedup at {PARALLEL} workers on {cores} cores, "
            f"got {speedup:.2f}x")
