"""Overhead of the observability layer (``repro.observe``).

The tracer/counters/profiler are designed to be left attached during
statistical campaigns, so their cost must be invisible next to an
iteration of training.  Measured here, on the 8-device trainer:

* end-to-end iterations/s with a live :class:`~repro.observe.Tracer`
  attached vs the default :data:`~repro.observe.NULL_TRACER` — asserted
  to cost **<=5%** per iteration (interleaved best-of-N runs, so slow
  drift in machine load cancels);
* the same comparison with the telemetry service's
  :class:`~repro.observe.TelemetrySampler` thread *also* running at a
  fast interval (the ``--serve`` configuration) — the whole telemetry
  stack must fit inside the same <=5% budget;
* micro-costs of the primitives themselves: one enabled ``emit``, one
  disabled ``emit`` (the campaign-default fast path), one counter
  increment each way, and one disabled ``profile_scope`` entry.

Run under pytest (``pytest benchmarks/bench_observe_overhead.py``) or as
a script; ``--smoke`` shrinks the run for CI while still exercising the
full traced-vs-untraced comparison::

    PYTHONPATH=src python benchmarks/bench_observe_overhead.py --smoke
"""

from __future__ import annotations

import time

from _report import emit, header, paper_vs_measured, table, write_artifact
from repro.distributed import SyncDataParallelTrainer
from repro.observe import (
    NULL_TRACER,
    Counter,
    TelemetrySampler,
    Tracer,
    build_sample,
    profile_scope,
    set_metrics_enabled,
)
from repro.workloads import build_workload

NUM_DEVICES = 8
WARMUP_ITERATIONS = 4
MEASURED_ITERATIONS = 12
#: Best-of-N repeats.  At 2 the interleaved max-of runs still carried
#: enough scheduler noise to report *negative* overhead fractions (see
#: the PR-9 BENCH_observe_overhead.json); 5 repeats makes the best-of
#: estimate tight enough that the <=5% gate measures the tracer, not
#: the machine.
REPEATS = 5
SMOKE_REPEATS = 4

#: The acceptance budget: a live tracer may cost at most this fraction
#: of an iteration relative to the untraced run.
OVERHEAD_CEILING = 0.05


def _run_ips(spec, tracer, num_devices: int, warmup: int,
             iterations: int) -> float:
    """One training run; returns measured iterations/s."""
    trainer = SyncDataParallelTrainer(spec, num_devices=num_devices, seed=0,
                                      test_every=0, tracer=tracer)
    trainer.train(warmup)
    start = time.perf_counter()
    trainer.train(iterations)
    return iterations / (time.perf_counter() - start)


def _end_to_end(num_devices: int = NUM_DEVICES, warmup: int = WARMUP_ITERATIONS,
                iterations: int = MEASURED_ITERATIONS, repeats: int = REPEATS):
    """Interleaved best-of-N traced vs untraced vs sampler-served runs."""
    spec = build_workload("resnet", size="tiny", seed=0)
    traced_ips, untraced_ips, sampled_ips = 0.0, 0.0, 0.0
    tracer = Tracer()
    for _ in range(repeats):
        tracer.clear()
        traced_ips = max(traced_ips,
                         _run_ips(spec, tracer, num_devices, warmup, iterations))
        untraced_ips = max(untraced_ips,
                           _run_ips(spec, None, num_devices, warmup, iterations))
        # The --serve configuration: live tracer plus the telemetry
        # sampler thread snapshotting the registry at a fast interval
        # (10x faster than the CLI default, so the budget holds with
        # margin).
        tracer.clear()
        sampler = TelemetrySampler(lambda: build_sample(), interval=0.1)
        sampler.start()
        try:
            sampled_ips = max(
                sampled_ips,
                _run_ips(spec, tracer, num_devices, warmup, iterations))
        finally:
            sampler.stop(final_sample=False)
    overhead = untraced_ips / traced_ips - 1.0
    sampled_overhead = untraced_ips / sampled_ips - 1.0
    return (traced_ips, untraced_ips, overhead, len(tracer),
            sampled_ips, sampled_overhead)


def _per_call(fn, calls: int = 20000, repeats: int = 5) -> float:
    """Best-of-N per-call wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / calls


def _micro_costs() -> list[dict]:
    tracer = Tracer()
    live_counter = Counter("bench.live")
    rows = [
        {"primitive": "Tracer.emit (enabled)",
         "ns_per_call": _per_call(
             lambda: tracer.emit("iteration_stats", iteration=1,
                                 loss=0.5, acc=0.9)) * 1e9},
        {"primitive": "Tracer.emit (disabled fast path)",
         "ns_per_call": _per_call(
             lambda: NULL_TRACER.emit("iteration_stats", iteration=1,
                                      loss=0.5, acc=0.9)) * 1e9},
        {"primitive": "Counter.inc (enabled)",
         "ns_per_call": _per_call(live_counter.inc) * 1e9},
    ]
    set_metrics_enabled(False)
    try:
        rows.append({"primitive": "Counter.inc (metrics disabled)",
                     "ns_per_call": _per_call(live_counter.inc) * 1e9})
    finally:
        set_metrics_enabled(True)
    rows.append({"primitive": "profile_scope (disabled)",
                 "ns_per_call": _per_call(
                     lambda: profile_scope("bench.scope").__enter__()) * 1e9})
    return rows


def _report_and_check(traced_ips, untraced_ips, overhead, events,
                      sampled_ips, sampled_overhead,
                      num_devices, iterations, repeats=REPEATS) -> None:
    header(f"repro.observe — tracing overhead ({num_devices} devices, "
           f"resnet/tiny, best-of-{repeats})")
    table([
        {"configuration": "NULL_TRACER (default)",
         "iterations_per_s": untraced_ips},
        {"configuration": f"live Tracer ({events} events buffered)",
         "iterations_per_s": traced_ips},
        {"configuration": "live Tracer + telemetry sampler (--serve)",
         "iterations_per_s": sampled_ips},
    ])
    emit()
    emit(f"per-iteration tracing overhead: {overhead * 100.0:+.2f}% "
         f"(budget: <={OVERHEAD_CEILING * 100.0:.0f}%)")
    emit(f"tracing + sampler overhead:     "
         f"{sampled_overhead * 100.0:+.2f}% "
         f"(budget: <={OVERHEAD_CEILING * 100.0:.0f}%)")
    emit()
    table(_micro_costs(), floatfmt="{:.0f}")
    emit()
    paper_vs_measured(
        "observability must not perturb the measured system (the paper's "
        "per-iteration statistics are collected on every experiment)",
        "telemetry cost indistinguishable from run-to-run noise",
        f"{overhead * 100.0:+.2f}% per iteration with a live tracer, "
        f"{sampled_overhead * 100.0:+.2f}% with the telemetry service",
        overhead <= OVERHEAD_CEILING
        and sampled_overhead <= OVERHEAD_CEILING,
    )
    write_artifact("observe_overhead", {
        "num_devices": num_devices,
        "iterations": iterations,
        "repeats": repeats,
        "untraced_iterations_per_s": untraced_ips,
        "traced_iterations_per_s": traced_ips,
        "sampled_iterations_per_s": sampled_ips,
        "overhead_fraction": overhead,
        "sampler_overhead_fraction": sampled_overhead,
        "budget_fraction": OVERHEAD_CEILING,
        "events_buffered": events,
    })
    assert overhead <= OVERHEAD_CEILING, (
        f"tracing overhead {overhead * 100.0:.2f}% exceeds the "
        f"{OVERHEAD_CEILING * 100.0:.0f}% per-iteration budget"
    )
    assert sampled_overhead <= OVERHEAD_CEILING, (
        f"tracing + telemetry-sampler overhead "
        f"{sampled_overhead * 100.0:.2f}% exceeds the "
        f"{OVERHEAD_CEILING * 100.0:.0f}% per-iteration budget"
    )


def bench_observe_overhead(benchmark):
    results = _end_to_end()
    _report_and_check(*results, NUM_DEVICES, MEASURED_ITERATIONS)
    tracer = Tracer()
    # The benchmarked quantity: one enabled emit (the hot-path unit cost).
    benchmark(lambda: tracer.emit("iteration_stats", iteration=1,
                                  loss=0.5, acc=0.9))


def main(argv: list[str] | None = None) -> int:
    """Script entry point (CI runs ``--smoke``)."""
    import argparse

    import _report

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced run for CI (fewer devices/iterations)")
    args = parser.parse_args(argv)
    if args.smoke:
        results = _end_to_end(num_devices=2, warmup=2, iterations=8,
                              repeats=SMOKE_REPEATS)
        _report_and_check(*results, 2, 8, repeats=SMOKE_REPEATS)
    else:
        results = _end_to_end()
        _report_and_check(*results, NUM_DEVICES, MEASURED_ITERATIONS)
    for line in _report.LINES:
        print(line)
    _report.LINES.clear()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
