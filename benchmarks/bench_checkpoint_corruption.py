"""The "which checkpoint is clean?" problem (Sec. 5 motivation).

The paper motivates bounded-latency detection with the checkpointing
dilemma: for a latent outcome, "it is not clear how one could determine
which checkpoint to revert to, not to mention that the available
checkpoints may all have been corrupted."

This bench stages the dilemma: a history-corrupting fault strikes, a
rolling per-epoch checkpoint store keeps the ``keep`` most recent
checkpoints, and the corruption is only *noticed* (accuracy visibly low)
many iterations later.  By then every retained checkpoint carries the
corrupted optimizer state.  The paper's detector flags the fault within
two iterations — while a clean checkpoint still exists.
"""

from __future__ import annotations

import numpy as np

from _report import emit, header, paper_vs_measured, table
from conftest import NUM_DEVICES
from bench_fig2_latent_outcomes import ControlledFault
from repro.core.mitigation import HardwareFailureDetector
from repro.distributed import SyncDataParallelTrainer
from repro.training.checkpoints import CheckpointStore
from repro.workloads import build_workload

EPOCH = 10          # iterations per "epoch" (checkpoint cadence)
KEEP = 3            # rolling checkpoints retained
INJECT_AT = 35
TOTAL = 100
NOTICE_DELAY = 40   # iterations until a human notices the degradation


def _history_is_clean(checkpoint) -> bool:
    for name, arrays in checkpoint.optimizer_state.items():
        if name in ("iteration", "lr"):
            continue
        for arr in arrays:
            with np.errstate(invalid="ignore"):
                magnitude = np.abs(arr).max() if arr.size else 0.0
            if not np.isfinite(magnitude) or magnitude > 1e6:
                return False
    return True


def bench_checkpoint_corruption(benchmark):
    spec = build_workload("resnet", size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=0, stop_on_nonfinite=False)
    store = CheckpointStore(every=EPOCH, keep=KEEP)
    detector = HardwareFailureDetector()
    fault = ControlledFault("1.conv1", "weight_grad", INJECT_AT, device=1,
                            magnitude=1e12, elements=64, seed=7)
    trainer.add_hook(store)
    trainer.add_hook(fault)
    trainer.add_hook(detector)
    trainer.train(TOTAL)

    rows = []
    noticed_at = INJECT_AT + NOTICE_DELAY
    # Which checkpoints does the rolling store hold at "notice time"?
    held_at_notice = [i for i in range(0, noticed_at, EPOCH)][-KEEP:]
    for ckpt in store.checkpoints:
        rows.append({
            "checkpoint iter": ckpt.iteration,
            "optimizer history clean": _history_is_clean(ckpt),
        })

    header("Sec. 5 motivation — the checkpoint-corruption dilemma "
           f"(epoch={EPOCH}, keep last {KEEP}, fault at {INJECT_AT})")
    emit("rolling store contents at the end of training:")
    table(rows)
    emit()
    emit(f"if the degradation is noticed {NOTICE_DELAY} iterations after the")
    emit(f"fault (iteration {noticed_at}), the store would hold checkpoints "
         f"{held_at_notice} —")
    clean_available = any(i <= INJECT_AT for i in held_at_notice)
    emit(f"a pre-fault checkpoint {'IS' if clean_available else 'is NOT'} "
         "among them.")
    emit()
    detection_latency = (detector.detection_latency(INJECT_AT)
                         if detector.fired else None)
    paper_vs_measured(
        "late discovery leaves only corrupted checkpoints; bounded-latency "
        "detection flags the fault while a clean checkpoint exists",
        "latent outcomes span thousands+ iterations; available checkpoints "
        "may all have been corrupted (Sec. 5)",
        f"all retained end-of-run checkpoints corrupted: "
        f"{all(not r['optimizer history clean'] for r in rows if r['checkpoint iter'] > INJECT_AT)}; "
        f"detector latency {detection_latency} iterations",
        detector.fired and detection_latency is not None
        and detection_latency <= 2,
    )
    assert detector.fired

    benchmark.pedantic(lambda: _history_is_clean(store.checkpoints[-1]),
                       rounds=10, iterations=1)
