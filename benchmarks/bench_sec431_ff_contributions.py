"""Sec. 4.3.1: contributions to unexpected outcomes by FF class.

The paper: global-control groups 1 and 3 plus local-control FFs (9.8% of
all FFs) contribute 55.7%-68.5% of unexpected outcomes; upper-two-
exponent-bit datapath FFs (5.5% of all FFs) contribute 31.9%-44.3%.

This bench reports the same stratification over the campaign results,
plus a *stratified* comparison of unexpected rates per class with equal
sample counts (the per-class rates expose the effect even when the
uniform-sample counts are small).
"""

from __future__ import annotations

import numpy as np

from _report import emit, header, paper_vs_measured, table
from repro.accelerator.ffs import FFDescriptor
from repro.core.faults import Campaign, HardwareFault
from repro.workloads import build_workload


def bench_sec431_ff_contributions(benchmark, campaign_results):
    # Uniform-campaign stratification (the paper's accounting).
    rows = []
    for name, result in campaign_results.items():
        stats = result.by_ff_category()
        for category, values in stats.items():
            rows.append({
                "workload": name,
                "ff class": category,
                "population share": values["population_fraction"],
                "share of unexpected": values["unexpected_share"],
                "unexpected rate": values["unexpected_rate"],
            })
    header("Sec. 4.3.1 — unexpected-outcome contributions by FF class "
           "(uniform campaign)")
    table(rows)
    emit()

    # Stratified injection: equal counts per class on one workload so the
    # per-class unexpected rates are directly comparable.
    spec = build_workload("resnet", size="tiny", seed=0)
    campaign = Campaign(spec, num_devices=2, seed=0, warmup_iterations=10,
                        horizon=30, inject_window=8, test_every=10)
    campaign.prepare()
    rng = np.random.default_rng(9)
    per_class = 16

    def classed_fault(category: str) -> HardwareFault:
        fault = campaign.sample_experiment(rng)
        if category == "critical_control":
            group = int(rng.choice([1, 3]))
            fault.ff = FFDescriptor("global_control", group=group,
                                    has_feedback=True)
        elif category == "upper_exponent":
            fault.ff = FFDescriptor("datapath", bit=30, has_feedback=False)
        else:
            fault.ff = FFDescriptor("datapath", bit=int(rng.integers(0, 23)),
                                    has_feedback=False)
        return fault

    strat_rows = []
    for category in ("critical_control", "upper_exponent", "other"):
        unexpected = 0
        conditions_fired = 0
        for _ in range(per_class):
            result = campaign.run_experiment(classed_fault(category))
            if result.report.is_unexpected:
                unexpected += 1
            window = result.condition_window
            if max(window.get("max_history", 0), window.get("max_mvar", 0)) > 1e6:
                conditions_fired += 1
        strat_rows.append({
            "ff class": category,
            "experiments": per_class,
            "unexpected rate": unexpected / per_class,
            "condition-fired rate": conditions_fired / per_class,
        })
    emit("Stratified injection (equal counts per class, resnet):")
    table(strat_rows)
    emit()

    crit = strat_rows[0]
    upper = strat_rows[1]
    other = strat_rows[2]
    danger = max(crit["condition-fired rate"], crit["unexpected rate"])
    upper_danger = max(upper["condition-fired rate"], upper["unexpected rate"])
    other_danger = max(other["condition-fired rate"], other["unexpected rate"])
    paper_vs_measured(
        "critical control FFs and upper exponent bits dominate the risk",
        "9.8% of FFs -> 55.7-68.5% of unexpected; 5.5% -> 31.9-44.3%",
        f"rate(critical)={danger:.2f}, rate(upper_exp)={upper_danger:.2f}, "
        f"rate(other mantissa/low-exp bits)={other_danger:.2f}",
        danger >= other_danger and upper_danger >= other_danger,
    )

    benchmark.pedantic(
        lambda: campaign.run_experiment(classed_fault("critical_control")),
        rounds=3, iterations=1,
    )
