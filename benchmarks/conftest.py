"""Shared fixtures for the benchmark harness.

Benchmarks run at the "tiny" workload scale with reduced experiment
counts; every experiment is seeded, so the emitted tables are
reproducible.  Expensive shared artifacts (trained baselines, campaign
results) are session-scoped.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.faults import Campaign
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload

#: Device count used throughout the benches (the paper uses 8).
NUM_DEVICES = 4

#: Experiments per workload for statistical campaigns.  The paper runs
#: >100K per workload; these counts keep the full harness under an hour
#: while still exposing every outcome class.
CAMPAIGN_EXPERIMENTS = 60


@pytest.fixture(scope="session")
def trained_resnet():
    """A resnet trainer trained to its tiny budget (shared, read-mostly)."""
    spec = build_workload("resnet", size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=10)
    trainer.train()
    return trainer


@pytest.fixture(scope="session")
def campaign_results():
    """Statistical FI campaigns for the Fig. 3 workload set (cached)."""
    results = {}
    for name in ("resnet", "resnet_nobn", "resnet_sgd", "resnet_largedecay"):
        spec = build_workload(name, size="tiny", seed=0)
        campaign = Campaign(spec, num_devices=NUM_DEVICES, seed=0,
                            warmup_iterations=15, horizon=45,
                            inject_window=10, test_every=10)
        results[name] = campaign.run(CAMPAIGN_EXPERIMENTS, seed=77)
    return results


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def pytest_terminal_summary(terminalreporter):
    """Flush the buffered experiment tables after the benchmark results."""
    import _report

    if _report.LINES:
        terminalreporter.write_line(_report.provenance_banner())
        for line in _report.LINES:
            terminalreporter.write_line(line)
        _report.LINES.clear()
