"""Sec. 5.3: performance overheads of detection, recovery, and baselines.

Measures component costs directly against the training-iteration cost
(A/B wall-clock runs cannot resolve sub-percent effects against OS timer
noise; a direct measurement of each per-iteration component is exact):

* one bound-check detection pass (paper: 0.003%-0.025% of an iteration);
* recovery bookkeeping (snapshot-ring capture) per iteration;
* one ABFT checksum pass (paper: 5%-7%);
* the cost of one two-iteration re-execution event (paper: 0.04%-0.15%
  amortized per run);
* checkpoint-recovery cost in re-executed iterations (paper: up to ~500x
  the two-iteration re-execution at ~1000-iteration epochs).

Absolute percentages do not transfer from a NumPy simulator (iterations
are ~1000x cheaper than on a TPU pod while the bound check is constant
cost); the reproduced shape is the cost ordering
detection < bookkeeping << ABFT << checkpoint recovery.
"""

from __future__ import annotations

import time

from _report import emit, header, paper_vs_measured, table
from conftest import NUM_DEVICES
from repro.core.mitigation import (
    HardwareFailureDetector,
    RecoveryManager,
    derive_bounds_for_trainer,
)
from repro.core.mitigation.baselines import ABFTChecker, CheckpointRecovery
from repro.distributed import SyncDataParallelTrainer
from repro.training.checkpoints import Checkpoint
from repro.workloads import build_workload

WARMUP_ITERATIONS = 10


def _best_time(fn, repeats: int = 30) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_sec5_overheads(benchmark):
    spec = build_workload("resnet", size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=0)
    trainer.train(WARMUP_ITERATIONS)

    # Component costs, each measured in isolation (best of N).
    counter = iter(range(10_000_000))
    iteration_time = _best_time(
        lambda: trainer.run_iteration(WARMUP_ITERATIONS + next(counter)), repeats=15
    )

    detector = HardwareFailureDetector(derive_bounds_for_trainer(trainer))
    detector.check(trainer, 0)  # warm the layer cache
    detection_time = _best_time(lambda: detector.check(trainer, 0))

    snapshot_time = _best_time(lambda: Checkpoint.capture(trainer), repeats=15)

    abft = ABFTChecker()
    abft_time = _best_time(lambda: abft.after_backward(trainer, 0), repeats=10)

    # One recovery event: rewind + re-execute two iterations.
    recovery_trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES,
                                               seed=0, test_every=0)
    manager = RecoveryManager(strategy="snapshot")
    recovery_trainer.add_hook(manager)
    recovery_trainer.train(10)
    start = time.perf_counter()
    resume = manager.rewind(recovery_trainer, detected_at=9)
    recovery_trainer.train(10 - resume)
    recovery_event_time = time.perf_counter() - start

    # Checkpoint recovery: one epoch back.
    epoch = 25
    ckpt_trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                           test_every=0)
    ckpt = CheckpointRecovery(iterations_per_epoch=epoch)
    ckpt_trainer.add_hook(ckpt)
    ckpt_trainer.train(2 * epoch - 1)
    cost = ckpt.recover(ckpt_trainer)

    def pct(t):
        return 100.0 * t / iteration_time

    rows = [
        {"component": "training iteration (baseline)",
         "time_ms": iteration_time * 1e3, "per-iteration overhead_%": "-"},
        {"component": "bound-check detection (Sec. 5.1)",
         "time_ms": detection_time * 1e3,
         "per-iteration overhead_%": pct(detection_time)},
        {"component": "recovery bookkeeping (snapshot capture)",
         "time_ms": snapshot_time * 1e3,
         "per-iteration overhead_%": pct(snapshot_time)},
        {"component": "ABFT checksum pass (baseline technique)",
         "time_ms": abft_time * 1e3,
         "per-iteration overhead_%": pct(abft_time)},
    ]
    header(f"Sec. 5.3 — per-iteration component costs ({NUM_DEVICES} devices, "
           "best-of-N direct measurement)")
    table(rows)
    emit()
    emit(f"one recovery event (rewind + re-execute 2 iters): "
         f"{recovery_event_time * 1e3:.0f}ms = "
         f"{recovery_event_time / iteration_time:.1f} iteration-equivalents")
    emit(f"one checkpoint recovery: {cost.reexecuted_iterations} iterations "
         f"re-executed = {cost.cost_ratio_vs_reexecution(2):.0f}x the "
         f"two-iteration re-execution (paper: up to ~500x at ~1000-iteration "
         f"epochs)")
    emit()
    paper_vs_measured(
        "bound-check detection is far cheaper than ABFT",
        "0.003%-0.025% (detection) vs 5%-7% (ABFT) on Cloud TPUs",
        f"{pct(detection_time):.2f}% (detection) vs {pct(abft_time):.2f}% "
        f"(ABFT) of an iteration",
        detection_time < abft_time,
    )
    paper_vs_measured(
        "checkpoint recovery is orders of magnitude costlier than "
        "two-iteration re-execution",
        "up to ~500x (one checkpoint per ~1000-iteration epoch)",
        f"{cost.cost_ratio_vs_reexecution(2):.0f}x at "
        f"{cost.reexecuted_iterations}-iteration rollback (epoch={epoch}); "
        "the ratio scales with epoch length",
        cost.cost_ratio_vs_reexecution(2) > 2,
    )
    emit()
    emit("Scale note: on a TPU pod an iteration takes seconds while the")
    emit("bound check stays a few hundred microseconds — the paper's")
    emit("0.003%-0.025% band; on this simulator an iteration is ~20ms, so")
    emit("the same constant-cost check reads as ~1%.")

    assert detection_time < abft_time

    # The benchmarked quantity: one full detection check.
    benchmark(lambda: detector.check(trainer, 0))
