"""Overhead of the fused training-state layer (``repro.state``).

The always-on mitigation of Sec. 5 keeps a rolling ring of pre-iteration
snapshots, so snapshot-capture cost is paid **every iteration**.  The
fused state layer turns that capture from one ``ndarray`` copy per
parameter / optimizer slot / replica (hundreds of small allocations) into
one ``memcpy`` per fused buffer.

Measured here, on an 8-device trainer:

* per-snapshot capture cost, fused (``Checkpoint.capture``) vs the
  legacy scattered walk (``Checkpoint.capture_scattered``) — asserted to
  be at least 3x cheaper fused;
* end-to-end training throughput with the full mitigation hook
  (detector + snapshot-ring recovery) attached, fused vs scattered
  capture in the ring — the end-to-end win of the state layer.

Both capture paths produce interchangeable checkpoints (see
``tests/test_state_arena.py``), so this is a pure-overhead comparison.
"""

from __future__ import annotations

import time

from _report import emit, header, paper_vs_measured, table
from repro.core.mitigation import (
    HardwareFailureDetector,
    MitigationHook,
    RecoveryManager,
    derive_bounds_for_trainer,
)
from repro.distributed import SyncDataParallelTrainer
from repro.training.checkpoints import Checkpoint
from repro.workloads import build_workload

NUM_DEVICES = 8
WARMUP_ITERATIONS = 8
SPEEDUP_FLOOR = 3.0


def _best_time(fn, repeats: int = 30) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class _TimedRecoveryManager(RecoveryManager):
    """Snapshot-ring bookkeeping with its capture time accounted, using
    either the fused or the (pre-fusion baseline) scattered capture."""

    def __init__(self, capture):
        super().__init__(strategy="snapshot")
        self._capture = capture
        self.capture_seconds = 0.0

    def before_iteration(self, trainer, iteration: int) -> None:
        start = time.perf_counter()
        self._snapshots.append(self._capture(trainer))
        self.capture_seconds += time.perf_counter() - start


def _build_trainer(spec):
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=0)
    trainer.train(WARMUP_ITERATIONS)
    return trainer


def _run_with_hook(spec, capture, iterations: int = 12) -> tuple[float, float]:
    """One mitigation-hook training run; returns (iterations/s, seconds
    spent in snapshot bookkeeping)."""
    trainer = _build_trainer(spec)
    manager = _TimedRecoveryManager(capture)
    hook = MitigationHook(
        HardwareFailureDetector(derive_bounds_for_trainer(trainer)),
        recovery=manager,
    )
    trainer.add_hook(hook)
    start = time.perf_counter()
    trainer.train(iterations)
    return iterations / (time.perf_counter() - start), manager.capture_seconds


def _end_to_end(spec, repeats: int = 3):
    """Interleaved best-of-N mitigation-hook runs, fused vs scattered
    capture (interleaving cancels slow drift in machine load)."""
    fused_ips, scattered_ips = 0.0, 0.0
    fused_book, scattered_book = float("inf"), float("inf")
    for _ in range(repeats):
        ips, book = _run_with_hook(spec, Checkpoint.capture)
        fused_ips, fused_book = max(fused_ips, ips), min(fused_book, book)
        ips, book = _run_with_hook(spec, Checkpoint.capture_scattered)
        scattered_ips = max(scattered_ips, ips)
        scattered_book = min(scattered_book, book)
    return fused_ips, scattered_ips, fused_book, scattered_book


def bench_state_overhead(benchmark):
    spec = build_workload("resnet", size="tiny", seed=0)
    trainer = _build_trainer(spec)
    assert trainer.arenas is not None, "trainer did not build a state arena"

    fused_time = _best_time(lambda: Checkpoint.capture(trainer))
    scattered_time = _best_time(lambda: Checkpoint.capture_scattered(trainer))
    speedup = scattered_time / fused_time

    fused_ckpt = Checkpoint.capture(trainer)
    scattered_ckpt = Checkpoint.capture_scattered(trainer)

    fused_ips, scattered_ips, fused_book, scattered_book = _end_to_end(spec)

    num_arrays = sum(
        len(state) for state in scattered_ckpt.replica_states
    ) + sum(
        len(v) for k, v in scattered_ckpt.optimizer_state.items()
        if k not in ("iteration", "lr")
    )
    header(f"repro.state — snapshot capture cost ({NUM_DEVICES} devices, "
           "resnet/tiny, best-of-N)")
    table([
        {"capture path": "fused (one memcpy per buffer)",
         "time_us": fused_time * 1e6,
         "snapshot_MB": fused_ckpt.nbytes() / 1e6},
        {"capture path": f"scattered ({num_arrays} array copies)",
         "time_us": scattered_time * 1e6,
         "snapshot_MB": scattered_ckpt.nbytes() / 1e6},
    ])
    emit()
    emit(f"per-snapshot speedup: {speedup:.1f}x "
         f"(floor: {SPEEDUP_FLOOR:.0f}x)")
    emit(f"end-to-end with mitigation hook attached: "
         f"{fused_ips:.2f} it/s fused vs {scattered_ips:.2f} it/s scattered "
         f"({100.0 * (fused_ips / scattered_ips - 1.0):+.1f}%)")
    emit(f"snapshot bookkeeping inside those runs: "
         f"{fused_book * 1e3:.1f}ms fused vs {scattered_book * 1e3:.1f}ms "
         f"scattered ({scattered_book / fused_book:.1f}x less time in "
         f"bookkeeping)")
    emit()
    paper_vs_measured(
        "always-on recovery bookkeeping must stay cheap per iteration "
        "(Sec. 5.3: overheads well under one percent on real pods)",
        "snapshot bookkeeping amortized to a negligible slice of an "
        "iteration",
        f"fused capture {fused_time * 1e6:.0f}us vs scattered "
        f"{scattered_time * 1e6:.0f}us per snapshot",
        speedup >= SPEEDUP_FLOOR,
    )

    assert fused_ckpt.nbytes() == scattered_ckpt.nbytes(), (
        "fused and scattered snapshots must account the same bytes"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fused snapshot capture is only {speedup:.2f}x cheaper than the "
        f"scattered walk (target: >={SPEEDUP_FLOOR:.0f}x)"
    )
    assert fused_book < scattered_book, (
        "fused capture must spend less time in snapshot bookkeeping "
        "end-to-end with the hook attached"
    )
    # Throughput on a busy host is noisy; guard against regressions only.
    assert fused_ips >= 0.85 * scattered_ips, (
        f"fused end-to-end throughput regressed: {fused_ips:.2f} vs "
        f"{scattered_ips:.2f} it/s"
    )

    # The benchmarked quantity: one fused snapshot capture.
    benchmark(lambda: Checkpoint.capture(trainer))
