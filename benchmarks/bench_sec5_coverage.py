"""Sec. 5.1 / Sec. 6: detection coverage and latency comparison.

Injects a battery of condition-firing faults (the ones that can lead to
latent unexpected outcomes) and measures, per technique:

* whether it detects the fault at all (coverage),
* the detection latency in iterations.

Techniques: the paper's bound checking (detects all history/mvar
corruptions within 2 iterations), ABFT checksums (sees only corrupted
matmul outputs), Ranger activation bounds (forward pass only — the paper
measured 33.7% latent coverage), and gradient clipping (prevents some
faults rather than detecting them; cannot see history/mvar corruption).
"""

from __future__ import annotations

from _report import emit, header, paper_vs_measured, table
from conftest import NUM_DEVICES
from bench_fig2_latent_outcomes import ControlledFault
from repro.core.mitigation import HardwareFailureDetector
from repro.core.mitigation.baselines import ABFTChecker, GradientClipper, RangerGuard
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload

INJECT_AT = 30
TOTAL = 45

#: Condition-firing fault battery: (label, workload, site, kind, magnitude).
BATTERY = [
    ("backward grad fault (history)", "resnet", "1.conv1", "weight_grad", 1e12),
    ("backward grad fault (history, deep)", "resnet", "2.conv2", "weight_grad", 1e14),
    ("forward act fault (mvar)", "resnet", "1.conv1", "forward", 1e12),
    ("forward act fault (mvar, stem)", "resnet", "0.0", "forward", 1e14),
    ("backward input-grad fault", "resnet", "2.conv1", "input_grad", 1e12),
    ("forward fault, NoBN (history)", "resnet_nobn", "1.conv1", "forward", 1e8),
]


def _run_with(technique_factory, label, workload, site, kind, magnitude):
    spec = build_workload(workload, size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=0, stop_on_nonfinite=False)
    technique = technique_factory(trainer)
    fault = ControlledFault(site, kind, INJECT_AT, device=1,
                            magnitude=magnitude, elements=64, seed=7)
    trainer.add_hook(fault)
    if technique is not None:
        trainer.add_hook(technique)
    trainer.train(TOTAL)
    if technique is None or not getattr(technique, "fired", False):
        return None
    if hasattr(technique, "fired_at"):
        fired_at = technique.fired_at()
    else:  # GradientClipper records engagement iterations directly.
        fired_at = technique.clip_events[0] if technique.clip_events else None
    return None if fired_at is None else fired_at - INJECT_AT


def bench_sec5_coverage(benchmark):
    techniques = {
        "bound checks (this paper)": lambda tr: HardwareFailureDetector(),
        "ABFT checksums": lambda tr: ABFTChecker(),
        "Ranger activation bounds": lambda tr: RangerGuard(profile_iterations=15),
        "gradient clipping": lambda tr: GradientClipper(max_norm=5.0),
    }
    rows = []
    coverage = {name: 0 for name in techniques}
    for label, workload, site, kind, magnitude in BATTERY:
        row = {"fault": label}
        for name, factory in techniques.items():
            latency = _run_with(factory, label, workload, site, kind, magnitude)
            if name == "gradient clipping":
                # Clipping "fires" when it engages; it has no detection
                # semantics but we report whether it even noticed.
                row[name] = "engaged" if latency is not None else "silent"
            else:
                row[name] = f"lat={latency}" if latency is not None else "MISSED"
            if latency is not None:
                coverage[name] += 1
        rows.append(row)

    header("Sec. 5 — detection coverage and latency on condition-firing "
           "faults (latency in iterations after the fault)")
    table(rows)
    emit()
    total = len(BATTERY)
    for name, hits in coverage.items():
        emit(f"  {name}: {hits}/{total} faults caught")
    emit()

    paper_vs_measured(
        "bound checks catch every condition-firing fault within 2 iterations",
        "detects all faults likely to cause latent outcomes; latency <= 2",
        f"{coverage['bound checks (this paper)']}/{total} caught",
        coverage["bound checks (this paper)"] == total,
    )
    paper_vs_measured(
        "activation bounds miss most latent-outcome faults",
        "only 33.7% of latent unexpected outcomes detected (Sec. 6)",
        f"{coverage['Ranger activation bounds']}/{total} caught "
        "(misses all backward-pass corruptions)",
        coverage["Ranger activation bounds"] < total,
    )
    paper_vs_measured(
        "ABFT cannot see history-state corruption",
        "requires checked-operation corruption; history-only faults pass",
        f"{coverage['ABFT checksums']}/{total} caught",
        coverage["ABFT checksums"] <= coverage["bound checks (this paper)"],
    )

    benchmark.pedantic(
        lambda: _run_with(techniques["bound checks (this paper)"], *BATTERY[0]),
        rounds=2, iterations=1,
    )
