"""Fig. 4: characterization of fault propagation paths and effects.

Instruments one forward-pass and one backward-pass fault with the
propagation tracer and prints the magnitude of each fault-carrying state
class (|weights|, |gradients|, |optimizer history|, |mvar|) around the
fault — the machine-readable version of Fig. 4's path diagram:

* backward fault -> gradients -> optimizer history (persists);
* forward fault -> large activations -> BatchNorm mvar (persists);
  weights stay bounded under Adam in both cases.
"""

from __future__ import annotations

import numpy as np

from _report import emit, header, table
from conftest import NUM_DEVICES
from repro.accelerator.ffs import FFDescriptor
from repro.core.analysis.propagation import PropagationTracer
from repro.core.faults import FaultInjector, HardwareFault, OpSite
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload

INJECT_AT = 15
GROUP1 = FFDescriptor("global_control", group=1, has_feedback=True)


def _traced_run(site, kind, seed):
    spec = build_workload("resnet", size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=0, stop_on_nonfinite=False)
    fault = HardwareFault(ff=GROUP1, site=OpSite(site, kind),
                          iteration=INJECT_AT, device=1, seed=seed)
    injector = FaultInjector(fault)
    tracer = PropagationTracer()
    trainer.add_hook(injector)
    trainer.add_hook(tracer)
    trainer.train(INJECT_AT + 8)
    return injector, tracer


def _rows(tracer, label):
    trace = tracer.trace.as_arrays()
    rows = []
    for offset in (-2, -1, 0, 1, 2, 4, 6):
        i = INJECT_AT + offset
        idx = int(np.where(trace["iterations"] == i)[0][0])
        rows.append({
            "pass": label,
            "iter": f"t{offset:+d}" if offset else "t (fault)",
            "max|w|": trace["max_weight"][idx],
            "max|g|": trace["max_gradient"][idx],
            "max|history|": trace["max_history"][idx],
            "max|mvar|": trace["max_mvar"][idx],
        })
    return rows


def bench_fig4_propagation(benchmark):
    # Backward-pass fault with large values (retry seeds until non-masked).
    rows = []
    for seed in range(20):
        injector, tracer = _traced_run("1.conv1", "weight_grad", seed)
        if injector.record and injector.record.max_abs_faulty() > 1e15:
            rows += _rows(tracer, "backward (weight_grad)")
            onsets = tracer.condition_onsets(INJECT_AT)
            backward_onsets = {o.condition: o.latency_from_fault for o in onsets}
            break
    for seed in range(20):
        injector, tracer = _traced_run("1.conv1", "forward", seed)
        if injector.record and injector.record.max_abs_faulty() > 1e15:
            rows += _rows(tracer, "forward")
            onsets = tracer.condition_onsets(INJECT_AT)
            forward_onsets = {o.condition: o.latency_from_fault for o in onsets}
            break

    header("Fig. 4 — fault propagation: state-class magnitudes around the "
           "fault iteration (group-1 fault, device 1 of 4)")
    table(rows, floatfmt="{:.3g}")
    emit()
    emit(f"backward fault condition onsets (latency from fault): {backward_onsets}")
    emit(f"forward  fault condition onsets (latency from fault): {forward_onsets}")
    emit()
    emit("Backward faults inflate the optimizer's gradient history; forward")
    emit("faults inflate BatchNorm's moving variance; weights remain bounded")
    emit("under Adam in both cases — the Fig. 4 propagation structure.")

    assert backward_onsets.get("gradient_history", 99) <= 2

    benchmark.pedantic(lambda: _traced_run("1.conv1", "weight_grad", 3),
                       rounds=3, iterations=1)
