"""Ablation: dataflow-derived fault geometry vs. naive uniform injection.

DESIGN.md decision 4: faulty element positions come from the accelerator
dataflow model (16 consecutive channels per cycle, width-major growth),
not from uniform random sampling.  This ablation quantifies the
difference: dataflow faults are *structured* (contiguous channel blocks
at one spatial position), which changes how BatchNorm statistics absorb
them — uniform scatter spreads damage across channels, while a dataflow
burst concentrates it in a 16-channel band.

Also covers the Sec. 4.3.3 discussion (sensitivity to device count): the
same fault's gradient contribution is diluted by 1/num_devices.
"""

from __future__ import annotations

import numpy as np

from _report import emit, header, table
from repro.accelerator.ffs import FFDescriptor
from repro.core.faults.software_models import Group1RandomOutputs
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload


def bench_ablation_fault_geometry(benchmark):
    rng = np.random.default_rng(0)
    tensor = rng.normal(size=(8, 32, 16, 16)).astype(np.float32)
    model = Group1RandomOutputs()
    ff = FFDescriptor("global_control", group=1, has_feedback=True)

    # Dataflow-derived geometry: channel spread per fault.
    spreads_dataflow = []
    for seed in range(200):
        _, record = model.apply(tensor, np.random.default_rng(seed), ff)
        if record.num_faulty:
            coords = np.unravel_index(record.positions, tensor.shape)
            spreads_dataflow.append(len(set(coords[1].tolist())))

    # Naive uniform geometry with matched fault sizes.
    spreads_uniform = []
    for seed in range(200):
        _, record = model.apply(tensor, np.random.default_rng(seed), ff)
        if record.num_faulty:
            idx = np.random.default_rng(seed + 10_000).choice(
                tensor.size, size=record.num_faulty, replace=False
            )
            coords = np.unravel_index(idx, tensor.shape)
            spreads_uniform.append(len(set(coords[1].tolist())))

    header("Ablation — dataflow fault geometry vs. naive uniform injection")
    table([
        {"geometry": "dataflow (16-lane cycles, width-major)",
         "mean channels touched": float(np.mean(spreads_dataflow)),
         "max channels touched": int(np.max(spreads_dataflow))},
        {"geometry": "uniform random elements (naive software FI)",
         "mean channels touched": float(np.mean(spreads_uniform)),
         "max channels touched": int(np.max(spreads_uniform))},
    ])
    emit()
    emit("Dataflow faults stay inside one 16-channel lane group; uniform")
    emit("injection scatters across nearly all 32 channels.  Per-channel")
    emit("BatchNorm statistics therefore see concentrated vs diluted")
    emit("perturbations — the inaccuracy of naive software FI that the")
    emit("paper's RTL-derived fault models correct (Sec. 3).")
    assert np.mean(spreads_dataflow) < np.mean(spreads_uniform)

    # Sec. 4.3.3: gradient dilution with device count — measured by
    # injecting the same single-device fault under different device
    # counts and reading the resulting optimizer-history magnitude.
    from repro.core.faults import FaultInjector, HardwareFault, OpSite

    emit()
    rows = []
    for devices in (1, 2, 4, 8):
        spec = build_workload("resnet", size="tiny", seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=devices, seed=0,
                                          test_every=0, stop_on_nonfinite=False)
        fault = HardwareFault(ff=ff, site=OpSite("1.conv1", "weight_grad"),
                              iteration=5, device=0, seed=3)
        injector = FaultInjector(fault)
        trainer.add_hook(injector)
        trainer.train(6)
        rows.append({
            "devices": devices,
            "injected max|value|": injector.record.max_abs_faulty(),
            "post-fault max|m|": float(max(
                np.abs(np.nan_to_num(m, posinf=3e38)).max()
                for m in trainer.optimizer.m
            )),
        })
    table(rows, floatfmt="{:.3g}")
    emit("Gradient averaging dilutes the same faulty contribution by")
    emit("1/num_devices before it reaches the optimizer history — one of")
    emit("the two opposing device-count factors of Sec. 4.3.3.")
    assert rows[0]["post-fault max|m|"] > rows[-1]["post-fault max|m|"]

    benchmark(lambda: model.apply(tensor, np.random.default_rng(1), ff))
