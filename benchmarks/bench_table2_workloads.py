"""Table 2: the DNN training workload zoo.

Trains every Table 2 workload fault-free at benchmark scale and reports
its configuration and convergence — the analogue of the paper's
requirement that each fault-free run reaches >95% of its reference
accuracy.  Benchmarks a full synchronous training iteration of the
ResNet workload.
"""

from __future__ import annotations

from _report import emit, header, table
from conftest import NUM_DEVICES
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload, workload_names


def bench_table2_workloads(benchmark):
    rows = []
    for name in workload_names():
        spec = build_workload(name, size="tiny", seed=0)
        trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                          test_every=20)
        record = trainer.train()
        rows.append({
            "workload": name,
            "iterations": spec.iterations,
            "batch": spec.batch_size,
            "bn_momentum": spec.bn_momentum if spec.has_batchnorm else "-",
            "params": trainer.master.num_parameters(),
            "start_acc": record.train_acc[0],
            "final_train": record.final_train_accuracy(),
            "final_test": record.final_test_accuracy(),
        })

    header(f"Table 2 — workload zoo (tiny scale, {NUM_DEVICES} devices, "
           "fault-free training)")
    table(rows)
    emit()
    emit("Every workload trains to well above its starting accuracy; the")
    emit("four ResNet configurations share data and architecture and differ")
    emit("exactly in the knobs the paper varies (BN, optimizer, decay).")

    spec = build_workload("resnet", size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=0)
    iteration = iter(range(10_000_000))
    benchmark(lambda: trainer.run_iteration(next(iteration)))
