"""Table 3 / Fig. 1: the unexpected-outcome taxonomy, by construction.

Mirrors the paper artifact's reproducible examples: three directed
injections that produce a Masked outcome, an immediate INFs/NaNs outcome,
and a latent degradation, plus classification of each by the outcome
classifier.
"""

from __future__ import annotations

from _report import emit, header, table
from conftest import NUM_DEVICES
from repro.accelerator.ffs import FFDescriptor
from repro.core.analysis.classify import classify_outcome
from repro.core.faults import FaultInjector, HardwareFault, OpSite
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload


def _run(workload, ff, site, kind, inject_at, total, seed, eval_device=0):
    spec = build_workload(workload, size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=10, eval_device=eval_device)
    fault = HardwareFault(ff=ff, site=OpSite(site, kind), iteration=inject_at,
                          device=eval_device, seed=seed)
    injector = FaultInjector(fault)
    trainer.add_hook(injector)
    trainer.train(total)
    return trainer.record, injector


def _reference(workload, total):
    spec = build_workload(workload, size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                      test_every=10)
    trainer.train(total)
    return trainer.record


def bench_table3_outcome_examples(benchmark):
    total = 60
    reference = _reference("resnet", total)
    rows = []

    # Example 1 (artifact's inj_masked): a low-order datapath mantissa
    # flip — the training process absorbs it.
    rec, inj = _run("resnet", FFDescriptor("datapath", bit=3), "1.conv2",
                    "forward", 20, total, seed=5)
    rows.append({
        "example": "masked (datapath mantissa flip)",
        "classified": classify_outcome(rec, reference, 20).outcome.value,
        "nonfinite_at": rec.nonfinite_at,
        "final_train": rec.final_train_accuracy(),
    })

    # Example 2 (inj_immediate_infs_nans): corrupt a forward activation
    # with full-dynamic-range values on the NoBN model, where no
    # normalization can squash them before the loss.
    found = None
    for seed in range(20):
        rec, inj = _run("resnet_nobn",
                        FFDescriptor("global_control", group=1, has_feedback=True),
                        "1.conv1", "forward", 20, total, seed=seed)
        if rec.nonfinite_at is not None and rec.nonfinite_at - 20 <= 1:
            found = rec
            break
    assert found is not None, "no immediate INF/NaN example found"
    ref_nobn = _reference("resnet_nobn", total)
    rows.append({
        "example": "immediate INFs/NaNs (group 1, forward, NoBN)",
        "classified": classify_outcome(found, ref_nobn, 20).outcome.value,
        "nonfinite_at": found.nonfinite_at,
        "final_train": found.final_train_accuracy(),
    })

    # Example 3 (inj_slow_degrade): a backward-pass group-1 fault whose
    # huge values land in the optimizer's gradient history.
    rec, inj = _run("resnet", FFDescriptor("global_control", group=1,
                                           has_feedback=True),
                    "1.conv1", "weight_grad", 20, total, seed=3)
    rows.append({
        "example": "history corruption (group 1, backward)",
        "classified": classify_outcome(rec, reference, 20).outcome.value,
        "nonfinite_at": rec.nonfinite_at,
        "final_train": rec.final_train_accuracy(),
    })

    header("Table 3 / Fig. 1 — directed outcome examples "
           "(paper artifact's three reproducible injections)")
    table(rows)
    emit()
    emit("Manifestation latencies observed: immediate INFs/NaNs at the")
    emit("injection iteration; masked faults leave convergence untouched;")
    emit("backward-pass faults corrupt history state (see Table 4 bench).")

    # Benchmark: the full masked-example experiment.
    def masked_example():
        _run("resnet", FFDescriptor("datapath", bit=3), "1.conv2", "forward",
             5, 8, seed=5)

    benchmark.pedantic(masked_example, rounds=3, iterations=1)
