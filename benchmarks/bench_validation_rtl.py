"""Sec. 3.2.3: software-fault-model validation against micro-RTL injection.

The paper runs 40K RTL FI experiments and reports that every non-masked
fault's faulty output elements match the software model's prediction.
This bench replays the validation at reduced scale and benchmarks the
cycle-accurate simulator.
"""

from __future__ import annotations

import numpy as np

from _report import emit, header, paper_vs_measured
from repro.accelerator.rtl import MACArraySimulator
from repro.core.faults.validation import run_validation

EXPERIMENTS = 400


def bench_rtl_validation(benchmark):
    summary = run_validation(num_experiments=EXPERIMENTS, m=12, k=96, f=24, seed=0)

    header("Sec. 3.2.3 — software fault models vs. micro-RTL injection")
    emit(f"experiments: {summary.total}  masked: {summary.masked}  "
         f"matched: {summary.matched}  mismatched: {summary.mismatched}")
    paper_vs_measured(
        "non-masked RTL faults match the software fault model's prediction",
        "all matched (est. <1 in 1M mis-modeled, 99% confidence)",
        f"{summary.matched}/{summary.matched + summary.mismatched} matched "
        f"({summary.match_rate:.1%})",
        summary.match_rate == 1.0,
    )

    # Benchmark: one full RTL matmul execution (the cost that makes full
    # RTL FI infeasible at paper scale — Sec. 3's 46K-year estimate).
    sim = MACArraySimulator()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(12, 96)).astype(np.float32)
    w = rng.normal(0, 0.1, size=(96, 24)).astype(np.float32)
    benchmark(sim.run, x, w)

    assert summary.mismatched == 0
