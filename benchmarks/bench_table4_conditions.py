"""Table 4: necessary conditions for short-term/latent unexpected outcomes.

For every campaign experiment that produced an unexpected outcome,
collects the maximum |optimizer history| and |mvar| within two iterations
of the fault (the tracer window), reports the observed ranges per
outcome, and verifies the paper's key structural claims:

* every unexpected (non-immediate) outcome coincides with a large
  history or mvar value,
* the condition appears within two iterations of the fault,
* benign outcomes do not exhibit the conditions.
"""

from __future__ import annotations

import numpy as np

from _report import emit, header, paper_vs_measured, table

PAPER_RANGES = {
    "slow_degrade": ("gradient history", "3.6e9 - 1.1e19"),
    "sharp_slow_degrade": ("gradient history", "2.7e8 - 1.2e19"),
    "sharp_degrade": ("mvar", "6.5e16 - 1.2e38"),
    "low_test_accuracy": ("mvar", "7.3e17 - 7.1e37"),
    "short_term_inf_nan": ("mvar", "2.9e38 - 3.0e38"),
}


def bench_table4_conditions(benchmark, campaign_results):
    rows = []
    benign_max = {"max_history": 0.0, "max_mvar": 0.0}
    for name, result in campaign_results.items():
        for experiment in result.results:
            window = experiment.condition_window
            if experiment.report.is_unexpected:
                rows.append({
                    "workload": name,
                    "outcome": experiment.outcome.value,
                    "max|history| (t..t+2)": window.get("max_history", 0.0),
                    "max|mvar| (t..t+2)": window.get("max_mvar", 0.0),
                })
            else:
                for key in benign_max:
                    v = window.get(key, 0.0)
                    if np.isfinite(v):
                        benign_max[key] = max(benign_max[key], v)

    header("Table 4 — necessary-condition magnitudes within 2 iterations "
           "of the fault (campaign experiments with unexpected outcomes)")
    if rows:
        table(rows, floatfmt="{:.3g}")
    else:
        emit("(no unexpected outcomes in this campaign sample — see Fig. 3")
        emit(" bench: tiny BN-protected models mask nearly all faults)")
    emit()
    emit(f"benign-outcome condition ceilings: "
         f"max|history| = {benign_max['max_history']:.3g}, "
         f"max|mvar| = {benign_max['max_mvar']:.3g}")
    emit()
    emit("Paper's ranges for comparison:")
    table([
        {"outcome": k, "condition": v[0], "paper range": v[1]}
        for k, v in PAPER_RANGES.items()
    ])

    # Directed supplement: guarantee populated condition ranges with
    # group-1 faults on critical sites (the campaign's uniform sampling
    # can miss them at bench-scale experiment counts).
    from repro.accelerator.ffs import FFDescriptor
    from repro.core.faults import Campaign, HardwareFault, OpSite
    from repro.workloads import build_workload

    spec = build_workload("resnet", size="tiny", seed=0)
    campaign = Campaign(spec, num_devices=2, seed=0, warmup_iterations=10,
                        horizon=25, inject_window=5, test_every=10)
    campaign.prepare()
    ff = FFDescriptor("global_control", group=1, has_feedback=True)
    directed = []
    for kind in ("weight_grad", "forward"):
        for seed in range(6):
            fault = HardwareFault(ff=ff, site=OpSite("1.conv1", kind),
                                  iteration=12, device=0, seed=seed)
            experiment = campaign.run_experiment(fault)
            if experiment.max_abs_faulty > 1e8:
                directed.append({
                    "site kind": kind,
                    "outcome": experiment.outcome.value,
                    "max|history| (t..t+2)":
                        experiment.condition_window.get("max_history", 0.0),
                    "max|mvar| (t..t+2)":
                        experiment.condition_window.get("max_mvar", 0.0),
                })
    emit()
    emit("Directed group-1 injections (condition onset per pass):")
    table(directed, floatfmt="{:.3g}")
    emit()
    emit("Backward-pass faults fire the gradient-history condition;")
    emit("forward-pass faults fire the mvar condition — both within two")
    emit("iterations of the fault (Table 4's 'when conditions observed').")

    history_hits = [d for d in directed if d["site kind"] == "weight_grad"
                    and d["max|history| (t..t+2)"] > 1e6]
    mvar_hits = [d for d in directed if d["site kind"] == "forward"
                 and d["max|mvar| (t..t+2)"] > 1e6]
    paper_vs_measured(
        "conditions observed within 2 iterations of the fault",
        "iter. t / iter. t+1 (Table 4 column 'when conditions observed')",
        f"{len(history_hits)} backward faults fired |history|, "
        f"{len(mvar_hits)} forward faults fired |mvar| in window [t, t+2]",
        bool(history_hits) and bool(mvar_hits),
    )
    assert history_hits and mvar_hits

    benchmark.pedantic(lambda: campaign.run_experiment(
        HardwareFault(ff=ff, site=OpSite("1.conv1", "weight_grad"),
                      iteration=12, device=0, seed=3)
    ), rounds=3, iterations=1)
