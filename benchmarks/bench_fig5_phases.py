"""Fig. 5: the three phases of SlowDegrade / SharpSlowDegrade.

Reproduces the convergence-trend decomposition: a backward-pass fault
corrupts Adam's history, and relative to the fault-free reference run the
accuracy deficit (1) grows while the faulty first moment dominates
updates, (2) plateaus while the huge second moment suppresses learning,
and (3) shrinks as the corrupted state loses its grip (Phase 3,
"training/test accuracy may recover").

The analytic model (:func:`expected_stagnation_iterations`) extrapolates
the Phase-2 length to the paper's datacenter example: decay 0.9999 with a
faulty history value of 1e19 crosses back to normal only after ~4e5
iterations — "may require millions of iterations to fully recover".
"""

from __future__ import annotations

from _report import emit, header, paper_vs_measured, table
from conftest import NUM_DEVICES
from bench_fig2_latent_outcomes import ControlledFault
from repro.core.analysis.phases import (
    decompose_phases_vs_reference,
    expected_stagnation_iterations,
)
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload

INJECT_AT = 20
TOTAL = 220


def _trainer():
    spec = build_workload("resnet_nobn", size="tiny", seed=0)
    return SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                   test_every=0, stop_on_nonfinite=False)


def bench_fig5_phases(benchmark):
    reference = _trainer()
    reference.train(TOTAL)
    ref_acc = reference.record.train_accuracy_array()

    trainer = _trainer()
    trainer.add_hook(ControlledFault("2.conv1", "input_grad", INJECT_AT, device=1,
                                     magnitude=1e12, elements=1024, seed=1,
                                     coherent=True))
    trainer.train(TOTAL)
    acc = trainer.record.train_accuracy_array()
    analysis = decompose_phases_vs_reference(acc, ref_acc, INJECT_AT)

    header("Fig. 5 — three phases of SlowDegrade (accuracy deficit vs the "
           "fault-free reference)")
    table([
        {"phase": "1: degradation (faulty m dominates updates)",
         "iterations": str(analysis.degrade_span)},
        {"phase": "2: stagnation (huge v suppresses learning)",
         "iterations": str(analysis.stagnation_span)},
        {"phase": "3: recovery (corrupted state decays)",
         "iterations": str(analysis.recovery_span)},
    ])
    emit(f"recovered within the {TOTAL}-iteration budget: {analysis.recovered}")
    emit()
    emit("deficit (reference - faulty) every 10 iterations from the fault:")
    deficit = ref_acc - acc
    emit("  " + " ".join(f"{d:+.2f}" for d in deficit[INJECT_AT::10]))
    emit()

    iters = expected_stagnation_iterations(1e19, 0.9999)
    paper_vs_measured(
        "recovery horizon for decay 0.9999 and faulty history ~1e19",
        "may require millions of iterations to fully recover (Sec. 4.2.3)",
        f"analytic v-decay crossing at {iters:,.0f} iterations",
        iters > 1e5,
    )
    table([{"decay": d, "faulty magnitude": m,
            "stagnation_iters": expected_stagnation_iterations(m, d)}
           for d in (0.9, 0.999, 0.9999) for m in (1e10, 1e19)],
          floatfmt="{:.3g}")

    assert analysis.has_three_phases

    benchmark.pedantic(
        lambda: decompose_phases_vs_reference(acc, ref_acc, INJECT_AT),
        rounds=20, iterations=1,
    )
