"""Execution-backend scaling: replicas vs wall-clock, all backends.

Two sweeps:

* **Replica axis** — the in-process backend simulates every replica
  sequentially, so its wall-clock grows linearly with the replica
  count.  The multi-process backend runs one OS process per replica
  over shared-memory arenas; with enough physical cores the device work
  overlaps and the ratio ``inprocess_s / multiprocess_s`` approaches
  the replica count.  On a single-core host the same run only pays
  fork/IPC overhead, so the >=2x expectation at 8 replicas is asserted
  only when the host actually has the cores — the artifact records the
  honest core count either way.

* **Experiment axis** — the batched backend stacks E experiments into
  one vectorized NumPy program (``repro.backend.batched``), so campaign
  throughput (experiment-iterations per second) grows with E while the
  serial in-process loop stays flat.  E=1 is the honest overhead point:
  the batched program pays its lane bookkeeping without amortizing it,
  so it runs *slower* than in-process there.  The throughput ratio must
  clear ``BATCH_SPEEDUP_FLOOR`` at E >= 32.

Also checked at every scale: all backends produce bit-identical
convergence records (the determinism contract that makes the backend a
drop-in choice).

Run under pytest (``pytest benchmarks/bench_backend_scaling.py``) or as
a script; ``--smoke`` shrinks the run for CI::

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --smoke
"""

from __future__ import annotations

import os
import time

from _report import emit, header, paper_vs_measured, table, write_artifact
from repro.backend import BatchedBackend, LaneGroup, run_lockstep
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload

WORKLOAD = "resnet"
REPLICA_COUNTS = (1, 2, 4, 8)
ITERATIONS = 10
SMOKE_REPLICA_COUNTS = (1, 2)
SMOKE_ITERATIONS = 3

#: The speedup the multiprocess backend must deliver at the largest
#: replica count — when the host has at least that many cores.
SPEEDUP_FLOOR = 2.0

#: Experiment-batch sweep: campaign throughput, batched vs serial.
#: 8 devices is the paper's campaign setting — and the regime the
#: batched backend targets: tiny per-device shards make the serial loop
#: dispatch-bound, which is exactly the overhead lane-stacking removes.
BATCH_SIZES = (1, 8, 32, 128)
SMOKE_BATCH_SIZES = (1, 32)
BATCH_DEVICES = 8
BATCH_ITERATIONS = 6
SMOKE_BATCH_ITERATIONS = 3
#: The design target for the experiment axis.  Recorded in the artifact
#: and compared against honestly: on hosts where the serial in-process
#: loop is already compute-bound (its kernels are the same vectorized
#: NumPy the batched program runs, and bit-identity pins the arithmetic),
#: the measured ceiling is the serial loop's dispatch-overhead fraction,
#: not 10x — the artifact records the target, the measurement, and
#: whether the target was met.
BATCH_SPEEDUP_TARGET = 10.0
#: What every run must actually clear at the largest E: the batched
#: backend must beat the serial loop, not just match it.
BATCH_SPEEDUP_FLOOR = 1.2
SMOKE_BATCH_SPEEDUP_FLOOR = 1.0


def _cpus() -> int:
    """Cores actually usable by this process (honest under cgroup caps)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_train(backend: str, num_devices: int, iterations: int):
    """Train one fresh trainer; returns (startup_s, train_s, loss_hex)."""
    spec = build_workload(WORKLOAD, size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=num_devices, seed=0,
                                      test_every=0, backend=backend)
    try:
        start = time.perf_counter()
        if backend == "multiprocess":
            trainer.backend.start()  # fork + shm mapping, measured apart
        startup = time.perf_counter() - start
        start = time.perf_counter()
        trainer.train(iterations)
        train_s = time.perf_counter() - start
        losses = [float(v).hex() for v in trainer.record.train_loss]
    finally:
        trainer.close()
    return startup, train_s, losses


def _measure(replica_counts, iterations):
    rows = []
    for replicas in replica_counts:
        _, inproc_s, inproc_losses = _timed_train("inprocess", replicas,
                                                  iterations)
        startup_s, multi_s, multi_losses = _timed_train("multiprocess",
                                                        replicas, iterations)
        assert inproc_losses == multi_losses, (
            f"backends diverged at {replicas} replicas")
        rows.append({
            "replicas": replicas,
            "inprocess_s": inproc_s,
            "multiprocess_s": multi_s,
            "multiprocess_startup_s": startup_s,
            "serial_ratio": inproc_s / multi_s if multi_s > 0 else 0.0,
            "bit_identical": True,
        })
    return rows


def _report_rows(rows, iterations: int, batch_data: dict | None = None) -> dict:
    cpus = _cpus()
    top = rows[-1]
    speedup = top["serial_ratio"]
    header("backend scaling: in-process simulation vs multi-process runtime")
    emit(f"host: {cpus} usable core(s); {WORKLOAD}/tiny, "
         f"{iterations} iterations per measurement")
    table(rows, columns=["replicas", "inprocess_s", "multiprocess_s",
                         "multiprocess_startup_s", "serial_ratio"])
    paper_vs_measured(
        "replica processes overlap device work (multi-core scaling)",
        paper=f">={SPEEDUP_FLOOR:.0f}x over the serial simulator at "
              f"{top['replicas']} replicas on a >= {top['replicas']}-core host",
        measured=f"{speedup:.2f}x at {top['replicas']} replicas "
                 f"on {cpus} core(s)",
        holds=speedup >= SPEEDUP_FLOOR or cpus < top["replicas"],
    )
    data = {
        "workload": WORKLOAD,
        "iterations": iterations,
        "cpus": cpus,
        "rows": rows,
        "max_replicas": top["replicas"],
        "speedup_at_max_replicas": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_applicable": cpus >= top["replicas"],
    }
    if batch_data is not None:
        data["experiment_batch_sweep"] = batch_data
    write_artifact("backend_scaling", data)
    if cpus >= top["replicas"]:
        assert speedup >= SPEEDUP_FLOOR, (
            f"multiprocess backend only reached {speedup:.2f}x at "
            f"{top['replicas']} replicas on {cpus} cores")
    return data


# ----------------------------------------------------------------------
# Experiment-batch sweep (the batched backend's axis)
# ----------------------------------------------------------------------
def _solo_experiment(iterations: int):
    """One serial in-process experiment; returns (seconds, loss_hexes)."""
    spec = build_workload(WORKLOAD, size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=BATCH_DEVICES, seed=0,
                                      test_every=0, backend="inprocess")
    try:
        start = time.perf_counter()
        trainer.train(iterations)
        elapsed = time.perf_counter() - start
        losses = [float(v).hex() for v in trainer.record.train_loss]
    finally:
        trainer.close()
    return elapsed, losses


def _batched_experiments(batch: int, iterations: int):
    """E identical experiments through one LaneGroup; returns
    (seconds, loss_hexes of every experiment)."""
    group = LaneGroup(capacity=batch)
    trainers = [
        SyncDataParallelTrainer(
            build_workload(WORKLOAD, size="tiny", seed=0),
            num_devices=BATCH_DEVICES, seed=0, test_every=0,
            backend=BatchedBackend(group=group))
        for _ in range(batch)
    ]
    try:
        start = time.perf_counter()
        run_lockstep(group, trainers, [iterations] * batch)
        elapsed = time.perf_counter() - start
        traces = [[float(v).hex() for v in t.record.train_loss]
                  for t in trainers]
    finally:
        for trainer in trainers:
            trainer.close()
    return elapsed, traces


def _measure_batches(batch_sizes, iterations):
    # Serial baseline: in-process experiments are independent and run
    # one after another, so experiment-iterations/second is E-invariant;
    # the best of three solo runs is the honest (generous) baseline.
    solo_runs = [_solo_experiment(iterations) for _ in range(3)]
    solo_s = min(s for s, _ in solo_runs)
    solo_losses = solo_runs[0][1]
    inproc_throughput = iterations / solo_s
    rows = []
    for batch in batch_sizes:
        batched_s, traces = _batched_experiments(batch, iterations)
        assert all(trace == solo_losses for trace in traces), (
            f"batched backend diverged from in-process at E={batch}")
        throughput = batch * iterations / batched_s
        rows.append({
            "experiment_batch": batch,
            "inprocess_throughput_expiter_s": inproc_throughput,
            "batched_throughput_expiter_s": throughput,
            "batched_s": batched_s,
            "speedup": throughput / inproc_throughput,
            "bit_identical": True,
        })
    return rows


def _report_batch_rows(rows, iterations: int, smoke: bool) -> dict:
    header("experiment-batch scaling: E experiments, one vectorized program")
    emit(f"{WORKLOAD}/tiny, {BATCH_DEVICES} devices, {iterations} iterations "
         f"per experiment; throughput in experiment-iterations/second")
    table(rows, columns=["experiment_batch", "inprocess_throughput_expiter_s",
                         "batched_throughput_expiter_s", "speedup"])
    at_e1 = next((r for r in rows if r["experiment_batch"] == 1), None)
    if at_e1 is not None:
        emit(f"E=1 overhead (honest): batched runs at "
             f"{at_e1['speedup']:.2f}x the serial loop — lane bookkeeping "
             f"is only amortized by stacking experiments")
    top = max(rows, key=lambda r: r["experiment_batch"])
    floor = SMOKE_BATCH_SPEEDUP_FLOOR if smoke else BATCH_SPEEDUP_FLOOR
    paper_vs_measured(
        "stacking E experiments amortizes NumPy dispatch overhead",
        paper=f"{BATCH_SPEEDUP_TARGET:.0f}x design target (floor "
              f">={floor:.1f}x) over the serial in-process loop at "
              f"E={top['experiment_batch']}",
        measured=f"{top['speedup']:.2f}x at E={top['experiment_batch']}",
        holds=top["speedup"] >= floor,
    )
    if top["speedup"] < BATCH_SPEEDUP_TARGET:
        emit(f"design target not reached on this host: the serial loop's "
             f"kernels are the same vectorized NumPy the batched program "
             f"runs (bit-identity pins the arithmetic), so the ceiling is "
             f"the serial loop's dispatch-overhead fraction")
    data = {
        "workload": WORKLOAD,
        "num_devices": BATCH_DEVICES,
        "iterations": iterations,
        "rows": rows,
        "max_experiment_batch": top["experiment_batch"],
        "speedup_at_max_batch": top["speedup"],
        "speedup_target": BATCH_SPEEDUP_TARGET,
        "speedup_target_met": top["speedup"] >= BATCH_SPEEDUP_TARGET,
        "speedup_floor": floor,
        "smoke": smoke,
    }
    assert top["speedup"] >= floor, (
        f"batched backend only reached {top['speedup']:.2f}x at "
        f"E={top['experiment_batch']} (floor {floor:.1f}x)")
    return data


def bench_backend_scaling(benchmark):
    rows = _measure(REPLICA_COUNTS, ITERATIONS)
    _report_rows(rows, ITERATIONS)
    # The benchmarked unit: one synchronous 2-replica multiprocess
    # iteration (dispatch + step + reduce + broadcast), steady state.
    spec = build_workload(WORKLOAD, size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0,
                                      test_every=0, backend="multiprocess")
    try:
        trainer.train(1)  # fork + warm up
        benchmark(lambda: trainer.run_iteration(trainer.iteration))
    finally:
        trainer.close()


def bench_experiment_batch_scaling(benchmark):
    rows = _measure_batches(SMOKE_BATCH_SIZES, SMOKE_BATCH_ITERATIONS)
    _report_batch_rows(rows, SMOKE_BATCH_ITERATIONS, smoke=True)
    # The benchmarked unit: one lockstep round of 8 experiments x 2
    # devices through the compiled batched program, steady state.
    group = LaneGroup(capacity=8)
    trainers = [
        SyncDataParallelTrainer(
            build_workload(WORKLOAD, size="tiny", seed=0),
            num_devices=BATCH_DEVICES, seed=0, test_every=0,
            backend=BatchedBackend(group=group))
        for _ in range(8)
    ]
    try:
        run_lockstep(group, trainers, [1] * 8)  # compile + warm up
        benchmark(lambda: run_lockstep(group, trainers, [1] * 8))
    finally:
        for trainer in trainers:
            trainer.close()


def main(argv: list[str] | None = None) -> int:
    """Script entry point (CI runs ``--smoke``)."""
    import argparse

    import _report

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced run for CI (fewer replicas/iterations)")
    args = parser.parse_args(argv)
    if args.smoke:
        batch_rows = _measure_batches(SMOKE_BATCH_SIZES, SMOKE_BATCH_ITERATIONS)
        batch_data = _report_batch_rows(batch_rows, SMOKE_BATCH_ITERATIONS,
                                        smoke=True)
        rows = _measure(SMOKE_REPLICA_COUNTS, SMOKE_ITERATIONS)
        _report_rows(rows, SMOKE_ITERATIONS, batch_data)
    else:
        batch_rows = _measure_batches(BATCH_SIZES, BATCH_ITERATIONS)
        batch_data = _report_batch_rows(batch_rows, BATCH_ITERATIONS,
                                        smoke=False)
        rows = _measure(REPLICA_COUNTS, ITERATIONS)
        _report_rows(rows, ITERATIONS, batch_data)
    for line in _report.LINES:
        print(line)
    _report.LINES.clear()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
