"""Execution-backend scaling: replicas vs wall-clock, both backends.

The in-process backend simulates every replica sequentially, so its
wall-clock grows linearly with the replica count.  The multi-process
backend runs one OS process per replica over shared-memory arenas; with
enough physical cores the device work overlaps and the ratio
``inprocess_s / multiprocess_s`` approaches the replica count.  On a
single-core host the same run only pays fork/IPC overhead, so the >=2x
expectation at 8 replicas is asserted only when the host actually has
the cores — the artifact records the honest core count either way.

Also checked at every scale: the two backends produce bit-identical
convergence records (the determinism contract that makes the backend a
drop-in choice).

Run under pytest (``pytest benchmarks/bench_backend_scaling.py``) or as
a script; ``--smoke`` shrinks the run for CI::

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --smoke
"""

from __future__ import annotations

import os
import time

from _report import emit, header, paper_vs_measured, table, write_artifact
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload

WORKLOAD = "resnet"
REPLICA_COUNTS = (1, 2, 4, 8)
ITERATIONS = 10
SMOKE_REPLICA_COUNTS = (1, 2)
SMOKE_ITERATIONS = 3

#: The speedup the multiprocess backend must deliver at the largest
#: replica count — when the host has at least that many cores.
SPEEDUP_FLOOR = 2.0


def _cpus() -> int:
    """Cores actually usable by this process (honest under cgroup caps)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_train(backend: str, num_devices: int, iterations: int):
    """Train one fresh trainer; returns (startup_s, train_s, loss_hex)."""
    spec = build_workload(WORKLOAD, size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=num_devices, seed=0,
                                      test_every=0, backend=backend)
    try:
        start = time.perf_counter()
        if backend == "multiprocess":
            trainer.backend.start()  # fork + shm mapping, measured apart
        startup = time.perf_counter() - start
        start = time.perf_counter()
        trainer.train(iterations)
        train_s = time.perf_counter() - start
        losses = [float(v).hex() for v in trainer.record.train_loss]
    finally:
        trainer.close()
    return startup, train_s, losses


def _measure(replica_counts, iterations):
    rows = []
    for replicas in replica_counts:
        _, inproc_s, inproc_losses = _timed_train("inprocess", replicas,
                                                  iterations)
        startup_s, multi_s, multi_losses = _timed_train("multiprocess",
                                                        replicas, iterations)
        assert inproc_losses == multi_losses, (
            f"backends diverged at {replicas} replicas")
        rows.append({
            "replicas": replicas,
            "inprocess_s": inproc_s,
            "multiprocess_s": multi_s,
            "multiprocess_startup_s": startup_s,
            "serial_ratio": inproc_s / multi_s if multi_s > 0 else 0.0,
            "bit_identical": True,
        })
    return rows


def _report_rows(rows, iterations: int) -> dict:
    cpus = _cpus()
    top = rows[-1]
    speedup = top["serial_ratio"]
    header("backend scaling: in-process simulation vs multi-process runtime")
    emit(f"host: {cpus} usable core(s); {WORKLOAD}/tiny, "
         f"{iterations} iterations per measurement")
    table(rows, columns=["replicas", "inprocess_s", "multiprocess_s",
                         "multiprocess_startup_s", "serial_ratio"])
    paper_vs_measured(
        "replica processes overlap device work (multi-core scaling)",
        paper=f">={SPEEDUP_FLOOR:.0f}x over the serial simulator at "
              f"{top['replicas']} replicas on a >= {top['replicas']}-core host",
        measured=f"{speedup:.2f}x at {top['replicas']} replicas "
                 f"on {cpus} core(s)",
        holds=speedup >= SPEEDUP_FLOOR or cpus < top["replicas"],
    )
    data = {
        "workload": WORKLOAD,
        "iterations": iterations,
        "cpus": cpus,
        "rows": rows,
        "max_replicas": top["replicas"],
        "speedup_at_max_replicas": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_applicable": cpus >= top["replicas"],
    }
    write_artifact("backend_scaling", data)
    if cpus >= top["replicas"]:
        assert speedup >= SPEEDUP_FLOOR, (
            f"multiprocess backend only reached {speedup:.2f}x at "
            f"{top['replicas']} replicas on {cpus} cores")
    return data


def bench_backend_scaling(benchmark):
    rows = _measure(REPLICA_COUNTS, ITERATIONS)
    _report_rows(rows, ITERATIONS)
    # The benchmarked unit: one synchronous 2-replica multiprocess
    # iteration (dispatch + step + reduce + broadcast), steady state.
    spec = build_workload(WORKLOAD, size="tiny", seed=0)
    trainer = SyncDataParallelTrainer(spec, num_devices=2, seed=0,
                                      test_every=0, backend="multiprocess")
    try:
        trainer.train(1)  # fork + warm up
        benchmark(lambda: trainer.run_iteration(trainer.iteration))
    finally:
        trainer.close()


def main(argv: list[str] | None = None) -> int:
    """Script entry point (CI runs ``--smoke``)."""
    import argparse

    import _report

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced run for CI (fewer replicas/iterations)")
    args = parser.parse_args(argv)
    if args.smoke:
        rows = _measure(SMOKE_REPLICA_COUNTS, SMOKE_ITERATIONS)
        _report_rows(rows, SMOKE_ITERATIONS)
    else:
        rows = _measure(REPLICA_COUNTS, ITERATIONS)
        _report_rows(rows, ITERATIONS)
    for line in _report.LINES:
        print(line)
    _report.LINES.clear()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
