"""Fig. 2: the four new latent unexpected outcomes.

Constructs one instance of each latent outcome class through the
mechanism the paper identifies for it, with the faulty magnitude inside
the Table 4 necessary-condition band for that outcome (random full-range
faults usually overflow straight to INFs/NaNs — the latent outcomes live
in the band below overflow, which is exactly the paper's point).  The
(blind) convergence classifier then recognizes each.

* SlowDegrade        — backward-pass input-gradient fault: every upstream
                       layer's weight-gradient (hence Adam history) is
                       corrupted; accuracy sags for tens of iterations and
                       recovers only slowly (Table 4 band 3.6e9-1.1e19);
* SharpSlowDegrade   — forward-pass fault on the no-normalization model,
                       injected once training has converged: the faulty
                       device's shard predictions collapse at iteration t
                       (the sharp component) and the corrupted history
                       degrades accuracy afterwards (the slow component);
* SharpDegrade       — weight-update fault under SGD: large random
                       weights appear instantly and the non-normalizing
                       optimizer corrects them only slowly;
* LowTestAccuracy    — forward-pass fault inflating one device's moving
                       variance under BatchNorm decay 0.99: training
                       accuracy is intact, that device's test accuracy is
                       destroyed (Table 4 band 7.3e17-7.1e37).
"""

from __future__ import annotations

import numpy as np

from _report import emit, header, table
from conftest import NUM_DEVICES
from repro.core.analysis.classify import Outcome, classify_outcome
from repro.distributed import SyncDataParallelTrainer
from repro.workloads import build_workload

TOTAL = 160
SLOW_TOTAL = 120  # SlowDegrade horizon: long enough to show the low phase,
                  # short enough that the recovery phase lies beyond it
EARLY, LATE = 20, 60  # injection points for early- vs converged-phase faults


class ControlledFault:
    """One-shot hook writing a fixed-magnitude block fault into one op
    site of one device — a Table 1 group-1 fault with its values pinned
    inside a chosen magnitude band.

    ``coherent=True`` writes a single sign (the structure a rank-1
    backward-pass fault imposes on upstream weight gradients).
    """

    def __init__(self, site: str, kind: str, iteration: int, device: int,
                 magnitude: float, elements: int = 16, seed: int = 0,
                 coherent: bool = False):
        self.site, self.kind = site, kind
        self.iteration, self.device = iteration, device
        self.magnitude, self.elements = magnitude, elements
        self.coherent = coherent
        self.rng = np.random.default_rng(seed)
        self.fired = False
        self._module = None

    def _hook(self, tensor, info):
        if self.fired:
            return tensor
        self.fired = True
        out = np.array(tensor, dtype=np.float32, copy=True, order="C")
        flat = out.reshape(-1)
        count = min(self.elements, flat.size)
        idx = self.rng.choice(flat.size, size=count, replace=False)
        if self.coherent:
            flat[idx] = np.float32(self.magnitude)
        else:
            signs = self.rng.choice([-1.0, 1.0], size=count)
            flat[idx] = (signs * self.magnitude).astype(np.float32)
        return out

    def before_iteration(self, trainer, iteration):
        if iteration != self.iteration:
            return
        module = dict(trainer.replicas[self.device].named_modules())[self.site]
        module.set_fault_hook(self.kind, self._hook)
        self._module = module

    def after_iteration(self, trainer, iteration, loss, acc):
        if self._module is not None:
            self._module.set_fault_hook(self.kind, None)
            self._module = None


class ControlledUpdateFault:
    """One-shot weight-update fault: random-sign values of fixed
    magnitude replace one parameter's update tensor (the SGD path of
    Sec. 4.2.2)."""

    def __init__(self, iteration: int, magnitude: float, param_index: int):
        self.iteration = iteration
        self.magnitude = magnitude
        self.param_index = param_index
        self.fired = False
        self.rng = np.random.default_rng(0)

    def _hook(self, update, info):
        if self.fired or info["index"] != self.param_index:
            return update
        self.fired = True
        out = np.array(update, copy=True)
        signs = self.rng.choice([-1.0, 1.0], size=out.shape)
        out[...] = (signs * self.magnitude).astype(np.float32)
        return out

    def before_iteration(self, trainer, iteration):
        if iteration == self.iteration:
            trainer.optimizer.set_update_hook(self._hook)

    def after_iteration(self, trainer, iteration, loss, acc):
        if iteration == self.iteration:
            trainer.optimizer.set_update_hook(None)


def _trainer(workload, eval_device=0):
    spec = build_workload(workload, size="tiny", seed=0)
    return SyncDataParallelTrainer(spec, num_devices=NUM_DEVICES, seed=0,
                                   test_every=10, eval_device=eval_device,
                                   stop_on_nonfinite=False)


def _reference(workload, total=TOTAL):
    trainer = _trainer(workload)
    trainer.train(total)
    return trainer.record


def _curve(record, lo, hi, step=2):
    acc = record.train_accuracy_array()
    return " ".join(f"{a:.2f}" for a in acc[lo:hi:step])


def bench_fig2_latent_outcomes(benchmark):
    rows = []
    references = {w: _reference(w) for w in
                  ("resnet_nobn", "resnet_sgd", "resnet_largedecay")}
    reference_slow = _reference("resnet_nobn", total=SLOW_TOTAL)

    # --- SlowDegrade --------------------------------------------------------
    trainer = _trainer("resnet_nobn", eval_device=1)
    trainer.add_hook(ControlledFault("2.conv1", "input_grad", EARLY, device=1,
                                     magnitude=1e12, elements=1024, seed=1,
                                     coherent=True))
    trainer.train(SLOW_TOTAL)
    rec_slow = trainer.record
    out_slow = classify_outcome(rec_slow, reference_slow, EARLY).outcome
    rows.append({"outcome": "SlowDegrade",
                 "mechanism": "backward input-grad fault, Adam history ~1e12",
                 "classified": out_slow.value,
                 "train-acc every 2 iters":
                     _curve(rec_slow, EARLY - 2, EARLY + 40)})

    # --- SharpSlowDegrade ---------------------------------------------------
    trainer = _trainer("resnet_nobn")
    trainer.add_hook(ControlledFault("1.conv1", "forward", LATE, device=0,
                                     magnitude=1e6, elements=1000, seed=2))
    trainer.train(TOTAL)
    rec_ss = trainer.record
    out_ss = classify_outcome(rec_ss, references["resnet_nobn"], LATE).outcome
    rows.append({"outcome": "SharpSlowDegrade",
                 "mechanism": "forward fault, NoBN, after convergence",
                 "classified": out_ss.value,
                 "train-acc every 2 iters": _curve(rec_ss, LATE - 2, LATE + 40)})

    # --- SharpDegrade -------------------------------------------------------
    probe = _trainer("resnet_sgd")
    clf_index = [n for n, _ in probe.master.named_parameters()].index("4.weight")
    trainer = _trainer("resnet_sgd")
    trainer.add_hook(ControlledUpdateFault(LATE, magnitude=100.0,
                                           param_index=clf_index))
    trainer.train(TOTAL)
    rec_sharp = trainer.record
    out_sharp = classify_outcome(rec_sharp, references["resnet_sgd"], LATE).outcome
    rows.append({"outcome": "SharpDegrade",
                 "mechanism": "weight-update fault, SGD, |w|~100",
                 "classified": out_sharp.value,
                 "train-acc every 2 iters": _curve(rec_sharp, LATE - 2, LATE + 40)})

    # --- LowTestAccuracy -----------------------------------------------------
    trainer = _trainer("resnet_largedecay", eval_device=1)
    trainer.add_hook(ControlledFault("1.conv1", "forward", LATE, device=1,
                                     magnitude=1e18, elements=64, seed=3))
    trainer.train(TOTAL)
    rec_low = trainer.record
    out_low = classify_outcome(rec_low, references["resnet_largedecay"], LATE).outcome
    test_curve = " ".join(f"{a:.2f}" for a in rec_low.test_acc)
    ref_test = references["resnet_largedecay"].final_test_accuracy()
    rows.append({"outcome": "LowTestAccuracy",
                 "mechanism": f"forward fault -> mvar, decay 0.99 (ref test {ref_test:.2f})",
                 "classified": out_low.value,
                 "train-acc every 2 iters": "test acc: " + test_curve})

    header("Fig. 2 — the four latent unexpected outcomes (directed "
           "instances within Table 4 magnitude bands)")
    table(rows)
    emit()
    emit("Shape agreement: SlowDegrade appears via backward faults under a")
    emit("normalizing optimizer; SharpSlowDegrade requires no normalization")
    emit("layers and a forward fault; SharpDegrade requires a non-normalizing")
    emit("optimizer; LowTestAccuracy leaves training accuracy intact while")
    emit("the faulty device's test accuracy collapses under slow mvar decay.")

    latent = [out_slow, out_ss, out_sharp, out_low]
    assert all(o.is_latent for o in latent), [o.value for o in latent]
    assert out_low == Outcome.LOW_TEST_ACCURACY

    def one_instance():
        t = _trainer("resnet_nobn", eval_device=1)
        t.add_hook(ControlledFault("2.conv1", "input_grad", 5, device=1,
                                   magnitude=1e12, elements=1024, seed=1,
                                   coherent=True))
        t.train(12)

    benchmark.pedantic(one_instance, rounds=2, iterations=1)
