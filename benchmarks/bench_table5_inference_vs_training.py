"""Table 5: resilience properties of inference vs. training.

Applies the same fault population to (a) pure inference on a trained
model and (b) the training process, and contrasts the outcome profiles:

* inference: a control fault that flips many outputs usually changes the
  prediction (SDC) — there is no recovery mechanism;
* training: the same faults are mostly absorbed (Observation 1), and the
  INFs/NaNs class — absent in inference studies per Table 5 — appears.
"""

from __future__ import annotations

from _report import emit, header, paper_vs_measured, table
from repro.core.faults import InferenceCampaign
from repro.workloads import build_workload

EXPERIMENTS = 60


def bench_table5_inference_vs_training(benchmark, campaign_results):
    spec = build_workload("resnet", size="tiny", seed=0)
    inference = InferenceCampaign(spec, seed=0, num_devices=2)
    inference_stats = inference.run(EXPERIMENTS, seed=11)

    training = campaign_results["resnet"]
    training_unexpected = training.unexpected_fraction()
    breakdown = training.breakdown()
    inf_nan_fraction = sum(
        fraction for outcome, fraction in breakdown.items()
        if "inf_nan" in outcome
    )

    header("Table 5 — inference vs. training resilience "
           f"({EXPERIMENTS} inference faults, "
           f"{training.num_experiments} training faults; resnet)")
    table([
        {"property": "fault changes the outcome",
         "inference": f"SDC rate {inference_stats['sdc_rate']:.2f}",
         "training": f"unexpected rate {training_unexpected:.2f}"},
        {"property": "non-finite values observed",
         "inference": f"{inference_stats['nonfinite_rate']:.2f} of runs",
         "training": f"{inf_nan_fraction:.2f} of runs reach INFs/NaNs"},
    ])
    emit()
    paper_vs_measured(
        "training absorbs faults that corrupt inference",
        "many inference conclusions do not transfer; training recovers "
        "unless history state is corrupted (Table 5)",
        f"inference SDC rate {inference_stats['sdc_rate']:.2f} vs training "
        f"unexpected rate {training_unexpected:.2f}",
        inference_stats["sdc_rate"] > training_unexpected,
    )
    emit()
    emit("Table 5 rows reproduced in other benches: normalization layers")
    emit("both mask (Ranger false-negative test) and exacerbate (mvar")
    emit("condition) training faults; INFs/NaNs are a training-specific")
    emit("outcome class (bench_table3); early-layer correlation holds only")
    emit("for SlowDegrade-path faults (bench_fig2's site choices).")

    benchmark.pedantic(lambda: inference.run(10, seed=12), rounds=3, iterations=1)
