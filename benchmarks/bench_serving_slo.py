"""Serving SLO curves vs in-flight fault rate (``repro.serving``).

Sweeps the fault plane's Poisson rate over the live request path —
dynamic batcher, vectorized forward, full shadow detection, batch
recovery — and records what each rate costs in user-visible terms:
p50/p99 latency, throughput, and silent corruptions per million
requests.  The zero-fault row is the control and must show **zero**
SDCs; rising rates buy detection/recovery work (shadow re-executions,
recovered batches) with the latency tail, which is exactly the
trade-off a production deployment of the paper's two-iteration recovery
would tune.

Run under pytest or as a script; ``--smoke`` shrinks the sweep for CI::

    PYTHONPATH=src python benchmarks/bench_serving_slo.py --smoke
"""

from __future__ import annotations

import asyncio
import time

from _report import emit, header, paper_vs_measured, table, write_artifact
from repro.serving import InferenceSession, ServingEngine
from repro.workloads import build_workload

FAULT_RATES = (0.0, 0.05, 0.2, 0.5)
REQUESTS = 400
RPS = 200.0
TRAIN_ITERATIONS = 8
MAX_BATCH = 8


async def _drive(engine: ServingEngine, requests: int, rps: float) -> dict:
    """Open-loop drive of one engine (no TCP; the request path only)."""
    collector = asyncio.ensure_future(engine.batcher.run())
    loop = asyncio.get_running_loop()
    start = loop.time() + 0.01
    num_samples = engine.session.num_samples

    async def one(i: int):
        delay = (start + i / rps) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        return await engine.predict(i % num_samples)

    wall = time.perf_counter()
    await asyncio.gather(*(one(i) for i in range(requests)))
    wall = time.perf_counter() - wall
    engine.batcher.stop()
    await collector
    summary = engine.summary()
    summary["wall_s"] = wall
    return summary


def _sweep(rates, requests: int, rps: float,
           train_iterations: int) -> list[dict]:
    spec = build_workload("resnet", size="tiny", seed=0)
    session = InferenceSession(spec, seed=0,
                               train_iterations=train_iterations,
                               num_devices=2)
    rows = []
    for rate in rates:
        engine = ServingEngine(session, fault_rate=rate, seed=17,
                               max_batch=MAX_BATCH, max_wait_s=0.002,
                               shadow_rate=1.0, recover=True)
        summary = asyncio.run(_drive(engine, requests, rps))
        latency = summary["latency_seconds"]
        rows.append({
            "fault_rate": rate,
            "requests": summary["requests"],
            "responses": summary["responses"],
            "shed": summary["shed"],
            "throughput_rps": summary["responses"] / summary["wall_s"],
            "p50_ms": latency["p50"] * 1e3,
            "p99_ms": latency["p99"] * 1e3,
            "sdc_per_million": summary["sdc_per_million"],
            "shed_rate": summary["shed_rate"],
            "faults_fired": summary["faults_fired"],
            "shadow_execs": summary["shadow_execs"],
            "recovered_batches": summary["recovered_batches"],
            "outcomes": summary["outcomes"],
        })
    return rows


def _report_and_check(rows: list[dict], requests: int, rps: float) -> None:
    header(f"repro.serving — latency/SDC vs fault rate "
           f"({requests} requests @ {rps:g} rps, resnet/tiny, "
           f"max-batch {MAX_BATCH}, full shadow, recovery on)")
    table(rows, columns=["fault_rate", "throughput_rps", "p50_ms", "p99_ms",
                         "sdc_per_million", "shed_rate", "faults_fired",
                         "recovered_batches"])
    emit()
    control = rows[0]
    faulty = [r for r in rows if r["fault_rate"] > 0]
    detected = sum(r["outcomes"]["sdc"] + r["outcomes"]["nonfinite"]
                   for r in faulty)
    paper_vs_measured(
        "inference has no iteration-to-iteration recovery, so in-flight "
        "faults surface directly in responses (Table 5)",
        "fault-free serving is corruption-free; faulty serving needs "
        "detection + re-execution to stay so",
        f"0 faults -> {control['sdc_per_million']:.0f} SDC/M; swept rates "
        f"detected {detected} corrupt rows and recovered "
        f"{sum(r['recovered_batches'] for r in faulty)} batches",
        control["sdc_per_million"] == 0.0,
    )
    write_artifact("serving_slo", {
        "workload": "resnet/tiny",
        "requests_per_rate": requests,
        "rps": rps,
        "max_batch": MAX_BATCH,
        "shadow_rate": 1.0,
        "recover": True,
        "rows": rows,
    })
    assert control["fault_rate"] == 0.0
    assert control["sdc_per_million"] == 0.0, (
        "zero-fault serving reported SDCs: the control is corrupt")
    assert control["outcomes"] == {"masked": 0, "sdc": 0, "nonfinite": 0}
    assert all(r["responses"] + r["shed"] == r["requests"] for r in rows), (
        "requests leaked: responses + shed != submitted")
    assert any(r["faults_fired"] > 0 for r in faulty), (
        "the sweep never fired a fault; rates are too low for the "
        "request volume")


def bench_serving_slo(benchmark):
    rows = _sweep(FAULT_RATES, REQUESTS, RPS, TRAIN_ITERATIONS)
    _report_and_check(rows, REQUESTS, RPS)
    # The benchmarked quantity: one batched forward on the hot path.
    spec = build_workload("resnet", size="tiny", seed=0)
    session = InferenceSession(spec, seed=0, train_iterations=2,
                               num_devices=2)
    batch = session.gather(list(range(MAX_BATCH)))
    benchmark(lambda: session.forward(batch))


def main(argv: list[str] | None = None) -> int:
    """Script entry point (CI runs ``--smoke``)."""
    import argparse

    import _report

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep for CI")
    args = parser.parse_args(argv)
    if args.smoke:
        rows = _sweep((0.0, 0.5), requests=120, rps=120.0,
                      train_iterations=4)
        _report_and_check(rows, 120, 120.0)
    else:
        rows = _sweep(FAULT_RATES, REQUESTS, RPS, TRAIN_ITERATIONS)
        _report_and_check(rows, REQUESTS, RPS)
    for line in _report.LINES:
        print(line)
    _report.LINES.clear()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
