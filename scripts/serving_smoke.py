"""CI smoke test for fault-injected inference serving.

Launches ``repro serve-infer`` on an ephemeral port with a nonzero
fault rate as a subprocess, drives a short ``repro loadgen`` burst
against it, validates the Prometheus exposition (SDC and shed counters
must be present, and with full shadowing + this fault rate the SDC
counter must be nonzero), and then re-serves with an impossible SLO
rule to assert ``/healthz`` degrades to 503 under an induced breach.

Run from the repository root::

    PYTHONPATH=src python scripts/serving_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.observe.export import validate_exposition  # noqa: E402

POLL_TIMEOUT_S = 120.0


def _fetch(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:  # 503 from /healthz is an answer
        return exc.code, exc.read().decode("utf-8")


def _wait_for_url(process) -> str:
    """Read the server's stdout until it announces its endpoint."""
    deadline = time.monotonic() + POLL_TIMEOUT_S
    for line in process.stdout:
        print(f"[serve] {line.rstrip()}")
        if line.startswith("serving: "):
            return line.split()[3]
        if time.monotonic() > deadline:
            break
    raise RuntimeError("serve-infer never announced its endpoint")


def _serve(tmp: Path, *extra: str, duration: float):
    store = tmp / f"serving-{len(extra)}.json"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve-infer", "resnet",
         "--train-iterations", "4", "--port", "0",
         "--fault-rate", "0.3", "--shadow-rate", "1.0",
         "--max-batch", "8", "--max-wait-ms", "2",
         "--interval", "0.1", "--duration", str(duration),
         "--store", str(store), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return process, store


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="serving-smoke-"))

    # ------------------------------------------------------------------
    # Pass 1: loadgen burst + Prometheus validation on a faulty server.
    # ------------------------------------------------------------------
    process, store = _serve(tmp, duration=10.0)
    try:
        url = _wait_for_url(process)
        print(f"smoke: serving endpoint {url}")

        loadgen = subprocess.run(
            [sys.executable, "-m", "repro", "loadgen", url,
             "--rps", "100", "--duration", "3", "--json"],
            capture_output=True, text=True, timeout=POLL_TIMEOUT_S)
        assert loadgen.returncode == 0, \
            f"loadgen exited {loadgen.returncode}: {loadgen.stdout}" \
            f"{loadgen.stderr}"
        report = json.loads(loadgen.stdout)
        assert report["completed"] > 0, "loadgen completed no requests"
        assert report["errors"] == 0, f"loadgen errors: {report}"
        assert report["latency_ms"]["p99"] > 0

        status, metrics = _fetch(f"{url}/metrics")
        assert status == 200, f"/metrics returned {status}"
        parsed = validate_exposition(metrics)
        values = {name: value for name, labels, value in parsed
                  if not labels}
        for required in ("repro_serving_requests_total",
                         "repro_serving_shed_total",
                         "repro_serving_sdc_total",
                         "repro_serving_nonfinite_total",
                         "repro_serving_masked_total",
                         "repro_serving_queue_depth",
                         "repro_serving_sdc_per_million"):
            assert required in values, f"{required} missing from /metrics"
        classified = (values["repro_serving_sdc_total"]
                      + values["repro_serving_nonfinite_total"]
                      + values["repro_serving_masked_total"])
        assert classified > 0, \
            "fault rate 0.3 with full shadowing classified no requests"

        status, health = _fetch(f"{url}/healthz")
        assert status in (200, 503), f"/healthz returned {status}"
        json.loads(health)

        # Let --duration elapse so the summary store + series land; at
        # this fault rate the default sdc-per-million SLO is expected
        # to breach, which is a legitimate exit 1.
        returncode = process.wait(timeout=POLL_TIMEOUT_S)
        assert returncode in (0, 1), f"serve-infer exited {returncode}"
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    for line in process.stdout:
        print(f"[serve] {line.rstrip()}")
    assert store.exists(), f"no summary store at {store}"
    summary = json.loads(store.read_text())
    assert summary["responses"] > 0
    candidates = list(tmp.glob("*.series.jsonl"))
    assert candidates, f"no telemetry series next to {store}"
    series = candidates[0]
    with series.open(encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle]
    assert lines and lines[0]["record"] == "header"
    keys = set()
    for line in lines[1:]:
        keys.update(line.get("gauges", {}))
        keys.update(line.get("histograms", {}))
    assert "serving.shed_rate" in keys, "no shed-rate series persisted"
    assert "serving.latency_seconds" in keys, "no latency series persisted"
    print(f"smoke: loadgen {report['completed']} ok / "
          f"{report['shed']} shed; {int(classified)} requests classified; "
          f"series at {series.name}")

    # ------------------------------------------------------------------
    # Pass 2: induced SLO breach must degrade /healthz to 503 and turn
    # into a nonzero exit.
    # ------------------------------------------------------------------
    rules = tmp / "impossible.slo.json"
    rules.write_text(json.dumps([
        {"name": "no-requests", "metric": "counter.serving.requests",
         "max": 0, "severity": "critical"}]))
    process, _ = _serve(tmp, "--slo", str(rules), duration=8.0)
    try:
        url = _wait_for_url(process)
        single = subprocess.run(
            [sys.executable, "-m", "repro", "loadgen", url,
             "--rps", "20", "--duration", "1"],
            capture_output=True, text=True, timeout=POLL_TIMEOUT_S)
        assert single.returncode == 0, single.stdout + single.stderr
        time.sleep(0.5)  # two sampler intervals: let the breach register
        status, health = _fetch(f"{url}/healthz")
        assert status == 503, \
            f"/healthz should degrade under the induced breach, got {status}"
        payload = json.loads(health)
        assert payload["status"] == "degraded"
        assert "slo:no-requests" in payload["reasons"], payload
        returncode = process.wait(timeout=POLL_TIMEOUT_S)
        assert returncode == 1, \
            f"serve-infer should exit 1 on a critical breach, " \
            f"got {returncode}"
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    for line in process.stdout:
        print(f"[serve] {line.rstrip()}")
    print("smoke: induced SLO breach degraded /healthz and gated the exit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
