"""CI smoke test for the live telemetry service.

Launches a real parallel campaign with ``--serve 0`` as a subprocess,
scrapes every endpoint while the campaign is still running, validates
the Prometheus exposition, and — once the campaign finishes — exercises
the bench-history pipeline (``repro bench record`` twice + an
informational ``repro bench compare``) against a synthetic artifact.

Run from the repository root::

    PYTHONPATH=src python scripts/telemetry_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.observe.export import validate_exposition  # noqa: E402

POLL_TIMEOUT_S = 120.0


def _fetch(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:  # 503 from /healthz is an answer
        return exc.code, exc.read().decode("utf-8")


def _wait_for_url(process) -> str:
    """Read the campaign's stdout until it announces the endpoint."""
    deadline = time.monotonic() + POLL_TIMEOUT_S
    for line in process.stdout:
        print(f"[campaign] {line.rstrip()}")
        if line.startswith("telemetry: serving on "):
            return line.split("telemetry: serving on ", 1)[1].strip()
        if time.monotonic() > deadline:
            break
    raise RuntimeError("campaign never announced its telemetry endpoint")


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="telemetry-smoke-"))
    store = tmp / "campaign.jsonl"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "resnet",
         "--experiments", "8", "--parallel", "2",
         "--store", str(store), "--serve", "0", "--serve-interval", "0.2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        url = _wait_for_url(process)
        print(f"smoke: endpoint {url}")

        scrapes = 0
        deadline = time.monotonic() + POLL_TIMEOUT_S
        while process.poll() is None and time.monotonic() < deadline:
            status, metrics = _fetch(f"{url}/metrics")
            assert status == 200, f"/metrics returned {status}"
            samples = validate_exposition(metrics)
            names = {name for name, _, _ in samples}
            assert "repro_up" in names, f"no repro_up in scrape: {names}"

            status, health = _fetch(f"{url}/healthz")
            assert status in (200, 503), f"/healthz returned {status}"
            json.loads(health)

            status, progress = _fetch(f"{url}/progress")
            assert status == 200, f"/progress returned {status}"
            assert json.loads(progress)["schema"] == 1

            status, alerts = _fetch(f"{url}/alerts")
            assert status == 200, f"/alerts returned {status}"
            json.loads(alerts)

            scrapes += 1
            time.sleep(0.3)
        returncode = process.wait(timeout=POLL_TIMEOUT_S)
        for line in process.stdout:
            print(f"[campaign] {line.rstrip()}")
        assert returncode == 0, f"campaign exited {returncode}"
        assert scrapes >= 3, f"only {scrapes} mid-run scrapes landed"
        series = store.with_name(store.stem + ".series.jsonl")
        assert series.exists(), f"no telemetry series at {series}"
        print(f"smoke: {scrapes} mid-run scrapes, all endpoints valid, "
              f"series persisted")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    # Bench-history pipeline: record the same artifact twice with a
    # perturbed metric, then compare informationally.
    artifact = tmp / "BENCH_smoke.json"
    history = tmp / "BENCH_HISTORY.jsonl"
    artifact.write_text(json.dumps(
        {"iterations_per_s": 100.0, "overhead_fraction": 0.01}) + "\n")
    subprocess.run([sys.executable, "-m", "repro", "bench", "record",
                    str(artifact), "--history", str(history)], check=True)
    artifact.write_text(json.dumps(
        {"iterations_per_s": 90.0, "overhead_fraction": 0.02}) + "\n")
    subprocess.run([sys.executable, "-m", "repro", "bench", "record",
                    str(artifact), "--history", str(history)], check=True)
    compare = subprocess.run(
        [sys.executable, "-m", "repro", "bench", "compare",
         "--history", str(history), "--informational"],
        capture_output=True, text=True)
    print(compare.stdout, end="")
    assert compare.returncode == 0, \
        f"informational compare exited {compare.returncode}"
    assert "regression" in compare.stdout, \
        "induced 10% slowdown was not reported as a regression"
    gating = subprocess.run(
        [sys.executable, "-m", "repro", "bench", "compare",
         "--history", str(history)], capture_output=True, text=True)
    assert gating.returncode == 1, \
        f"gating compare should exit 1 on regression, got {gating.returncode}"
    print("smoke: bench record/compare detected the induced regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
