#!/usr/bin/env python
"""Regenerate the pinned replay corpus at ``tests/data/replay_corpus.json``.

The corpus is the CI replay gate's input: a set of fault-injection
experiments pinned to their blessed outcome, final-arena digest, and
event-stream digest (see :mod:`repro.replay.corpus`).  This script
rebuilds it from scratch so the selection is reproducible:

1. run a fixed, seeded campaign sweep on the inprocess backend;
2. select experiments covering every (site kind, outcome) pair the
   sweep observed, padded with extra masked entries per kind so the
   corpus splits evenly across the three backends;
3. assign backends round-robin (every backend appears) and bless each
   entry on its assigned backend.

Run it only when the corpus must legitimately change (new site kinds,
new outcome classes, an intentional numerics change) — routine re-pins
go through ``repro replay --corpus ... --bless`` instead, so the diff
is reviewed like any other golden-file change.

Usage::

    PYTHONPATH=src python scripts/make_replay_corpus.py [OUT.json]
"""
from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.core.faults.campaign import Campaign
from repro.core.faults.serialization import fault_to_dict
from repro.engine.store import experiment_key
from repro.replay import CORPUS_SCHEMA_VERSION, run_corpus, save_corpus
from repro.workloads import build_workload

#: The sweep every corpus entry is drawn from.  Changing anything here
#: changes every experiment key, so bump deliberately.
WORKLOAD, SIZE, WORKLOAD_SEED = "resnet", "tiny", 0
NUM_DEVICES = 2
WARMUP, HORIZON, TEST_EVERY = 3, 9, 2
SITE_KINDS = ("forward", "weight_grad", "input_grad", "comm")
SWEEP_SIZE, SWEEP_SEED = 320, 20260808

BACKENDS = ("inprocess", "multiprocess", "batched")
MIN_ENTRIES = 12


def select_indices(rows: list[tuple[int, str, str]]) -> list[int]:
    """Pick sweep indices covering every observed (kind, outcome) pair,
    padded per kind to at least ``MIN_ENTRIES`` and a multiple of
    ``len(BACKENDS)`` so the round-robin backend split is even."""
    chosen: list[int] = []
    seen_pairs: set[tuple[str, str]] = set()
    for index, kind, outcome in rows:
        if (kind, outcome) not in seen_pairs:
            seen_pairs.add((kind, outcome))
            chosen.append(index)
    padding = (r for r in rows if r[0] not in set(chosen))
    while len(chosen) < MIN_ENTRIES or len(chosen) % len(BACKENDS):
        chosen.append(next(padding)[0])
    return sorted(chosen)


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent.parent / "tests" / "data" / \
        "replay_corpus.json"

    spec = build_workload(WORKLOAD, size=SIZE, seed=WORKLOAD_SEED)
    campaign = Campaign(spec, num_devices=NUM_DEVICES,
                        warmup_iterations=WARMUP, horizon=HORIZON,
                        test_every=TEST_EVERY, site_kinds=SITE_KINDS)
    campaign.prepare()
    faults = campaign.sample_faults(SWEEP_SIZE, seed=SWEEP_SEED)

    print(f"sweep: {SWEEP_SIZE} experiments "
          f"({WORKLOAD}/{SIZE}, horizon {HORIZON})")
    t0 = time.time()
    rows = []
    for index, fault in enumerate(faults):
        result = campaign.run_experiment(fault)
        rows.append((index, fault.site.kind, result.outcome.value))
    print(f"sweep done in {time.time() - t0:.1f}s; outcomes: "
          f"{sorted({o for _, _, o in rows})}")

    indices = select_indices(rows)
    entries = []
    for slot, index in enumerate(indices):
        fault_dict = fault_to_dict(faults[index])
        entries.append({
            "key": experiment_key(index, fault_dict),
            "index": index,
            "backend": BACKENDS[slot % len(BACKENDS)],
            "fault": fault_dict,
            "config": campaign.config_dict(),
        })
    corpus = {"kind": "replay_corpus", "schema": CORPUS_SCHEMA_VERSION,
              "entries": entries}

    print(f"blessing {len(entries)} entries across {BACKENDS} ...")
    t0 = time.time()
    run_corpus(corpus, bless=True,
               on_progress=lambda i, n, r: print(
                   f"  [{i}/{n}] {r.backend:<12} {r.outcome_replayed}"))
    print(f"blessed in {time.time() - t0:.1f}s")

    save_corpus(corpus, out)
    kinds = sorted({e["fault"]["site"]["kind"] for e in entries})
    outcomes = sorted({e["outcome"] for e in entries})
    backends = sorted({e["backend"] for e in entries})
    print(f"wrote {out} ({len(entries)} entries; kinds {kinds}; "
          f"outcomes {outcomes}; backends {backends})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
