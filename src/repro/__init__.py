"""repro: reproduction of "Understanding and Mitigating Hardware Failures
in Deep Learning Training Accelerator Systems" (ISCA 2023).

Package layout
--------------
``repro.core``
    The paper's contribution: the fault-injection framework
    (:mod:`repro.core.faults`), outcome/propagation analysis
    (:mod:`repro.core.analysis`), and the detection + recovery techniques
    with baselines (:mod:`repro.core.mitigation`).
``repro.accelerator``
    NVDLA-like accelerator model: dataflow geometry, FF inventory, and a
    cycle-accurate micro-RTL MAC-array simulator.
``repro.nn`` / ``repro.optim`` / ``repro.data`` / ``repro.distributed``
    The training substrate: a from-scratch NumPy DL framework with
    explicit backward passes, optimizers exposing their history terms,
    replayable data loaders, and a simulated synchronous data-parallel
    trainer.
``repro.workloads``
    The Table 2 workload zoo (four ResNet configurations, DenseNet,
    EfficientNet, NFNet, YOLO, multigrid memory, Transformer).
``repro.observe``
    The unified observability layer: a typed event :class:`~repro.observe.Tracer`
    with JSONL export, low-overhead counters/histograms, and
    ``profile_scope`` wall-clock profiling of the hot paths.

Quickstart
----------
>>> from repro.workloads import build_workload
>>> from repro.core.faults import Campaign
>>> spec = build_workload("resnet", size="tiny")
>>> campaign = Campaign(spec, num_devices=4, seed=0)
>>> result = campaign.run(num_experiments=2)
>>> result.num_experiments
2
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
