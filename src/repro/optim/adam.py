"""Adam-family optimizers with exposed gradient-history terms.

Adam (Eq. 1 of the paper) maintains two history terms per parameter:

* ``m_t = beta1 * m_{t-1} + (1 - beta1) * g_t``
* ``v_t = beta2 * v_{t-1} + (1 - beta2) * g_t^2``

and normalizes the update by ``sqrt(v_t)``.  These history values are the
necessary condition for the SlowDegrade and SharpSlowDegrade outcomes
(Table 4): a single large faulty gradient inflates ``m`` and especially
``v``, which then (1) biases updates in the faulty direction (Phase 1 of
Fig. 5), (2) suppresses learning while ``v`` remains huge (Phase 2), and
(3) decays at rate ``beta2`` toward an eventual recovery (Phase 3).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer, max_abs


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), matching Eq. 1 of the paper."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.m: list[np.ndarray] = [np.zeros_like(p.data) for p in self.params]
        self.v: list[np.ndarray] = [np.zeros_like(p.data) for p in self.params]

    def normalizes_gradients(self) -> bool:
        return True

    def history_magnitude(self) -> float:
        return max_abs(self.m + self.v)

    def first_moment_arrays(self) -> list[np.ndarray]:
        return self.m

    def second_moment_arrays(self) -> list[np.ndarray]:
        return self.v

    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"m": self.m, "v": self.v}

    def _update_for(self, i: int, param: Parameter, t: int) -> np.ndarray:
        """The bias-corrected Adam update ``u_t`` for parameter ``i``."""
        m_hat = self.m[i] / (1.0 - self.beta1**t)
        v_hat = self.v[i] / (1.0 - self.beta2**t)
        return (self.lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(np.float32)

    def step(self) -> None:
        self.iteration += 1
        t = self.iteration
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            for i, param in enumerate(self.params):
                g = param.grad
                self.m[i] = (self.beta1 * self.m[i] + (1.0 - self.beta1) * g).astype(np.float32)
                self.v[i] = (self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g).astype(
                    np.float32
                )
                self._apply_update(param, self._update_for(i, param, t), i)


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8, weight_decay: float = 0.01):
        super().__init__(params, lr, beta1, beta2, eps)
        self.weight_decay = float(weight_decay)

    def _update_for(self, i: int, param: Parameter, t: int) -> np.ndarray:
        update = super()._update_for(i, param, t)
        return (update + self.lr * self.weight_decay * param.data).astype(np.float32)


class RMSProp(Optimizer):
    """RMSProp: normalizes by a running mean of squared gradients.

    A second normalizing optimizer, used by ablation benches to confirm
    that the SlowDegrade mechanism follows from gradient normalization in
    general, not from Adam specifically (the paper: 134 of 154 optimizers
    developed 2015-2021 normalize gradients via history values).
    """

    def __init__(self, params: list[Parameter], lr: float = 1e-3, rho: float = 0.9,
                 eps: float = 1e-8):
        super().__init__(params, lr)
        self.rho = float(rho)
        self.eps = float(eps)
        self.sq: list[np.ndarray] = [np.zeros_like(p.data) for p in self.params]

    def normalizes_gradients(self) -> bool:
        return True

    def history_magnitude(self) -> float:
        return max_abs(self.sq)

    def second_moment_arrays(self) -> list[np.ndarray]:
        return self.sq

    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"sq": self.sq}

    def step(self) -> None:
        self.iteration += 1
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            for i, param in enumerate(self.params):
                g = param.grad
                self.sq[i] = (self.rho * self.sq[i] + (1.0 - self.rho) * g * g).astype(
                    np.float32
                )
                update = (self.lr * g / (np.sqrt(self.sq[i]) + self.eps)).astype(np.float32)
                self._apply_update(param, update, i)
