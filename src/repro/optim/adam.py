"""Adam-family optimizers with exposed gradient-history terms.

Adam (Eq. 1 of the paper) maintains two history terms per parameter:

* ``m_t = beta1 * m_{t-1} + (1 - beta1) * g_t``
* ``v_t = beta2 * v_{t-1} + (1 - beta2) * g_t^2``

and normalizes the update by ``sqrt(v_t)``.  These history values are the
necessary condition for the SlowDegrade and SharpSlowDegrade outcomes
(Table 4): a single large faulty gradient inflates ``m`` and especially
``v``, which then (1) biases updates in the faulty direction (Phase 1 of
Fig. 5), (2) suppresses learning while ``v`` remains huge (Phase 2), and
(3) decays at rate ``beta2`` toward an eventual recovery (Phase 3).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer, max_abs


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), matching Eq. 1 of the paper."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.m: list[np.ndarray] = [np.zeros_like(p.data) for p in self.params]
        self.v: list[np.ndarray] = [np.zeros_like(p.data) for p in self.params]

    def normalizes_gradients(self) -> bool:
        return True

    def history_magnitude(self) -> float:
        if self._arena is not None:
            return self._fused_max_abs(self._fused_slots["m"], self._fused_slots["v"])
        return max_abs(self.m + self.v)

    def first_moment_arrays(self) -> list[np.ndarray]:
        return self.m

    def second_moment_arrays(self) -> list[np.ndarray]:
        return self.v

    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"m": self.m, "v": self.v}

    def _update_for(self, i: int, param: Parameter, t: int) -> np.ndarray:
        """The bias-corrected Adam update ``u_t`` for parameter ``i``."""
        m_hat = self.m[i] / (1.0 - self.beta1**t)
        v_hat = self.v[i] / (1.0 - self.beta2**t)
        return (self.lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(np.float32)

    def _fused_update_into(self, out: np.ndarray, t: int) -> None:
        """Write the fused bias-corrected update ``u_t`` into ``out``.

        Evaluates the exact expression tree of :meth:`_update_for`
        (``lr * m_hat / (sqrt(v_hat) + eps)``) over the fused buffers, so
        each element is bit-identical to the per-parameter path."""
        m = self._fused_slots["m"]
        v = self._fused_slots["v"]
        s = self._scratch
        np.divide(v, 1.0 - self.beta2**t, out=s)
        np.sqrt(s, out=s)
        np.add(s, self.eps, out=s)
        np.divide(m, 1.0 - self.beta1**t, out=out)
        np.multiply(out, self.lr, out=out)
        np.divide(out, s, out=out)

    def _fused_step(self, t: int) -> None:
        g = self._arena.grad
        m = self._fused_slots["m"]
        v = self._fused_slots["v"]
        s = self._scratch
        u = self._update_buf
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            # m_t = beta1 * m + (1 - beta1) * g
            np.multiply(m, self.beta1, out=m)
            np.multiply(g, 1.0 - self.beta1, out=s)
            np.add(m, s, out=m)
            # v_t = beta2 * v + ((1 - beta2) * g) * g
            np.multiply(v, self.beta2, out=v)
            np.multiply(g, 1.0 - self.beta2, out=s)
            np.multiply(s, g, out=s)
            np.add(v, s, out=v)
            self._fused_update_into(u, t)
        self._apply_fused_update(u)

    def step(self) -> None:
        self.iteration += 1
        t = self.iteration
        if self._arena is not None:
            self._fused_step(t)
            return
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            for i, param in enumerate(self.params):
                g = param.grad
                self.m[i] = (self.beta1 * self.m[i] + (1.0 - self.beta1) * g).astype(np.float32)
                self.v[i] = (self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g).astype(
                    np.float32
                )
                self._apply_update(param, self._update_for(i, param, t), i)


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8, weight_decay: float = 0.01):
        super().__init__(params, lr, beta1, beta2, eps)
        self.weight_decay = float(weight_decay)

    def _update_for(self, i: int, param: Parameter, t: int) -> np.ndarray:
        update = super()._update_for(i, param, t)
        return (update + self.lr * self.weight_decay * param.data).astype(np.float32)

    def _fused_update_into(self, out: np.ndarray, t: int) -> None:
        super()._fused_update_into(out, t)
        s = self._scratch
        np.multiply(self._arena.param, self.lr * self.weight_decay, out=s)
        np.add(out, s, out=out)


class RMSProp(Optimizer):
    """RMSProp: normalizes by a running mean of squared gradients.

    A second normalizing optimizer, used by ablation benches to confirm
    that the SlowDegrade mechanism follows from gradient normalization in
    general, not from Adam specifically (the paper: 134 of 154 optimizers
    developed 2015-2021 normalize gradients via history values).
    """

    def __init__(self, params: list[Parameter], lr: float = 1e-3, rho: float = 0.9,
                 eps: float = 1e-8):
        super().__init__(params, lr)
        self.rho = float(rho)
        self.eps = float(eps)
        self.sq: list[np.ndarray] = [np.zeros_like(p.data) for p in self.params]

    def normalizes_gradients(self) -> bool:
        return True

    def history_magnitude(self) -> float:
        if self._arena is not None:
            return self._fused_max_abs(self._fused_slots["sq"])
        return max_abs(self.sq)

    def second_moment_arrays(self) -> list[np.ndarray]:
        return self.sq

    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"sq": self.sq}

    def _fused_step(self) -> None:
        g = self._arena.grad
        sq = self._fused_slots["sq"]
        s = self._scratch
        u = self._update_buf
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            # sq_t = rho * sq + ((1 - rho) * g) * g
            np.multiply(sq, self.rho, out=sq)
            np.multiply(g, 1.0 - self.rho, out=s)
            np.multiply(s, g, out=s)
            np.add(sq, s, out=sq)
            # u_t = lr * g / (sqrt(sq_t) + eps)
            np.sqrt(sq, out=s)
            np.add(s, self.eps, out=s)
            np.multiply(g, self.lr, out=u)
            np.divide(u, s, out=u)
        self._apply_fused_update(u)

    def step(self) -> None:
        self.iteration += 1
        if self._arena is not None:
            self._fused_step()
            return
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            for i, param in enumerate(self.params):
                g = param.grad
                self.sq[i] = (self.rho * self.sq[i] + (1.0 - self.rho) * g * g).astype(
                    np.float32
                )
                update = (self.lr * g / (np.sqrt(self.sq[i]) + self.eps)).astype(np.float32)
                self._apply_update(param, update, i)
