"""Optimizer base class with first-class *history terms*.

The paper's central finding is that optimizer gradient-history values
(``m_t`` and ``v_t`` in Adam) are one of the two state classes through
which hardware faults persist across training iterations (Observation 2,
Sec. 4.2.6).  Every optimizer here therefore exposes:

* :meth:`history_magnitude` — the largest absolute history value, read by
  the detection technique each iteration (Sec. 5.1);
* :meth:`normalizes_gradients` — whether the optimizer divides by a
  gradient-history statistic.  Per Sec. 4.2.3, SlowDegrade and
  SharpSlowDegrade require a normalizing optimizer, while SharpDegrade
  requires a non-normalizing one;
* :meth:`state_dict` / :meth:`load_state_dict` — snapshots used by the
  two-iteration re-execution recovery (Sec. 5.2) and by FI campaigns.

Update hooks
------------
The weight-update operation itself is an injectable op site: the paper
notes that with SGD, large faulty weights can be created by a fault during
"the operation that adds gradients to current weight values" (Sec. 4.2.2).
``set_update_hook`` installs a one-shot hook ``hook(update, info) ->
update`` applied to the per-parameter update tensor.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Parameter

UpdateHook = Callable[[np.ndarray, dict], np.ndarray]


class Optimizer:
    """Base optimizer over an explicit parameter list.

    Optimizers run in one of two equivalent modes:

    * **scattered** (default) — per-parameter arrays, per-parameter update
      loop; and
    * **fused** — after :meth:`bind_arena`, every slot lives in a
      contiguous segment of a :class:`repro.state.StateArena` and
      ``step()`` runs a handful of whole-buffer vectorized ops.

    The fused path computes the exact same elementwise expressions over
    the exact same float32 values, so the two modes are bit-identical;
    per-parameter slot lists (``self.m`` etc.) remain valid as views into
    the fused segments, keeping ``state_dict`` /
    ``first_moment_arrays`` / fault-injection contracts unchanged.
    """

    def __init__(self, params: list[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = float(lr)
        self.iteration = 0
        self._update_hook: UpdateHook | None = None
        self._arena = None
        self._fused_slots: dict[str, np.ndarray] = {}
        self._update_buf: np.ndarray | None = None
        self._scratch: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Apply one update using the gradients stored on the parameters."""
        raise NotImplementedError

    def normalizes_gradients(self) -> bool:
        """True if updates divide by a gradient-history statistic."""
        raise NotImplementedError

    def history_magnitude(self) -> float:
        """Largest absolute gradient-history value across all slots.

        Optimizers without history (plain SGD) return 0.0: the
        gradient-history necessary condition is structurally impossible.
        """
        return 0.0

    def first_moment_arrays(self) -> list[np.ndarray]:
        """History values that are linear in gradients (Adam ``m``, SGD
        velocity) — checked against Algorithm 1's first-moment bound."""
        return []

    def second_moment_arrays(self) -> list[np.ndarray]:
        """History values quadratic in gradients (Adam ``v``, RMSProp
        ``sq``) — checked against the *squared* bound."""
        return []

    # ------------------------------------------------------------------
    # Arena binding (fused mode)
    # ------------------------------------------------------------------
    def bind_arena(self, arena) -> None:
        """Move all optimizer slots into fused segments of ``arena``.

        The arena must be built over exactly this optimizer's parameters
        (same objects, same order).  Existing slot values are copied into
        the segments and the per-parameter slot lists are rebound in place
        as views, so every external reference stays valid.
        """
        if [id(p) for p in self.params] != [id(p) for p in arena.parameters]:
            raise ValueError(
                "arena layout does not match this optimizer's parameter list"
            )
        self._arena = arena
        self._update_buf = arena.scratch()
        self._scratch = arena.scratch()
        self._fused_slots = {}
        for name, slots in self._slot_arrays().items():
            segment = arena.allocate_segment(f"opt.{name}")
            views = arena.views(f"opt.{name}")
            for view, old in zip(views, slots):
                view[...] = old
            slots[:] = views
            self._fused_slots[name] = segment

    def refresh_arena_views(self) -> None:
        """Re-derive slot views after the bound arena's segments moved.

        :meth:`repro.state.StateArena.rebind_segment` repoints a segment
        at caller-provided storage (the batched backend adopts arenas
        into ``(E, ...)`` row stacks this way), which orphans the views
        and fused-segment references captured by :meth:`bind_arena`.
        Calling this re-reads the arena's current segments so the
        optimizer keeps updating the live storage.
        """
        if self._arena is None:
            return
        for name, slots in self._slot_arrays().items():
            slots[:] = self._arena.views(f"opt.{name}")
            self._fused_slots[name] = self._arena.segments[f"opt.{name}"]

    @property
    def arena(self):
        """The bound :class:`~repro.state.StateArena`, or ``None``."""
        return self._arena

    def fused_slot(self, name: str) -> np.ndarray:
        """The fused buffer behind one slot (fused mode only)."""
        return self._fused_slots[name]

    def _fused_max_abs(self, *segments: np.ndarray) -> float:
        """``max |.|`` across fused segments; inf/NaN map to inf (the
        same semantics as :func:`max_abs` over scattered slot lists)."""
        worst = 0.0
        for buf in segments:
            with np.errstate(invalid="ignore"):
                m = np.abs(buf).max()
            if not np.isfinite(m):
                return float("inf")
            worst = max(worst, float(m))
        return worst

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def set_update_hook(self, hook: UpdateHook | None) -> None:
        self._update_hook = hook

    def _apply_update(self, param: Parameter, update: np.ndarray, index: int) -> None:
        """Subtract ``update`` from ``param.data``, via the hook if set.

        Writes in place so arena-bound parameters keep their views."""
        if self._update_hook is not None:
            update = self._update_hook(
                update, {"param": param, "index": index, "iteration": self.iteration}
            )
        with np.errstate(over="ignore", invalid="ignore"):
            np.subtract(param.data, update, out=param.data, casting="unsafe")

    def _apply_fused_update(self, update: np.ndarray) -> None:
        """Fused-mode weight update: one vectorized subtraction when no
        hook is installed, the per-parameter hook protocol otherwise."""
        if self._update_hook is None:
            with np.errstate(over="ignore", invalid="ignore"):
                np.subtract(self._arena.param, update, out=self._arena.param)
            return
        index = self.index_views(update)
        for i, (param, view) in enumerate(zip(self.params, index)):
            self._apply_update(param, view, i)

    def index_views(self, buf: np.ndarray) -> list[np.ndarray]:
        """Per-parameter views of a buffer with the arena's layout."""
        return [
            buf[e.offset : e.offset + e.size].reshape(e.shape)
            for e in self._arena.index.values()
        ]

    # ------------------------------------------------------------------
    # State snapshot / restore
    # ------------------------------------------------------------------
    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        """Name -> per-parameter state arrays.  Subclasses override."""
        return {}

    def state_dict(self) -> dict:
        out: dict = {"iteration": self.iteration, "lr": self.lr}
        for name, slots in self._slot_arrays().items():
            out[name] = [np.array(s, copy=True) for s in slots]
        return out

    def load_state_dict(self, state: dict) -> None:
        self.iteration = int(state["iteration"])
        self.lr = float(state["lr"])
        slots = self._slot_arrays()
        for name, arrays in state.items():
            if name in ("iteration", "lr"):
                continue
            target = slots[name]
            for i, arr in enumerate(arrays):
                target[i][...] = arr

    def history_values(self) -> list[np.ndarray]:
        """All history arrays, for fine-grained analysis (Table 4 ranges)."""
        out: list[np.ndarray] = []
        for slots in self._slot_arrays().values():
            out.extend(slots)
        return out


def max_abs(values: list[np.ndarray]) -> float:
    """Largest absolute entry across arrays; inf/NaN map to inf."""
    worst = 0.0
    for arr in values:
        if arr.size == 0:
            continue
        with np.errstate(invalid="ignore"):
            m = np.abs(arr).max()
        if not np.isfinite(m):
            return float("inf")
        worst = max(worst, float(m))
    return worst
