"""Stochastic gradient descent, with optional momentum.

Plain SGD does not normalize gradients — per Sec. 4.2.3 this is what makes
the SharpDegrade outcome (and the Resnet_SGD short-term INFs/NaNs case)
reachable: a large faulty gradient is applied to the weights at full
magnitude instead of being squashed by an adaptive denominator.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer, max_abs


class SGD(Optimizer):
    """SGD with optional classical momentum.

    With ``momentum > 0`` the velocity buffer is a gradient-history term
    (it carries fault effects across iterations), but it does not
    *normalize* gradients, so the optimizer still reports
    ``normalizes_gradients() == False``.
    """

    def __init__(self, params: list[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.velocity: list[np.ndarray] = [np.zeros_like(p.data) for p in self.params]

    def normalizes_gradients(self) -> bool:
        return False

    def history_magnitude(self) -> float:
        if self.momentum == 0.0:
            return 0.0
        if self._arena is not None:
            return self._fused_max_abs(self._fused_slots["velocity"])
        return max_abs(self.velocity)

    def first_moment_arrays(self) -> list[np.ndarray]:
        return self.velocity if self.momentum > 0.0 else []

    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"velocity": self.velocity}

    def _fused_step(self) -> None:
        g = self._arena.grad
        u = self._update_buf
        with np.errstate(over="ignore", invalid="ignore"):
            if self.momentum > 0.0:
                # vel_t = momentum * vel + g;  u_t = lr * vel_t
                vel = self._fused_slots["velocity"]
                np.multiply(vel, self.momentum, out=vel)
                np.add(vel, g, out=vel)
                np.multiply(vel, self.lr, out=u)
            else:
                np.multiply(g, self.lr, out=u)
        self._apply_fused_update(u)

    def step(self) -> None:
        self.iteration += 1
        if self._arena is not None:
            self._fused_step()
            return
        with np.errstate(over="ignore", invalid="ignore"):
            for i, param in enumerate(self.params):
                if self.momentum > 0.0:
                    self.velocity[i] = (
                        self.momentum * self.velocity[i] + param.grad
                    ).astype(np.float32)
                    update = self.lr * self.velocity[i]
                else:
                    update = self.lr * param.grad
                self._apply_update(param, update.astype(np.float32), i)
