"""Learning-rate schedules."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer


class Schedule:
    """Base schedule: maps an iteration index to a learning rate."""

    def __init__(self, base_lr: float):
        self.base_lr = float(base_lr)

    def lr_at(self, iteration: int) -> float:
        raise NotImplementedError

    def apply(self, optimizer: Optimizer, iteration: int) -> float:
        lr = self.lr_at(iteration)
        optimizer.lr = lr
        return lr


class ConstantSchedule(Schedule):
    def lr_at(self, iteration: int) -> float:
        return self.base_lr


class CosineSchedule(Schedule):
    """Cosine decay from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, base_lr: float, total_steps: int, min_lr: float = 0.0):
        super().__init__(base_lr)
        self.total_steps = max(int(total_steps), 1)
        self.min_lr = float(min_lr)

    def lr_at(self, iteration: int) -> float:
        frac = min(iteration / self.total_steps, 1.0)
        cos = 0.5 * (1.0 + np.cos(np.pi * frac))
        return self.min_lr + (self.base_lr - self.min_lr) * cos


class WarmupSchedule(Schedule):
    """Linear warmup then inverse-sqrt decay (Transformer training)."""

    def __init__(self, base_lr: float, warmup_steps: int = 100):
        super().__init__(base_lr)
        self.warmup_steps = max(int(warmup_steps), 1)

    def lr_at(self, iteration: int) -> float:
        step = max(iteration, 1)
        warm = step / self.warmup_steps
        decay = np.sqrt(self.warmup_steps / step)
        return self.base_lr * min(warm, decay)
