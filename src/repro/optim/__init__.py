"""Optimizers with first-class gradient-history terms."""

from repro.optim.adam import Adam, AdamW, RMSProp
from repro.optim.base import Optimizer, max_abs
from repro.optim.schedules import ConstantSchedule, CosineSchedule, Schedule, WarmupSchedule
from repro.optim.sgd import SGD

__all__ = [
    "SGD",
    "Adam",
    "AdamW",
    "ConstantSchedule",
    "CosineSchedule",
    "Optimizer",
    "RMSProp",
    "Schedule",
    "WarmupSchedule",
    "max_abs",
]
