"""Re-running a :class:`~repro.replay.record.ReplayRecord` bit-for-bit.

A replay rebuilds the campaign from its recorded config (same workload,
seeds, warm-up snapshot, reference run, classifier), re-runs the one
recorded fault, and verifies the replayed outcome / final-state digest /
event stream against what the trace stored.  Outcomes and state bytes
are backend-invariant (pinned by the golden traces), so a replay may run
on a different backend than the recording — the default is the recorded
one.

Campaign preparation (warm-up + reference training) dominates replay
cost, so :class:`CampaignCache` shares one prepared campaign across all
records with the same (config, backend) — the common case for a corpus
sampled from a single campaign.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.faults.campaign import Campaign
from repro.core.faults.serialization import fault_from_dict
from repro.engine.store import experiment_key
from repro.observe.tracer import Tracer
from repro.replay.record import (
    ReplayError,
    ReplayRecord,
    events_digest,
    normalize_events,
)


@dataclass
class ReplayReport:
    """Outcome of replaying one record."""

    key: str
    backend: str
    outcome_recorded: str | None
    outcome_replayed: str
    arena_recorded: str | None
    arena_replayed: str | None
    #: ``None`` when event verification was skipped (not requested, or
    #: the record stored no attributable events).
    events_match: bool | None = None
    events_recorded_sha256: str | None = None
    events_replayed_sha256: str | None = None
    #: Human-readable mismatch descriptions, empty on a clean replay.
    mismatches: list[str] = field(default_factory=list)

    @property
    def outcome_match(self) -> bool:
        return self.outcome_recorded == self.outcome_replayed

    @property
    def arena_match(self) -> bool | None:
        if self.arena_recorded is None or self.arena_replayed is None:
            return None
        return self.arena_recorded == self.arena_replayed

    @property
    def ok(self) -> bool:
        return not self.mismatches


class CampaignCache:
    """Prepared campaigns keyed by (config, backend), shared per replay
    session so the warm-up baseline is trained once per distinct config."""

    def __init__(self):
        self._cache: dict[tuple[str, str], Campaign] = {}

    def get(self, config: dict, backend: str) -> Campaign:
        cache_key = (json.dumps(config, sort_keys=True), backend)
        campaign = self._cache.get(cache_key)
        if campaign is None:
            # Replays run one experiment at a time; batch==solo equality
            # is pinned by tests, so experiment_batch is always 1 here.
            campaign = Campaign.from_config(config, backend=backend,
                                            experiment_batch=1)
            self._cache[cache_key] = campaign
        return campaign


def verify_key(record: ReplayRecord) -> None:
    """Check the record's key against its content (index x fault).

    Keys are content hashes; a mismatch means the trace was edited or
    mis-merged, and replaying it would silently verify the wrong
    experiment.
    """
    expected = experiment_key(record.index, record.fault)
    if expected != record.key:
        raise ReplayError(
            f"experiment key {record.key!r} does not match its recorded "
            f"payload (content key {expected!r}); the trace record was "
            "altered or corrupted")


def replay(record: ReplayRecord, *, backend: str | None = None,
           verify_trace: bool = False,
           cache: CampaignCache | None = None) -> ReplayReport:
    """Re-run one record and verify it against its stored results."""
    verify_key(record)
    resolved_backend = backend or record.backend
    cache = cache or CampaignCache()
    campaign = cache.get(record.config, resolved_backend)
    fault = fault_from_dict(record.fault)

    tracer = Tracer() if verify_trace else None
    result = campaign.run_experiment(fault, tracer=tracer)

    report = ReplayReport(
        key=record.key,
        backend=resolved_backend,
        outcome_recorded=record.outcome,
        outcome_replayed=result.outcome.value,
        arena_recorded=record.arena_sha256,
        arena_replayed=result.arena_sha256,
    )
    if not report.outcome_match:
        report.mismatches.append(
            f"outcome flip: recorded {record.outcome!r}, replayed "
            f"{result.outcome.value!r}")
    if report.arena_match is False:
        report.mismatches.append(
            f"final training state diverged: recorded arena "
            f"{record.arena_sha256[:12]}..., replayed "
            f"{result.arena_sha256[:12]}...")

    if verify_trace:
        replayed_lines = normalize_events(tracer.events())
        report.events_replayed_sha256 = events_digest(replayed_lines)
        report.events_recorded_sha256 = record.events_sha256
        if record.events_sha256 is None:
            # Batched block runs attribute only the scheduling markers;
            # there is no stored per-experiment stream to compare.
            report.events_match = None
        elif record.events:
            report.events_match = record.events == replayed_lines
            if not report.events_match:
                report.mismatches.append(
                    _first_event_divergence(record.events, replayed_lines))
        else:
            report.events_match = (
                record.events_sha256 == report.events_replayed_sha256)
            if not report.events_match:
                report.mismatches.append(
                    f"event stream diverged: recorded digest "
                    f"{record.events_sha256[:12]}..., replayed "
                    f"{report.events_replayed_sha256[:12]}...")
    return report


def _first_event_divergence(recorded: list[str], replayed: list[str]) -> str:
    for i, (a, b) in enumerate(zip(recorded, replayed)):
        if a != b:
            return (f"event stream diverged at event {i}: recorded "
                    f"{a:.120} vs replayed {b:.120}")
    return (f"event stream diverged in length: recorded {len(recorded)} "
            f"events, replayed {len(replayed)}")
