"""Replay records: reconstructing one experiment from a campaign trace.

The flight recorder (PR 4) already captures everything an experiment
*did*; this module makes the trace a *reconstruction* record.  A merged
campaign trace carries, per experiment key:

* the ``experiment_started`` marker with the full work-unit payload
  (``{"index", "fault": <descriptor>}``) — the exact seeded fault;
* the ``experiment_finished`` marker with the classified outcome and the
  final training-state digest (``arena_sha256``);
* the campaign config in the trace header's ``store_meta`` (workload,
  size, seeds, warm-up/horizon, thresholds, backend) — everything
  :meth:`~repro.core.faults.campaign.Campaign.from_config` needs.

:func:`replay_record` extracts one experiment's :class:`ReplayRecord`
from a trace, failing with a clean :class:`ReplayError` on any record
that cannot support a faithful replay: missing/duplicated attempts,
missing markers, truncated payloads, unreadable traces.  A wrong replay
is strictly worse than no replay, so every ambiguity is an error.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.observe.events import (
    EXPERIMENT_COMPLETED,
    EXPERIMENT_FINISHED,
    EXPERIMENT_QUARANTINED,
    EXPERIMENT_STARTED,
    TraceEvent,
    TraceFormatError,
)
from repro.observe.tracer import _json_default, read_trace


class ReplayError(ValueError):
    """A trace record cannot support a faithful replay."""


#: Engine bookkeeping events: markers of *scheduling*, not of training.
#: They are stripped before event-stream comparison, since a replay runs
#: outside the engine and never re-emits them.
ENGINE_EVENT_TYPES = frozenset({
    EXPERIMENT_STARTED,
    EXPERIMENT_FINISHED,
    EXPERIMENT_COMPLETED,
    EXPERIMENT_QUARANTINED,
})

#: Shard-capture attribution stamps merged under event data by engine
#: workers.  A replay tracer has no such context, so they are stripped
#: before comparison.
CONTEXT_KEYS = ("key", "worker", "attempt")


@dataclass
class ReplayRecord:
    """Everything needed to re-run and verify one experiment."""

    key: str
    index: int
    #: Serialized :class:`~repro.core.faults.hardware.HardwareFault`.
    fault: dict
    #: :meth:`Campaign.config_dict` record from the trace/store header.
    config: dict
    #: Backend the experiment was originally executed on.
    backend: str
    #: Classified outcome value recorded at completion (Table 3 label).
    outcome: str | None = None
    #: Final training-state digest recorded at completion.
    arena_sha256: str | None = None
    #: Canonicalized training-event lines (see :func:`normalize_events`);
    #: empty for experiments whose events were not attributable (batched
    #: block runs record marker-only stories).
    events: list[str] = field(default_factory=list)
    #: Digest over :attr:`events`; ``None`` when no events were stored.
    events_sha256: str | None = None


def canonical_event(event: TraceEvent) -> str:
    """One event as a canonical JSON line, stable across emitters.

    Drops the emission counter and wall-clock stamp (both vary run to
    run), strips the shard-capture context, and serializes with sorted
    keys through one dumps/loads round trip so numpy scalars and
    non-finite floats compare by their serialized form.
    """
    data = {k: v for k, v in event.data.items() if k not in CONTEXT_KEYS}
    payload = {"type": event.type, "iteration": event.iteration,
               "data": json.loads(json.dumps(data, default=_json_default))}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def normalize_events(events: list[TraceEvent]) -> list[str]:
    """The comparable training-event story: canonical lines, in order,
    with engine scheduling markers removed."""
    return [canonical_event(e) for e in events
            if e.type not in ENGINE_EVENT_TYPES]


def events_digest(lines: list[str]) -> str:
    """sha256 over a normalized event stream."""
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def _campaign_config(meta: dict, path: Path) -> dict:
    store_meta = meta.get("store_meta")
    if not isinstance(store_meta, dict) or \
            not isinstance(store_meta.get("config"), dict):
        raise ReplayError(
            f"{path}: trace header carries no campaign config "
            "(store_meta.config); the campaign predates replay support — "
            "re-run it with tracing on to produce a replayable trace")
    return store_meta["config"]


def _experiment_events(trace, key: str, path: Path) -> list[TraceEvent]:
    """One experiment's single complete attempt, or a clean error.

    Merged campaign traces hold exactly one attempt per key; raw shard
    files (or hand-concatenated traces) may hold several.  Replaying an
    ambiguous story silently would be wrong, so >1 complete attempt is
    an error, as is a story with no completed attempt at all.
    """
    attempts: dict[object, list[TraceEvent]] = {}
    for event in trace.events:
        if event.data.get("key") != key:
            continue
        attempts.setdefault(event.data.get("attempt"), []).append(event)
    if not attempts:
        raise ReplayError(
            f"{path}: no events for experiment {key!r}; known keys can be "
            "listed with `repro trace FILE --analyze`")
    complete = [
        events for events in attempts.values()
        if any(e.type == EXPERIMENT_FINISHED and e.data.get("status") == "done"
               for e in events)
    ]
    if not complete:
        raise ReplayError(
            f"{path}: experiment {key!r} has no completed attempt "
            "(crashed or quarantined mid-run); its story cannot be replayed")
    if len(complete) > 1:
        raise ReplayError(
            f"{path}: experiment {key!r} has {len(complete)} completed "
            "attempts; merge the trace (repro merge / merge_campaign_shards) "
            "before replaying")
    return complete[0]


def replay_record(trace_path: str | Path, key: str) -> ReplayRecord:
    """Extract one experiment's :class:`ReplayRecord` from a trace file."""
    trace_path = Path(trace_path)
    try:
        trace = read_trace(trace_path)
    except TraceFormatError as exc:
        raise ReplayError(f"unreadable trace: {exc}") from exc
    config = _campaign_config(trace.meta, trace_path)
    events = _experiment_events(trace, key, trace_path)

    started = next((e for e in events if e.type == EXPERIMENT_STARTED), None)
    if started is None:
        raise ReplayError(
            f"{trace_path}: experiment {key!r} has no experiment_started "
            "marker; the record is incomplete and cannot seed a replay")
    unit = started.data.get("unit")
    if not isinstance(unit, dict) or "index" not in unit or \
            not isinstance(unit.get("fault"), dict):
        raise ReplayError(
            f"{trace_path}: experiment {key!r} was recorded without its "
            "work-unit payload (pre-replay trace format); re-run the "
            "campaign with this build to produce a replayable trace")

    finished = next(e for e in events if e.type == EXPERIMENT_FINISHED
                    and e.data.get("status") == "done")
    lines = normalize_events(events)
    return ReplayRecord(
        key=key,
        index=int(unit["index"]),
        fault=unit["fault"],
        config=config,
        backend=str(config.get("backend", "inprocess")),
        outcome=finished.data.get("outcome"),
        arena_sha256=finished.data.get("arena_sha256"),
        events=lines,
        events_sha256=events_digest(lines) if lines else None,
    )


def replay_keys(trace_path: str | Path) -> list[str]:
    """All experiment keys present in a trace, in first-seen order."""
    trace_path = Path(trace_path)
    try:
        trace = read_trace(trace_path)
    except TraceFormatError as exc:
        raise ReplayError(f"unreadable trace: {exc}") from exc
    seen: dict[str, None] = {}
    for event in trace.events:
        key = event.data.get("key")
        if isinstance(key, str):
            seen.setdefault(key)
    return list(seen)
