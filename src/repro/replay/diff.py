"""Campaign diffing: outcome-taxonomy drift between two result stores.

``repro diff-campaign A B`` compares two campaigns run with the same
seeds (same experiment keys) under different code / backends / configs:

* per-Outcome **transition matrix** over the common keys — how many
  experiments moved from each Table 3 class to each other class;
* the **flipped keys** themselves, so any drift is replayable
  one-by-one (``repro replay <trace> <key>``);
* **new/missing keys** (sampling or resume drift);
* **detection-latency deltas** from the campaign traces next to the
  stores, when both exist (Sec. 5.1 drift).

Everything is computed from the stores/traces alone and rendered
deterministically (sorted keys, stable ordering), so two runs of the
diff — or a diff in CI — are byte-identical.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine.store import read_records
from repro.observe.analysis import detection_latencies
from repro.observe.merge import campaign_trace_path
from repro.observe.tracer import read_trace

#: Pseudo-outcome label for quarantined experiments in the transition
#: matrix (a unit that completes in A but is quarantined in B is drift
#: worth seeing, not a hole in the matrix).
QUARANTINED = "quarantined"


def _store_outcomes(path: Path) -> dict[str, str]:
    """key -> outcome label (completed) or the quarantined pseudo-label."""
    outcomes: dict[str, str] = {}
    for record in read_records(path)[1:]:
        if record.get("record") == "experiment":
            payload = record.get("payload") or {}
            outcomes[record["key"]] = str(payload.get("outcome"))
        elif record.get("record") == "quarantine":
            outcomes.setdefault(record["key"], QUARANTINED)
    return outcomes


def _store_latencies(store_path: Path) -> dict[str, int | None] | None:
    """key -> detection latency from the campaign trace, if one exists."""
    trace_path = campaign_trace_path(store_path)
    if not trace_path.exists():
        return None
    rows = detection_latencies(read_trace(trace_path))
    return {row["key"]: row["latency"] for row in rows
            if isinstance(row["key"], str)}


def _counts(outcomes: dict[str, str]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for outcome in outcomes.values():
        counts[outcome] = counts.get(outcome, 0) + 1
    return dict(sorted(counts.items()))


def diff_campaigns(store_a: str | Path, store_b: str | Path) -> dict:
    """Drift report between two result stores (see module docstring)."""
    store_a, store_b = Path(store_a), Path(store_b)
    outcomes_a = _store_outcomes(store_a)
    outcomes_b = _store_outcomes(store_b)
    common = sorted(set(outcomes_a) & set(outcomes_b))

    transitions: dict[str, int] = {}
    flips: list[dict] = []
    for key in common:
        a, b = outcomes_a[key], outcomes_b[key]
        label = f"{a} -> {b}"
        transitions[label] = transitions.get(label, 0) + 1
        if a != b:
            flips.append({"key": key, "a": a, "b": b})

    diff = {
        "a": str(store_a),
        "b": str(store_b),
        "experiments": {"a": len(outcomes_a), "b": len(outcomes_b),
                        "common": len(common)},
        "outcomes_a": _counts(outcomes_a),
        "outcomes_b": _counts(outcomes_b),
        "transitions": dict(sorted(transitions.items())),
        "flips": flips,
        "flip_count": len(flips),
        "only_in_a": sorted(set(outcomes_a) - set(outcomes_b)),
        "only_in_b": sorted(set(outcomes_b) - set(outcomes_a)),
        "detection": None,
    }

    lat_a = _store_latencies(store_a)
    lat_b = _store_latencies(store_b)
    if lat_a is not None and lat_b is not None:
        deltas = []
        for key in common:
            la, lb = lat_a.get(key), lat_b.get(key)
            if la != lb:
                deltas.append({"key": key, "a": la, "b": lb})
        caught_a = [v for v in lat_a.values() if v is not None]
        caught_b = [v for v in lat_b.values() if v is not None]
        diff["detection"] = {
            "caught": {"a": len(caught_a), "b": len(caught_b)},
            "mean_latency": {
                "a": (sum(caught_a) / len(caught_a)) if caught_a else None,
                "b": (sum(caught_b) / len(caught_b)) if caught_b else None,
            },
            "deltas": deltas,
        }
    return diff


def render_diff(diff: dict) -> str:
    """Human-readable drift report."""
    lines = [
        f"campaign diff: {diff['a']}  vs  {diff['b']}",
        (f"experiments: {diff['experiments']['a']} vs "
         f"{diff['experiments']['b']} "
         f"({diff['experiments']['common']} common)"),
        "",
        "outcome transitions (A -> B):",
    ]
    for label, count in diff["transitions"].items():
        a, _, b = label.partition(" -> ")
        marker = "  " if a == b else " *"
        lines.append(f"{marker} {count:6d}  {label}")
    if diff["flips"]:
        lines.append("")
        lines.append(f"flipped experiments ({diff['flip_count']}):")
        for flip in diff["flips"]:
            lines.append(f"   {flip['key']}  {flip['a']} -> {flip['b']}")
    else:
        lines.append("")
        lines.append("no outcome flips")
    for side, keys in (("A", diff["only_in_a"]), ("B", diff["only_in_b"])):
        if keys:
            lines.append(f"only in {side} ({len(keys)}): "
                         + " ".join(keys[:8])
                         + (" ..." if len(keys) > 8 else ""))
    detection = diff.get("detection")
    if detection is not None:
        mean = detection["mean_latency"]
        fmt = (lambda v: "-" if v is None else f"{v:.2f}")
        lines.append("")
        lines.append(
            f"detection: caught {detection['caught']['a']} vs "
            f"{detection['caught']['b']}, mean latency "
            f"{fmt(mean['a'])} vs {fmt(mean['b'])} iterations")
        for delta in detection["deltas"]:
            lines.append(f"   {delta['key']}  latency {delta['a']} -> "
                         f"{delta['b']}")
    return "\n".join(lines)
