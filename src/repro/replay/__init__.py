"""Deterministic replay and campaign diffing (see ROADMAP).

Reconstruct any experiment bit-for-bit from its campaign-trace record
(:mod:`repro.replay.record` / :mod:`repro.replay.runner`), pin a
site-kind x outcome x backend corpus as a CI regression gate
(:mod:`repro.replay.corpus`), and report outcome-taxonomy drift between
two campaigns (:mod:`repro.replay.diff`).
"""

from repro.replay.corpus import (
    CORPUS_SCHEMA_VERSION,
    entry_to_record,
    load_corpus,
    run_corpus,
    save_corpus,
)
from repro.replay.diff import QUARANTINED, diff_campaigns, render_diff
from repro.replay.record import (
    ReplayError,
    ReplayRecord,
    canonical_event,
    events_digest,
    normalize_events,
    replay_keys,
    replay_record,
)
from repro.replay.runner import CampaignCache, ReplayReport, replay, verify_key

__all__ = [
    "CORPUS_SCHEMA_VERSION",
    "CampaignCache",
    "QUARANTINED",
    "ReplayError",
    "ReplayRecord",
    "ReplayReport",
    "canonical_event",
    "diff_campaigns",
    "entry_to_record",
    "events_digest",
    "load_corpus",
    "normalize_events",
    "replay",
    "replay_keys",
    "replay_record",
    "render_diff",
    "run_corpus",
    "save_corpus",
    "verify_key",
]
