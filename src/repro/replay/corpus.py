"""The pinned replay corpus: the repo's standing regression gate.

A corpus is a JSON document of replay entries — each one a fully
specified experiment (fault descriptor + campaign config + backend)
pinned to its blessed outcome, final-state digest, and event-stream
digest.  CI replays every entry and fails on any drift, which is what
makes refactors of the execution path (backends, kernels, state layout)
safe to land: an outcome flip anywhere in the covered
site-kind x outcome x backend matrix is caught before merge.

Pinned values change only through an explicit bless
(``repro replay --corpus PATH --bless``): the corpus is re-run, the
replayed values become the new pins, and the diff shows up in review
like any other golden-file change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.replay.record import ReplayError, ReplayRecord
from repro.replay.runner import CampaignCache, ReplayReport, replay

#: Corpus document schema version; readers reject unknown versions.
CORPUS_SCHEMA_VERSION = 1

_REQUIRED_ENTRY_FIELDS = ("key", "index", "backend", "fault", "config")


def load_corpus(path: str | Path) -> dict:
    """Read and validate a corpus document."""
    path = Path(path)
    try:
        corpus = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ReplayError(f"cannot read corpus: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReplayError(f"{path}: corrupt corpus document: {exc}") from exc
    if not isinstance(corpus, dict) or \
            corpus.get("kind") != "replay_corpus":
        raise ReplayError(f"{path}: not a replay corpus document")
    schema = corpus.get("schema")
    if schema != CORPUS_SCHEMA_VERSION:
        raise ReplayError(
            f"{path}: corpus schema version {schema!r} is not supported "
            f"(this build reads version {CORPUS_SCHEMA_VERSION})")
    entries = corpus.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ReplayError(f"{path}: corpus has no entries")
    for i, entry in enumerate(entries):
        missing = [f for f in _REQUIRED_ENTRY_FIELDS if f not in entry]
        if missing:
            raise ReplayError(
                f"{path}: entry {i} is missing fields {missing}")
    return corpus


def save_corpus(corpus: dict, path: str | Path) -> None:
    """Write a corpus deterministically (sorted keys, stable layout)."""
    Path(path).write_text(
        json.dumps(corpus, indent=1, sort_keys=True) + "\n",
        encoding="utf-8")


def entry_to_record(entry: dict) -> ReplayRecord:
    """One corpus entry as a runnable :class:`ReplayRecord`.

    Corpus entries pin digests rather than full event streams, so
    ``events`` is empty and event verification compares digests.
    """
    return ReplayRecord(
        key=entry["key"],
        index=int(entry["index"]),
        fault=entry["fault"],
        config=entry["config"],
        backend=entry["backend"],
        outcome=entry.get("outcome"),
        arena_sha256=entry.get("arena_sha256"),
        events=[],
        events_sha256=entry.get("events_sha256"),
    )


def run_corpus(corpus: dict, *, backend: str | None = None,
               verify_trace: bool = False, bless: bool = False,
               on_progress=None) -> list[ReplayReport]:
    """Replay every corpus entry; with ``bless``, re-pin the entries.

    ``backend`` overrides every entry's recorded backend (for targeted
    cross-backend sweeps).  Blessing replaces each entry's pinned
    outcome / arena / events digests with the replayed values in place —
    the caller persists the updated corpus with :func:`save_corpus`.
    """
    cache = CampaignCache()
    reports: list[ReplayReport] = []
    entries = corpus["entries"]
    for i, entry in enumerate(entries):
        record = entry_to_record(entry)
        report = replay(record, backend=backend,
                        verify_trace=verify_trace or bless, cache=cache)
        if bless:
            entry["outcome"] = report.outcome_replayed
            entry["arena_sha256"] = report.arena_replayed
            entry["events_sha256"] = report.events_replayed_sha256
        reports.append(report)
        if on_progress is not None:
            on_progress(i + 1, len(entries), report)
    return reports
