"""Fused training-state arena.

The mitigation story of the paper (Sec. 5.2) depends on per-iteration
state capture being cheap enough to run always-on.  A model's training
state, however, is naturally scattered: every :class:`~repro.nn.module.Parameter`
owns its own ``data``/``grad`` arrays and every optimizer keeps per-parameter
slot lists (Adam ``m``/``v``, SGD ``velocity``, RMSProp ``sq``).  Snapshotting
or broadcasting that state means one Python-level copy per array — hundreds
of small allocations per iteration on the 8-device trainer.

:class:`StateArena` lays the same state out as *views into contiguous fused
float32 buffers*, one buffer ("segment") per state class:

* ``"param"`` — all master/replica parameter values, concatenated;
* ``"grad"``  — their gradients, same layout;
* ``"opt.<slot>"`` — one segment per optimizer slot, allocated on demand
  by :meth:`allocate_segment` (same layout again).

Every segment shares a single stable ``name -> (offset, size, shape)``
index built from ``Module.named_parameters()`` traversal order.  The
parameters themselves are *rebound*: ``param.data`` and ``param.grad``
become views into the fused buffers, so all existing layer code (which
accumulates gradients in place) keeps working unchanged, while the layers
above can operate on whole state classes with single vectorized ops:

* gradient averaging / weight broadcast: one ``axpy``/``copyto`` per replica;
* optimizer ``step()`` / ``history_magnitude()``: one pass over each segment;
* snapshot/restore: one buffer copy per segment.

Because every fused operation is elementwise over the identical values,
the arena is numerically invisible: convergence records, outcome
breakdowns, and detector firing iterations are bit-identical to the
scattered representation.

What stays *outside* the arena: BatchNorm moving statistics.  They are
per-replica state that is never averaged across devices (that locality is
the mechanism behind the LowTestAccuracy outcome, Sec. 4.3.3), and the
layer rebinds them on every forward pass, so they are snapshotted as
per-device extra state instead (see :mod:`repro.training.checkpoints`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module, Parameter

#: The two segments every arena starts with.
PARAM_SEGMENT = "param"
GRAD_SEGMENT = "grad"

#: Prefix for optimizer-slot segments (``opt.m``, ``opt.v``, ...).
OPT_SEGMENT_PREFIX = "opt."


@dataclass(frozen=True)
class ArenaEntry:
    """Placement of one named parameter inside every fused segment."""

    offset: int
    size: int
    shape: tuple[int, ...]


class ArenaLayoutError(ValueError):
    """Raised when a model cannot be laid out as an arena (e.g. tied
    parameters registered under two names)."""


class StateArena:
    """Contiguous fused float32 buffers behind a model's training state.

    Constructing an arena *rebinds* the model's parameters in place:
    current values are copied into the fused buffers and each parameter's
    ``data``/``grad`` become views.  All segments share one layout, so a
    parameter's views into different segments are always shape-aligned.
    """

    def __init__(self, model: Module):
        self.model = model
        index: dict[str, ArenaEntry] = {}
        params: list[Parameter] = []
        seen: set[int] = set()
        offset = 0
        for name, param in model.named_parameters():
            if name in index:
                raise ArenaLayoutError(f"duplicate parameter name: {name!r}")
            if id(param) in seen:
                raise ArenaLayoutError(
                    f"parameter {name!r} is registered twice (tied weights); "
                    "the arena requires each leaf to own its storage"
                )
            seen.add(id(param))
            index[name] = ArenaEntry(offset, param.size, param.shape)
            params.append(param)
            offset += param.size
        if offset == 0:
            raise ArenaLayoutError("model has no parameters to lay out")
        self.index = index
        self.total = offset
        self.parameters: list[Parameter] = params
        #: Modules carrying non-parameter persistent state (BatchNorm
        #: moving statistics).  Cached so per-iteration snapshot capture
        #: does not re-walk the module tree (see
        #: :mod:`repro.training.checkpoints`).
        self.stateful_modules: list[tuple[str, Module]] = [
            (mod_name, module)
            for mod_name, module in model.named_modules()
            if module.extra_state()
        ]
        self.segments: dict[str, np.ndarray] = {
            PARAM_SEGMENT: np.empty(self.total, dtype=np.float32),
            GRAD_SEGMENT: np.empty(self.total, dtype=np.float32),
        }
        for param, data_view, grad_view in zip(
            params, self.views(PARAM_SEGMENT), self.views(GRAD_SEGMENT)
        ):
            data_view[...] = param.data
            grad_view[...] = param.grad
            param.data = data_view
            param.grad = grad_view

    # ------------------------------------------------------------------
    # Segment access
    # ------------------------------------------------------------------
    @property
    def param(self) -> np.ndarray:
        """The fused parameter buffer."""
        return self.segments[PARAM_SEGMENT]

    @property
    def grad(self) -> np.ndarray:
        """The fused gradient buffer."""
        return self.segments[GRAD_SEGMENT]

    def allocate_segment(self, name: str) -> np.ndarray:
        """Allocate (or return) a zero-initialized fused segment."""
        if name not in self.segments:
            self.segments[name] = np.zeros(self.total, dtype=np.float32)
        return self.segments[name]

    def scratch(self) -> np.ndarray:
        """A fresh unmanaged buffer with the arena's layout."""
        return np.empty(self.total, dtype=np.float32)

    def rebind_segment(self, name: str, buffer: np.ndarray) -> np.ndarray:
        """Swap a segment's backing storage (e.g. into shared memory).

        The current contents are copied into ``buffer``, the segment map
        is repointed, and — for the ``param``/``grad`` segments — every
        parameter's ``data``/``grad`` view is rebound so layer code keeps
        mutating the new storage.  Returns the old backing buffer.
        """
        if buffer.dtype != np.float32 or buffer.size != self.total:
            raise ArenaLayoutError(
                f"segment {name!r} needs a float32 buffer of "
                f"{self.total} elements, got {buffer.dtype}[{buffer.size}]"
            )
        old = self.segments[name]
        np.copyto(buffer, old.ravel())
        self.segments[name] = buffer
        if name in (PARAM_SEGMENT, GRAD_SEGMENT):
            for param, view in zip(self.parameters, self.views(name)):
                if name == PARAM_SEGMENT:
                    param.data = view
                else:
                    param.grad = view
        return old

    # ------------------------------------------------------------------
    # The stable name index
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """All parameter names in layout order."""
        return list(self.index)

    def entry(self, name: str) -> ArenaEntry:
        try:
            return self.index[name]
        except KeyError:
            raise KeyError(
                f"unknown arena name {name!r}; known: {sorted(self.index)[:8]}..."
            ) from None

    def view(self, segment: str, name: str) -> np.ndarray:
        """The named parameter's view into one segment."""
        entry = self.entry(name)
        buf = self.segments[segment]
        return buf[entry.offset : entry.offset + entry.size].reshape(entry.shape)

    def views(self, segment: str) -> list[np.ndarray]:
        """Per-parameter views into one segment, in layout order."""
        buf = self.segments[segment]
        return [
            buf[e.offset : e.offset + e.size].reshape(e.shape)
            for e in self.index.values()
        ]

    @staticmethod
    def owner_module(name: str) -> str:
        """The qualified module path owning an arena name
        (``"0.conv1.weight" -> "0.conv1"``)."""
        module, _, _ = name.rpartition(".")
        return module

    def resolve(self, name: str) -> tuple[str, str]:
        """Split an arena name into ``(module_path, leaf)``; raises
        ``KeyError`` for names not in the index."""
        self.entry(name)
        module, _, leaf = name.rpartition(".")
        return module, leaf

    def index_of(self, name: str) -> int:
        """Position of a name in layout order (= optimizer param index)."""
        for i, known in enumerate(self.index):
            if known == name:
                return i
        raise KeyError(f"unknown arena name {name!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Total bytes across all live segments."""
        return sum(buf.nbytes for buf in self.segments.values())

    def compatible_with(self, other: "StateArena") -> bool:
        """True if ``other`` has the identical layout (same names, same
        placements) — the precondition for raw buffer transfer."""
        return self.index == other.index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StateArena({len(self.index)} leaves, {self.total} elements, "
            f"segments={sorted(self.segments)})"
        )


def training_state_digest(trainer) -> str:
    """sha256 over a trainer's final params, optimizer slots, and
    per-replica extra state (BatchNorm moving statistics), in a
    deterministic order.

    This is the repo's definition of "byte-identical final training
    state": the golden traces pin it across machines and backends, and
    the replay gate verifies it per experiment.  The digest reads only
    values the training loop already computed, so it is safe to take on
    a live trainer (but must run before ``trainer.close()`` — the
    multiprocess backend unlinks its shared-memory segments on close).
    """
    h = hashlib.sha256()
    for name, param in sorted(trainer.master.named_parameters()):
        h.update(name.encode())
        h.update(param.data.tobytes())
    opt = trainer.optimizer.state_dict()
    for key in sorted(k for k in opt if k not in ("iteration", "lr")):
        for arr in opt[key]:
            h.update(arr.tobytes())
    for replica in trainer.replicas:
        for _mod_name, module in sorted(replica.named_modules()):
            for _k, v in sorted(module.extra_state().items()):
                h.update(v.tobytes())
    return h.hexdigest()


def build_arenas(replicas: list[Module]) -> list[StateArena] | None:
    """Arenas for a set of replicas, or ``None`` if the model cannot be
    laid out (the caller then falls back to scattered state)."""
    try:
        arenas = [StateArena(replica) for replica in replicas]
    except ArenaLayoutError:
        return None
    for arena in arenas[1:]:
        if not arena.compatible_with(arenas[0]):
            return None
    return arenas
