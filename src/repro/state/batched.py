"""Batched ``(E, ...)`` arena layout for experiment-stacked execution.

The fused :class:`~repro.state.arena.StateArena` lays one replica's
parameters, gradients, and optimizer slots out as flat ``float32``
buffers.  :class:`ExperimentStacks` extends that layout with a leading
*experiment* dimension: E experiments x D devices of parameters and
gradients live in one C-contiguous ``(E * D, total)`` stack (rows are
experiment-major: experiment ``e``'s device ``d`` is row ``e * D + d``),
and each optimizer slot lives in an ``(E, total)`` stack (slots exist
only on master arenas).

Adoption reuses the arena's own :meth:`~StateArena.rebind_segment`: a
row of a C-contiguous 2-D stack is itself a contiguous ``(total,)``
buffer, so every existing ``name -> (offset, size, shape)`` index entry
keeps addressing its experiment's slice, and every consumer of arena
views (modules, optimizer, checkpoints, detectors) keeps working
untouched.  Vectorized code addresses *across* experiments through
:attr:`param` / :attr:`grad` / :attr:`opt` instead.

BatchNorm moving statistics deliberately stay *outside* the stacks: they
are per-device module state the paper never averages (the mechanism
behind LowTestAccuracy), and they already live per-replica — stacking E
experiments adds nothing to share.
"""

from __future__ import annotations

import numpy as np

from repro.state.arena import GRAD_SEGMENT, OPT_SEGMENT_PREFIX, PARAM_SEGMENT, StateArena


class ExperimentStacks:
    """Contiguous ``(E * D, total)`` state stacks adopted row-by-row.

    Lazy: buffers are allocated at the first :meth:`adopt` call, when
    the layout (parameter total, device count, optimizer slot names) is
    known.  Experiment slots are never reused — a finished experiment's
    rows stay valid so its final state remains readable (classification,
    digests) after batch-mates finish.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = int(capacity)
        self.num_devices: int | None = None
        self.total: int | None = None
        #: ``(capacity * D, total)`` parameter / gradient row stacks.
        self.param: np.ndarray | None = None
        self.grad: np.ndarray | None = None
        #: slot name -> ``(capacity, total)`` optimizer-slot stack.
        self.opt: dict[str, np.ndarray] = {}
        self.experiments = 0
        self._index = None

    # ------------------------------------------------------------------
    # Adoption
    # ------------------------------------------------------------------
    def _allocate(self, master: StateArena, num_devices: int,
                  slot_names: list[str]) -> None:
        self.num_devices = int(num_devices)
        self.total = master.total
        self._index = master.index
        rows = self.capacity * self.num_devices
        self.param = np.empty((rows, self.total), dtype=np.float32)
        self.grad = np.empty((rows, self.total), dtype=np.float32)
        self.opt = {
            name: np.empty((self.capacity, self.total), dtype=np.float32)
            for name in slot_names
        }

    def adopt(self, arenas: list[StateArena], optimizer) -> int:
        """Rebind one experiment's arenas into the stacks.

        ``arenas`` is the experiment's per-device arena list (master
        first); ``optimizer`` is the experiment's arena-bound optimizer,
        whose slot views are refreshed after its ``opt.*`` segments move
        into the stacks.  Returns the experiment slot index.
        """
        master = arenas[0]
        slot_names = sorted(optimizer._fused_slots)
        if self.param is None:
            self._allocate(master, len(arenas), slot_names)
        else:
            if master.index != self._index:
                raise ValueError("arena layout differs from the stack layout")
            if len(arenas) != self.num_devices:
                raise ValueError(
                    f"expected {self.num_devices} device arenas, got {len(arenas)}")
            if slot_names != sorted(self.opt):
                raise ValueError(
                    f"optimizer slots {slot_names} differ from the stack's "
                    f"{sorted(self.opt)}")
        if self.experiments >= self.capacity:
            raise ValueError(f"experiment stack is full ({self.capacity})")
        exp = self.experiments
        self.experiments += 1
        base = exp * self.num_devices
        for d, arena in enumerate(arenas):
            arena.rebind_segment(PARAM_SEGMENT, self.param[base + d])
            arena.rebind_segment(GRAD_SEGMENT, self.grad[base + d])
        for name in slot_names:
            master.rebind_segment(f"{OPT_SEGMENT_PREFIX}{name}", self.opt[name][exp])
        optimizer.refresh_arena_views()
        return exp

    # ------------------------------------------------------------------
    # Row addressing
    # ------------------------------------------------------------------
    def row(self, experiment: int, device: int) -> int:
        """Stack row of one (experiment, device) lane."""
        return experiment * self.num_devices + device

    def experiment_rows(self, experiment: int) -> slice:
        """Row slice covering one experiment's device lanes."""
        base = experiment * self.num_devices
        return slice(base, base + self.num_devices)

    @property
    def nbytes(self) -> int:
        """Allocated stack bytes (0 before the first adoption)."""
        total = 0
        for buf in (self.param, self.grad, *self.opt.values()):
            if buf is not None:
                total += buf.nbytes
        return total
