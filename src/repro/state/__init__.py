"""Flat fused training-state layer (see :mod:`repro.state.arena`)."""

from repro.state.arena import (
    GRAD_SEGMENT,
    OPT_SEGMENT_PREFIX,
    PARAM_SEGMENT,
    ArenaEntry,
    ArenaLayoutError,
    StateArena,
    build_arenas,
)

__all__ = [
    "ArenaEntry",
    "ArenaLayoutError",
    "StateArena",
    "build_arenas",
    "GRAD_SEGMENT",
    "OPT_SEGMENT_PREFIX",
    "PARAM_SEGMENT",
]
