"""Flat fused training-state layer (see :mod:`repro.state.arena`)."""

from repro.state.arena import (
    GRAD_SEGMENT,
    OPT_SEGMENT_PREFIX,
    PARAM_SEGMENT,
    ArenaEntry,
    ArenaLayoutError,
    StateArena,
    build_arenas,
    training_state_digest,
)
from repro.state.batched import ExperimentStacks

__all__ = [
    "ArenaEntry",
    "ArenaLayoutError",
    "ExperimentStacks",
    "StateArena",
    "build_arenas",
    "training_state_digest",
    "GRAD_SEGMENT",
    "OPT_SEGMENT_PREFIX",
    "PARAM_SEGMENT",
]
