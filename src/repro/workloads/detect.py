"""YOLO-style detection workload (Table 2's Yolov3/VOC12 row, miniaturized)."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.data.detection import detection_cell_accuracy, make_detection_dataset
from repro.data.synthetic import Dataset
from repro.nn.losses import DetectionLoss
from repro.optim import Adam
from repro.workloads.base import WorkloadSpec

NUM_CLASSES = 4
GRID = 4


def build_yolo_model(seed: int, bn_momentum: float = 0.9) -> nn.Module:
    """Tiny single-scale YOLO: conv/BN/LeakyReLU backbone + 1x1 head.

    Input 16x16 -> grid 4x4; head outputs (5 + K) channels per cell.
    """
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2D(3, 8, 3, rng, use_bias=False),
        nn.BatchNorm(8, momentum=bn_momentum),
        nn.LeakyReLU(0.1),
        nn.Conv2D(8, 16, 3, rng, stride=2, use_bias=False),
        nn.BatchNorm(16, momentum=bn_momentum),
        nn.LeakyReLU(0.1),
        nn.Conv2D(16, 16, 3, rng, stride=2, use_bias=False),
        nn.BatchNorm(16, momentum=bn_momentum),
        nn.LeakyReLU(0.1),
        nn.Conv2D(16, 5 + NUM_CLASSES, 1, rng, padding=0),
    )


def _detection_data(size: str, seed: int) -> tuple[Dataset, Dataset]:
    num_samples = {"tiny": 128, "small": 320}[size]
    train = make_detection_dataset(
        num_samples=num_samples, num_classes=NUM_CLASSES, image_size=16,
        grid_size=GRID, seed=seed,
    )
    test = make_detection_dataset(
        num_samples=max(num_samples // 4, 32), num_classes=NUM_CLASSES,
        image_size=16, grid_size=GRID, seed=seed + 10_000,
    )
    return train, test


def yolo(size: str = "small", seed: int = 0) -> WorkloadSpec:
    train, test = _detection_data(size, seed)
    return WorkloadSpec(
        name="yolo",
        model_fn=build_yolo_model,
        loss_fn=lambda: DetectionLoss(num_classes=NUM_CLASSES),
        optimizer_fn=lambda params: Adam(params, lr=3e-3),
        train_data=train,
        test_data=test,
        metric=detection_cell_accuracy,
        batch_size=32,
        iterations={"tiny": 60, "small": 240}[size],
        notes="Single-scale detection head; Adam; cell-accuracy metric",
    )
