"""Sequence workloads: multigrid-neural-memory stand-in (LSTM over maze
observations) and the Transformer translation stand-in (Table 2 rows 6-7)."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.data.maze import make_maze_dataset
from repro.data.translation import make_translation_dataset
from repro.nn.losses import SoftmaxCrossEntropy, SequenceCrossEntropy, accuracy, sequence_accuracy
from repro.optim import Adam
from repro.workloads.base import WorkloadSpec

VOCAB_SIZE = 24
SEQ_LEN = 10


def build_multigrid_model(seed: int, hidden: int = 32) -> nn.Module:
    """Recurrent-memory navigator: LSTM integrates move observations."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.LSTM(4, hidden, rng),
        nn.LastStep(),
        nn.Dense(hidden, 4, rng),
    )


def multigrid(size: str = "small", seed: int = 0) -> WorkloadSpec:
    num_samples = {"tiny": 192, "small": 512}[size]
    train = make_maze_dataset(num_samples=num_samples, seed=seed)
    test = make_maze_dataset(num_samples=max(num_samples // 4, 48), seed=seed + 10_000)
    return WorkloadSpec(
        name="multigrid",
        model_fn=build_multigrid_model,
        loss_fn=SoftmaxCrossEntropy,
        optimizer_fn=lambda params: Adam(params, lr=3e-3),
        train_data=train,
        test_data=test,
        metric=accuracy,
        batch_size=32,
        iterations={"tiny": 60, "small": 300}[size],
        has_batchnorm=False,
        notes="LSTM memory over maze observations; Adam",
    )


def build_transformer_model(seed: int, dim: int = 32, heads: int = 4) -> nn.Module:
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Embedding(VOCAB_SIZE, dim, rng),
        nn.PositionalEncoding(dim, max_len=SEQ_LEN * 2),
        nn.TransformerEncoderLayer(dim, heads, dim * 2, rng),
        nn.TransformerEncoderLayer(dim, heads, dim * 2, rng),
        nn.Dense(dim, VOCAB_SIZE, rng),
    )


def transformer(size: str = "small", seed: int = 0) -> WorkloadSpec:
    num_samples = {"tiny": 192, "small": 512}[size]
    train = make_translation_dataset(
        num_samples=num_samples, vocab_size=VOCAB_SIZE, sequence_length=SEQ_LEN, seed=seed
    )
    test = make_translation_dataset(
        num_samples=max(num_samples // 4, 48), vocab_size=VOCAB_SIZE,
        sequence_length=SEQ_LEN, seed=seed + 10_000,
    )
    # The target mapping (permutation) must be shared between splits.
    test.targets = train.permutation[test.inputs[:, ::-1] - 1]
    return WorkloadSpec(
        name="transformer",
        model_fn=build_transformer_model,
        loss_fn=lambda: SequenceCrossEntropy(pad_id=0),
        optimizer_fn=lambda params: Adam(params, lr=3e-3),
        train_data=train,
        test_data=test,
        metric=lambda out, tgt: sequence_accuracy(out, tgt, pad_id=0),
        batch_size=32,
        iterations={"tiny": 150, "small": 400}[size],
        has_batchnorm=False,
        notes="2-layer pre-LN Transformer on token reversal-translation; Adam",
    )
