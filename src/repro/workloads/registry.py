"""Workload registry: the paper's Table 2 zoo by name."""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import WorkloadSpec
from repro.workloads.detect import yolo
from repro.workloads.sequence import multigrid, transformer
from repro.workloads.vision import (
    densenet,
    efficientnet,
    googlenet,
    nfnet,
    resnet,
    resnet_largedecay,
    resnet_nobn,
    resnet_sgd,
)

#: All workload builders, keyed by Table 2 name.
WORKLOAD_BUILDERS: dict[str, Callable[..., WorkloadSpec]] = {
    "resnet": resnet,
    "resnet_nobn": resnet_nobn,
    "resnet_sgd": resnet_sgd,
    "resnet_largedecay": resnet_largedecay,
    "densenet": densenet,
    "googlenet": googlenet,
    "efficientnet": efficientnet,
    "nfnet": nfnet,
    "yolo": yolo,
    "multigrid": multigrid,
    "transformer": transformer,
}


def workload_names() -> list[str]:
    return list(WORKLOAD_BUILDERS)


def build_workload(name: str, size: str = "small", seed: int = 0) -> WorkloadSpec:
    """Build a Table 2 workload by name.

    ``size`` selects the scale: ``"tiny"`` for unit tests, ``"small"`` for
    campaigns and benches.
    """
    try:
        builder = WORKLOAD_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOAD_BUILDERS)}"
        ) from None
    spec = builder(size=size, seed=seed)
    # Record the registry arguments so a campaign config (and hence a
    # replay) can rebuild the identical spec from the name alone.
    spec.extra.setdefault("size", size)
    spec.extra.setdefault("seed", seed)
    return spec
