"""The paper's Table 2 workload zoo (miniaturized)."""

from repro.workloads.base import WorkloadSpec
from repro.workloads.registry import WORKLOAD_BUILDERS, build_workload, workload_names

__all__ = ["WORKLOAD_BUILDERS", "WorkloadSpec", "build_workload", "workload_names"]
