"""Vision workloads: the four ResNet configurations, DenseNet,
EfficientNet, and NFNet rows of Table 2 (miniaturized; see DESIGN.md).

The four ResNet configurations drive the paper's outcome taxonomy:

* ``resnet``            — BatchNorm after every conv, Adam (baseline);
* ``resnet_nobn``       — no BatchNorm (SharpSlowDegrade becomes reachable);
* ``resnet_sgd``        — SGD optimizer (SharpDegrade / short-term
  INFs-NaNs become reachable, SlowDegrade does not);
* ``resnet_largedecay`` — BatchNorm decay 0.99 (LowTestAccuracy: faulty
  mvar values are corrected too slowly).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.data.synthetic import Dataset, make_image_classification, train_test_split
from repro.nn.losses import SoftmaxCrossEntropy, accuracy
from repro.optim import SGD, Adam
from repro.workloads.base import WorkloadSpec


def _image_data(size: str, seed: int) -> tuple[Dataset, Dataset]:
    num_samples = {"tiny": 192, "small": 512}[size]
    data = make_image_classification(
        num_samples=num_samples, num_classes=8, image_size=16, channels=3, seed=seed
    )
    return train_test_split(data)


def _iterations(size: str) -> int:
    return {"tiny": 60, "small": 300}[size]


def build_resnet_model(
    seed: int, use_bn: bool = True, bn_momentum: float = 0.9, num_classes: int = 8
) -> nn.Module:
    """Miniature ResNet18-style model: stem + 2 residual stages."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.conv_bn_act(3, 8, rng, use_bn=use_bn, bn_momentum=bn_momentum),
        nn.ResidualBlock(8, 16, rng, stride=2, use_bn=use_bn, bn_momentum=bn_momentum),
        nn.ResidualBlock(16, 16, rng, use_bn=use_bn, bn_momentum=bn_momentum),
        nn.GlobalAvgPool2D(),
        nn.Dense(16, num_classes, rng),
    )


def _resnet_variant(
    name: str,
    size: str,
    seed: int,
    use_bn: bool,
    bn_momentum: float,
    optimizer: str,
    notes: str,
) -> WorkloadSpec:
    train, test = _image_data(size, seed)

    def optimizer_fn(params):
        if optimizer == "adam":
            return Adam(params, lr=3e-3)
        return SGD(params, lr=0.05)

    return WorkloadSpec(
        name=name,
        model_fn=lambda s: build_resnet_model(s, use_bn=use_bn, bn_momentum=bn_momentum),
        loss_fn=SoftmaxCrossEntropy,
        optimizer_fn=optimizer_fn,
        train_data=train,
        test_data=test,
        metric=accuracy,
        batch_size=32,
        iterations=_iterations(size),
        bn_momentum=bn_momentum,
        has_batchnorm=use_bn,
        notes=notes,
    )


def resnet(size: str = "small", seed: int = 0) -> WorkloadSpec:
    return _resnet_variant(
        "resnet", size, seed, use_bn=True, bn_momentum=0.9, optimizer="adam",
        notes="BatchNorm after every conv; Adam (Table 2 config 1)",
    )


def resnet_nobn(size: str = "small", seed: int = 0) -> WorkloadSpec:
    return _resnet_variant(
        "resnet_nobn", size, seed, use_bn=False, bn_momentum=0.9, optimizer="adam",
        notes="No BatchNorm layers; Adam (Table 2 config 2)",
    )


def resnet_sgd(size: str = "small", seed: int = 0) -> WorkloadSpec:
    return _resnet_variant(
        "resnet_sgd", size, seed, use_bn=True, bn_momentum=0.9, optimizer="sgd",
        notes="SGD optimizer, no gradient normalization (Table 2 config 3)",
    )


def resnet_largedecay(size: str = "small", seed: int = 0) -> WorkloadSpec:
    return _resnet_variant(
        "resnet_largedecay", size, seed, use_bn=True, bn_momentum=0.99, optimizer="adam",
        notes="BatchNorm decay factor 0.99 (Table 2 config 4)",
    )


def build_densenet_model(seed: int, bn_momentum: float = 0.9, num_classes: int = 8) -> nn.Module:
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2D(3, 8, 3, rng, use_bias=False),
        nn.DenseBlock(8, 4, 3, rng, bn_momentum=bn_momentum),     # -> 20 channels
        nn.TransitionLayer(20, 10, rng, bn_momentum=bn_momentum),  # -> 10 ch, 8x8
        nn.DenseBlock(10, 4, 2, rng, bn_momentum=bn_momentum),    # -> 18 channels
        nn.BatchNorm(18, momentum=bn_momentum),
        nn.ReLU(),
        nn.GlobalAvgPool2D(),
        nn.Dense(18, num_classes, rng),
    )


def densenet(size: str = "small", seed: int = 0) -> WorkloadSpec:
    train, test = _image_data(size, seed)
    return WorkloadSpec(
        name="densenet",
        model_fn=build_densenet_model,
        loss_fn=SoftmaxCrossEntropy,
        optimizer_fn=lambda params: Adam(params, lr=3e-3),
        train_data=train,
        test_data=test,
        metric=accuracy,
        batch_size=32,
        iterations=_iterations(size),
        notes="Dense connectivity + BatchNorm; Adam",
    )


def build_efficientnet_model(seed: int, bn_momentum: float = 0.9, num_classes: int = 8) -> nn.Module:
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2D(3, 8, 3, rng, stride=2, use_bias=False),
        nn.BatchNorm(8, momentum=bn_momentum),
        nn.SiLU(),
        nn.MBConvBlock(8, 8, rng, bn_momentum=bn_momentum),
        nn.MBConvBlock(8, 16, rng, stride=2, bn_momentum=bn_momentum),
        nn.GlobalAvgPool2D(),
        nn.Dense(16, num_classes, rng),
    )


def efficientnet(size: str = "small", seed: int = 0) -> WorkloadSpec:
    train, test = _image_data(size, seed)
    return WorkloadSpec(
        name="efficientnet",
        model_fn=build_efficientnet_model,
        loss_fn=SoftmaxCrossEntropy,
        optimizer_fn=lambda params: Adam(params, lr=3e-3),
        train_data=train,
        test_data=test,
        metric=accuracy,
        batch_size=32,
        iterations=_iterations(size),
        notes="MBConv blocks with squeeze-excite; Adam",
    )


def build_nfnet_model(seed: int, num_classes: int = 8) -> nn.Module:
    """Normalizer-free network: variance control via ScaledReLU + scaled
    residuals instead of BatchNorm (no moving statistics anywhere)."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2D(3, 8, 3, rng),
        nn.ScaledReLU(),
        nn.NFBlock(8, rng),
        nn.Conv2D(8, 16, 3, rng, stride=2),
        nn.ScaledReLU(),
        nn.NFBlock(16, rng),
        nn.GlobalAvgPool2D(),
        nn.Dense(16, num_classes, rng),
    )


def build_googlenet_model(seed: int, bn_momentum: float = 0.9, num_classes: int = 8) -> nn.Module:
    """Miniature GoogLeNet: stem + two inception blocks with a transition.

    GoogleNet is one of the five models the paper's Sec. 3.2.3 validation
    covers; its branch-and-merge dataflow gives faults parallel paths.
    """
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2D(3, 8, 3, rng, use_bias=False),
        nn.BatchNorm(8, momentum=bn_momentum),
        nn.ReLU(),
        nn.InceptionBlock(8, 4, rng, bn_momentum=bn_momentum),   # -> 16 ch
        nn.MaxPool2D(2),
        nn.InceptionBlock(16, 4, rng, bn_momentum=bn_momentum),  # -> 16 ch
        nn.GlobalAvgPool2D(),
        nn.Dense(16, num_classes, rng),
    )


def googlenet(size: str = "small", seed: int = 0) -> WorkloadSpec:
    train, test = _image_data(size, seed)
    return WorkloadSpec(
        name="googlenet",
        model_fn=build_googlenet_model,
        loss_fn=SoftmaxCrossEntropy,
        optimizer_fn=lambda params: Adam(params, lr=3e-3),
        train_data=train,
        test_data=test,
        metric=accuracy,
        batch_size=32,
        iterations=_iterations(size),
        notes="Inception blocks (Sec. 3.2.3 validation model set); Adam",
    )


def nfnet(size: str = "small", seed: int = 0) -> WorkloadSpec:
    train, test = _image_data(size, seed)
    return WorkloadSpec(
        name="nfnet",
        model_fn=build_nfnet_model,
        loss_fn=SoftmaxCrossEntropy,
        optimizer_fn=lambda params: Adam(params, lr=3e-3),
        train_data=train,
        test_data=test,
        metric=accuracy,
        batch_size=32,
        iterations=_iterations(size),
        has_batchnorm=False,
        notes="Normalizer-free residual blocks; Adam",
    )
