"""Workload specification: everything a trainer needs to run one row of
the paper's Table 2 (model, data, loss, optimizer, metric, schedule)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.synthetic import Dataset
from repro.nn.losses import Loss
from repro.nn.module import Module, Parameter
from repro.optim.base import Optimizer


@dataclass
class WorkloadSpec:
    """A fully specified training workload.

    The factories take explicit seeds/params so replicas on different
    simulated devices can be constructed identically, and so campaigns can
    rebuild a fresh copy of the workload for every injection experiment.
    """

    name: str
    #: Build the model from a seed (replicas use the same seed).
    model_fn: Callable[[int], Module]
    #: Build a fresh loss object (losses carry per-batch caches).
    loss_fn: Callable[[], Loss]
    #: Build the optimizer over a parameter list.
    optimizer_fn: Callable[[list[Parameter]], Optimizer]
    train_data: Dataset
    test_data: Dataset
    #: metric(model_output, targets) -> scalar in [0, 1].
    metric: Callable[[np.ndarray, np.ndarray], float]
    batch_size: int = 32
    #: Fault-free iteration budget (Table 2's "Num. iterations").
    iterations: int = 300
    #: BatchNorm decay factor used by this workload (0.9 except LargeDecay).
    bn_momentum: float = 0.9
    #: Whether the model contains normalization layers with moving stats.
    has_batchnorm: bool = True
    #: Free-form notes (mirrors Table 2 annotations).
    notes: str = ""
    #: Extra constructor keywords recorded for reporting.
    extra: dict = field(default_factory=dict)

    def build_model(self, seed: int = 0) -> Module:
        return self.model_fn(seed)

    def build_optimizer(self, params: list[Parameter]) -> Optimizer:
        return self.optimizer_fn(params)

    def describe(self) -> dict:
        """Table 2-style row for reports."""
        return {
            "name": self.name,
            "batch_size": self.batch_size,
            "iterations": self.iterations,
            "bn_momentum": self.bn_momentum,
            "has_batchnorm": self.has_batchnorm,
            "train_samples": len(self.train_data),
            "test_samples": len(self.test_data),
            "notes": self.notes,
        }
