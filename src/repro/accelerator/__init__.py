"""Accelerator model: configuration, dataflow, FF inventory, micro-RTL."""

from repro.accelerator.buffers import BufferModel, LayerFootprint, conv_footprint
from repro.accelerator.config import (
    CONFIG_PRESETS,
    CPU_SIMD_CONFIG,
    DEFAULT_CONFIG,
    GPU_LIKE_CONFIG,
    AcceleratorConfig,
)
from repro.accelerator.dataflow import (
    DataflowMap,
    canonical_view_shape,
    from_canonical,
    to_canonical,
)
from repro.accelerator.ffs import (
    DATAPATH_FRACTION,
    GLOBAL_GROUP_FRACTIONS,
    LOCAL_CONTROL_FRACTION,
    FFDescriptor,
    FFInventory,
)
from repro.accelerator.rtl import FF_NAMES, MACArraySimulator, RTLFault

__all__ = [
    "BufferModel",
    "CONFIG_PRESETS",
    "CPU_SIMD_CONFIG",
    "DATAPATH_FRACTION",
    "DEFAULT_CONFIG",
    "FF_NAMES",
    "GLOBAL_GROUP_FRACTIONS",
    "LOCAL_CONTROL_FRACTION",
    "AcceleratorConfig",
    "DataflowMap",
    "FFDescriptor",
    "FFInventory",
    "GPU_LIKE_CONFIG",
    "LayerFootprint",
    "MACArraySimulator",
    "RTLFault",
    "canonical_view_shape",
    "conv_footprint",
    "from_canonical",
    "to_canonical",
]
