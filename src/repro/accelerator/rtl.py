"""Cycle-accurate micro-RTL simulator of the MAC datapath.

The paper validates its software fault models against RTL fault injection
(Sec. 3.2.3: 40K RTL experiments; every non-masked RTL fault's faulty
output elements matched the software model's prediction).  NVDLA's RTL is
not available offline, so this module implements a miniature but
bit-accurate register-transfer-level model of the MAC array with explicit
flip-flop state, sufficient to replay that validation:

* 16 MAC lanes, each with an FP32 accumulator register;
* a shared operand register file holding up to 64 bfloat16 activations;
* an output-valid flag, an output-address register, an input-valid flag,
  and a precision-configuration register.

It executes a matmul ``y = x @ w`` on the same schedule as
:class:`repro.accelerator.dataflow.DataflowMap` (lane tile over output
features, width over rows), one *micro-cycle* per 64-channel accumulation
chunk, with an architectural cycle completing when a lane tile's
accumulation finishes and is written out.

Faults are single bit flips / stuck values on named FFs at chosen
micro-cycles; the simulator returns the faulty output for comparison
against the golden run and the software fault model's prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.config import DEFAULT_CONFIG, AcceleratorConfig
from repro.tensor.bits import flip_float32_bit
from repro.tensor.dtypes import to_bfloat16, to_int16_saturating

#: FF names injectable in the micro-RTL model.
FF_NAMES = ("acc", "a_reg", "out_valid", "out_addr", "in_valid", "cfg_precision")


@dataclass
class RTLFault:
    """A fault on one named FF of the micro-RTL model.

    ``cycle`` is a micro-cycle index; ``duration`` extends stuck-at
    effects (valid flags, config) over several micro-cycles, mirroring
    Table 1's ``n``-cycle effects from feedback loops.
    """

    ff: str
    cycle: int
    index: int = 0  # lane (acc) or operand slot (a_reg)
    bit: int = 0
    duration: int = 1

    def __post_init__(self):
        if self.ff not in FF_NAMES:
            raise ValueError(f"unknown FF {self.ff!r}; expected one of {FF_NAMES}")
        if self.duration < 1:
            raise ValueError("duration must be >= 1")

    def active(self, cycle: int) -> bool:
        """True if this fault is asserted during ``cycle``."""
        return self.cycle <= cycle < self.cycle + self.duration


class MACArraySimulator:
    """Micro-RTL MAC array executing ``y = x @ w`` (x: MxK, w: KxF)."""

    def __init__(self, config: AcceleratorConfig = DEFAULT_CONFIG):
        self.config = config
        self.lanes = config.mac_lanes
        self.k_chunk = config.input_channels_per_cycle

    # ------------------------------------------------------------------
    # Schedule geometry
    # ------------------------------------------------------------------
    def schedule(self, m: int, k: int, f: int) -> list[tuple[int, int, int, bool]]:
        """Micro-cycle list: (f_tile, row, k_chunk_index, is_last_chunk).

        Architectural-cycle order matches DataflowMap for a 2D output
        (tile-major, then rows); each architectural cycle expands into
        ``ceil(K / k_chunk)`` micro-cycles, the last of which writes out.
        """
        chunks = (k + self.k_chunk - 1) // self.k_chunk
        tiles = (f + self.lanes - 1) // self.lanes
        out = []
        for tile in range(tiles):
            for row in range(m):
                for kc in range(chunks):
                    out.append((tile, row, kc, kc == chunks - 1))
        return out

    def num_micro_cycles(self, m: int, k: int, f: int) -> int:
        """Total micro-cycles to execute an (m, k) x (k, f) matmul."""
        chunks = (k + self.k_chunk - 1) // self.k_chunk
        tiles = (f + self.lanes - 1) // self.lanes
        return tiles * m * chunks

    def micro_to_arch_cycle(self, micro: int, m: int, k: int, f: int) -> int:
        """Map a micro-cycle to its architectural (DataflowMap) cycle."""
        chunks = (k + self.k_chunk - 1) // self.k_chunk
        return micro // chunks

    def write_micro_cycle(self, arch_cycle: int, k: int) -> int:
        """The micro-cycle at which an architectural cycle writes out."""
        chunks = (k + self.k_chunk - 1) // self.k_chunk
        return arch_cycle * chunks + chunks - 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, x: np.ndarray, w: np.ndarray, fault: RTLFault | None = None) -> np.ndarray:
        """Execute the matmul cycle by cycle, applying ``fault`` if given.

        Returns the output buffer (M, F); untouched locations stay 0 (the
        buffer's initial state), which is how valid/address faults leave
        holes.
        """
        x = np.asarray(x, dtype=np.float32)
        w = np.asarray(w, dtype=np.float32)
        m, k = x.shape
        k2, f = w.shape
        if k != k2:
            raise ValueError(f"shape mismatch: x {x.shape} @ w {w.shape}")
        out = np.zeros((m, f), dtype=np.float32)
        acc = np.zeros(self.lanes, dtype=np.float32)
        stale_a_regs = np.zeros(self.k_chunk, dtype=np.float32)
        precision_int16 = False
        with np.errstate(over="ignore", invalid="ignore"):
            for micro, (tile, row, kc, is_last) in enumerate(self.schedule(m, k, f)):
                if kc == 0:
                    acc = np.zeros(self.lanes, dtype=np.float32)
                lo, hi = kc * self.k_chunk, min((kc + 1) * self.k_chunk, k)
                width = hi - lo
                # --- input fetch stage ---------------------------------
                a_regs = np.zeros(self.k_chunk, dtype=np.float32)
                a_regs[:width] = to_bfloat16(x[row, lo:hi])
                if fault is not None and fault.active(micro):
                    if fault.ff == "in_valid":
                        if fault.bit == 0:
                            # valid -> invalid: stale operands are reused.
                            a_regs = stale_a_regs.copy()
                        else:
                            # invalid -> valid: garbage (zeros) is consumed.
                            a_regs = np.zeros(self.k_chunk, dtype=np.float32)
                    elif fault.ff == "a_reg" and fault.index < self.k_chunk:
                        a_regs[fault.index] = flip_float32_bit(
                            a_regs[fault.index], 16 + fault.bit
                        )
                    elif fault.ff == "cfg_precision":
                        precision_int16 = True
                stale_a_regs = a_regs.copy()
                # --- MAC stage ------------------------------------------
                lane_lo = tile * self.lanes
                lane_hi = min(lane_lo + self.lanes, f)
                w_tile = np.zeros((self.k_chunk, self.lanes), dtype=np.float32)
                w_tile[:width, : lane_hi - lane_lo] = to_bfloat16(
                    w[lo:hi, lane_lo:lane_hi]
                )
                operands = a_regs
                if precision_int16:
                    operands = to_int16_saturating(a_regs * 256.0)
                partial = operands @ w_tile
                acc = (acc + partial).astype(np.float32)
                if fault is not None and fault.active(micro) and fault.ff == "acc":
                    lane = fault.index % self.lanes
                    acc[lane] = flip_float32_bit(acc[lane], fault.bit)
                # --- write stage ----------------------------------------
                write = is_last
                address = row  # output row address for this tile
                if fault is not None and fault.active(micro):
                    if fault.ff == "out_valid":
                        # bit 0: valid->invalid — the write is suppressed;
                        # bit 1: invalid->valid — a spurious write occurs
                        # even mid-accumulation (partial sums escape).
                        write = bool(fault.bit)
                    if fault.ff == "out_addr":
                        address = row ^ (1 << fault.bit)
                if write and 0 <= address < m:
                    out[address, lane_lo:lane_hi] = acc[: lane_hi - lane_lo]
        return out

    # ------------------------------------------------------------------
    # Analysis helper
    # ------------------------------------------------------------------
    @staticmethod
    def diff_positions(golden: np.ndarray, faulty: np.ndarray) -> np.ndarray:
        """Flat indices where the faulty output differs from the golden.

        NaN == NaN counts as equal (both runs non-finite the same way).
        """
        g = golden.reshape(-1)
        h = faulty.reshape(-1)
        equal = (g == h) | (np.isnan(g) & np.isnan(h))
        return np.nonzero(~equal)[0]
