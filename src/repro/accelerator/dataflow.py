"""Dataflow mapping: tensor elements <-> accelerator cycles.

Table 1's software fault models are defined in terms of *which output
elements are computed in which cycles*:

* "Layer_Outputs computed in one cycle: they belong to 16 consecutive
  channels, computed by 16 MAC units in parallel."
* "Layer_Outputs computed in n consecutive cycles: output elements across
  n cycles grow in the width dimension."

This module canonicalizes any tensor produced during training (4D conv
activations, 2D dense outputs, 3D sequence activations, 4D conv weight
gradients, ...) into a (batch, channel, height, width) view and provides
the cycle <-> element-coordinate mapping under that view.  The fault
models (:mod:`repro.core.faults.software_models`) consume this geometry;
the micro-RTL simulator (:mod:`repro.accelerator.rtl`) realizes the same
schedule at bit level for validation.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import DEFAULT_CONFIG, AcceleratorConfig


def canonical_view_shape(shape: tuple[int, ...]) -> tuple[int, int, int, int]:
    """Map an arbitrary tensor shape to a (B, C, H, W) accelerator view.

    * 4D ``(N, C, H, W)`` — used as is (conv activations and gradients;
      conv weights ``(Cout, Cin, kh, kw)`` read Cout as batch... no:
      weights are canonicalized by the caller via :func:`weight_view`).
    * 3D ``(N, T, D)`` — channels are the model dimension ``D``, width is
      the sequence: ``(N, D, 1, T)``.
    * 2D ``(N, F)`` — channels are features, width is the batch row:
      ``(1, F, 1, N)``.
    * 1D ``(F,)`` — ``(1, F, 1, 1)``.
    """
    if len(shape) == 4:
        return shape  # type: ignore[return-value]
    if len(shape) == 3:
        n, t, d = shape
        return (n, d, 1, t)
    if len(shape) == 2:
        n, f = shape
        return (1, f, 1, n)
    if len(shape) == 1:
        return (1, shape[0], 1, 1)
    raise ValueError(f"cannot canonicalize shape {shape}")


def to_canonical(tensor: np.ndarray) -> np.ndarray:
    """Return a (B, C, H, W) view/copy of ``tensor`` per the rules above."""
    if tensor.ndim == 4:
        return tensor
    if tensor.ndim == 3:
        return np.ascontiguousarray(tensor.transpose(0, 2, 1))[:, :, None, :]
    if tensor.ndim == 2:
        return np.ascontiguousarray(tensor.T)[None, :, None, :]
    if tensor.ndim == 1:
        return tensor[None, :, None, None]
    raise ValueError(f"cannot canonicalize {tensor.ndim}D tensor")


def from_canonical(canonical: np.ndarray, original_shape: tuple[int, ...]) -> np.ndarray:
    """Invert :func:`to_canonical` back to the original layout."""
    if len(original_shape) == 4:
        return canonical.reshape(original_shape)
    if len(original_shape) == 3:
        return np.ascontiguousarray(canonical[:, :, 0, :].transpose(0, 2, 1)).reshape(
            original_shape
        )
    if len(original_shape) == 2:
        return np.ascontiguousarray(canonical[0, :, 0, :].T).reshape(original_shape)
    if len(original_shape) == 1:
        return canonical.reshape(original_shape)
    raise ValueError(f"cannot restore shape {original_shape}")


class DataflowMap:
    """Cycle schedule for producing one tensor on the accelerator.

    Schedule (matching Table 1's definitions): the outermost loop is the
    batch sample, then the output-channel group (``mac_lanes`` channels
    at a time), then rows, then columns — so *consecutive cycles advance
    the width dimension*, and each cycle produces up to ``mac_lanes``
    elements in consecutive channels at one spatial position.
    """

    def __init__(self, shape: tuple[int, ...], config: AcceleratorConfig = DEFAULT_CONFIG):
        self.original_shape = tuple(int(s) for s in shape)
        self.view_shape = canonical_view_shape(self.original_shape)
        self.config = config
        b, c, h, w = self.view_shape
        self.channel_groups = (c + config.mac_lanes - 1) // config.mac_lanes
        self.cycles_per_sample = self.channel_groups * h * w
        self.num_cycles = b * self.cycles_per_sample

    def decode_cycle(self, cycle: int) -> tuple[int, int, int, int]:
        """Cycle index -> (batch, channel_group, row, col)."""
        if not 0 <= cycle < self.num_cycles:
            raise ValueError(f"cycle {cycle} out of range [0, {self.num_cycles})")
        b, c, h, w = self.view_shape
        sample, rest = divmod(cycle, self.cycles_per_sample)
        group, rest = divmod(rest, h * w)
        row, col = divmod(rest, w)
        return sample, group, row, col

    def elements_at_cycle(self, cycle: int) -> tuple[np.ndarray, ...]:
        """Canonical-view coordinates of elements produced in one cycle.

        Returns index arrays (b_idx, c_idx, h_idx, w_idx) selecting up to
        ``mac_lanes`` consecutive channels at a single (b, h, w).
        """
        b, c, h, w = self.view_shape
        sample, group, row, col = self.decode_cycle(cycle)
        lanes = self.config.mac_lanes
        channels = np.arange(group * lanes, min((group + 1) * lanes, c))
        n = channels.size
        return (
            np.full(n, sample),
            channels,
            np.full(n, row),
            np.full(n, col),
        )

    def elements_for_cycles(self, start_cycle: int, n_cycles: int) -> tuple[np.ndarray, ...]:
        """Coordinates of all elements produced in ``n_cycles`` consecutive
        cycles starting at ``start_cycle`` (clipped to the schedule end)."""
        end = min(start_cycle + max(int(n_cycles), 1), self.num_cycles)
        parts = [self.elements_at_cycle(cyc) for cyc in range(start_cycle, end)]
        return tuple(np.concatenate([p[i] for p in parts]) for i in range(4))

    def lane_element_for_cycles(
        self, start_cycle: int, n_cycles: int, lane: int
    ) -> tuple[np.ndarray, ...]:
        """Coordinates of the single-lane elements across consecutive
        cycles (Table 1 group 3: "the bit-flips affect only one MAC unit")."""
        b, c, h, w = self.view_shape
        end = min(start_cycle + max(int(n_cycles), 1), self.num_cycles)
        coords = [[], [], [], []]
        for cyc in range(start_cycle, end):
            sample, group, row, col = self.decode_cycle(cyc)
            channel = group * self.config.mac_lanes + lane
            if channel >= c:
                continue
            coords[0].append(sample)
            coords[1].append(channel)
            coords[2].append(row)
            coords[3].append(col)
        return tuple(np.asarray(part, dtype=np.int64) for part in coords)

    def random_cycle(self, rng: np.random.Generator) -> int:
        """Sample a uniformly random cycle of this schedule."""
        return int(rng.integers(0, self.num_cycles))

    def flat_indices(self, coords: tuple[np.ndarray, ...]) -> np.ndarray:
        """Canonical-view coordinates -> flat indices in canonical layout."""
        return np.ravel_multi_index(coords, self.view_shape)
