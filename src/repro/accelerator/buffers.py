"""On-chip buffer model.

NVDLA's 512 KB of on-chip buffers hold layer inputs, weights, partial
sums and outputs (Sec. 3.1).  The buffer model answers two questions the
fault framework depends on:

* **Tiling** — does a layer's working set fit on chip, and if not, how
  many DRAM round-trips does it take?  Input faults behave differently
  for DRAM reads ("n consecutive cycles") vs buffer reads ("one cycle")
  in Table 1's groups 5-10, so the residency decision feeds the fault
  models' duration choice.
* **Feedback-loop length** — an accumulator/address FF's fault can
  persist at most as long as the tile it is working on stays resident,
  which bounds Table 1's ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import DEFAULT_CONFIG, AcceleratorConfig

#: Bytes per element for each datapath precision.
_ELEMENT_BYTES = {"fp32": 4, "bf16": 2, "fp16": 2, "int16": 2}


@dataclass(frozen=True)
class LayerFootprint:
    """Byte footprint of one layer's working set on the accelerator."""

    input_bytes: int
    weight_bytes: int
    output_bytes: int
    partial_sum_bytes: int

    @property
    def total_bytes(self) -> int:
        """Total working-set bytes across all four buffer roles."""
        return (self.input_bytes + self.weight_bytes + self.output_bytes
                + self.partial_sum_bytes)


def conv_footprint(
    in_channels: int,
    out_channels: int,
    kernel: int,
    height: int,
    width: int,
    batch: int = 1,
    config: AcceleratorConfig = DEFAULT_CONFIG,
) -> LayerFootprint:
    """Working-set footprint of a stride-1 'same' convolution tile."""
    mac_bytes = _ELEMENT_BYTES[config.mac_precision]
    acc_bytes = _ELEMENT_BYTES[config.elementwise_precision]
    return LayerFootprint(
        input_bytes=batch * in_channels * height * width * mac_bytes,
        weight_bytes=out_channels * in_channels * kernel * kernel * mac_bytes,
        output_bytes=batch * out_channels * height * width * acc_bytes,
        partial_sum_bytes=config.mac_lanes * acc_bytes,
    )


class BufferModel:
    """Residency and tiling decisions for the on-chip buffer."""

    def __init__(self, config: AcceleratorConfig = DEFAULT_CONFIG):
        self.config = config
        self.capacity_bytes = config.buffer_kb * 1024

    def fits(self, footprint: LayerFootprint) -> bool:
        """True if the whole working set is buffer-resident."""
        return footprint.total_bytes <= self.capacity_bytes

    def dram_round_trips(self, footprint: LayerFootprint) -> int:
        """Number of DRAM refills needed to stream the working set.

        1 means a single load (then buffer-resident); k > 1 means the
        inputs are re-streamed k times — each stream an opportunity for
        the multi-cycle DRAM-read faults of Table 1 groups 5-10.
        """
        total = footprint.total_bytes
        if total <= self.capacity_bytes:
            return 1
        return -(-total // self.capacity_bytes)  # ceil division

    def input_read_cycles(self, footprint: LayerFootprint) -> str:
        """Which Table 1 duration regime input-read faults fall into."""
        return "buffer" if self.fits(footprint) else "dram"

    def max_feedback_cycles(self, footprint: LayerFootprint) -> int:
        """Upper bound on Table 1's ``n`` for FFs tied to this tile.

        A fault inside a feedback loop persists while the tile is being
        accumulated; the residency time (in cycles) is the tile's output
        count divided by the MAC lane width, clamped to the configured
        architectural bound.
        """
        acc_bytes = _ELEMENT_BYTES[self.config.elementwise_precision]
        outputs = max(footprint.output_bytes // acc_bytes, 1)
        cycles = max(outputs // self.config.mac_lanes, 1)
        return min(cycles, self.config.max_feedback_loop)
