"""Flip-flop inventory of the modeled accelerator.

The hardware fault model samples a random FF uniformly from the design
(Sec. 3.3 step 1).  This module encodes the FF *population structure* the
paper reports so that uniform-FF sampling reproduces the paper's category
mix:

* Table 1 gives the fraction of all FFs behind each global-control fault
  group (0.09% - 2.36% each, ~6.2% combined);
* Sec. 4.3.1 says global groups 1 and 3 plus local control FFs together
  are 9.8% of all FFs — fixing the local-control population at ~9.1%;
* Sec. 4.3.1 also says the upper two exponent bits are 5.5% of all FFs;
  with 2 of 32 bits of each FP32 datapath register being upper-exponent
  bits, this is consistent with the remaining ~84.7% of FFs being
  datapath registers (2/32 * 84.7% = 5.3% ~ 5.5%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Fractions of ALL FFs per global-control fault-model group (Table 1).
GLOBAL_GROUP_FRACTIONS: dict[int, float] = {
    1: 0.0024,   # config / output-valid turns invalid->valid
    2: 0.0025,   # output-valid turns valid->invalid (outputs zeroed)
    3: 0.0048,   # same as group 1 but one MAC unit
    4: 0.0236,   # output address FFs
    5: 0.0131,   # input-1 address FFs
    6: 0.0096,   # input-2 address FFs
    7: 0.0009,   # input-1 valid invalid->valid (inputs zeroed)
    8: 0.0022,   # input-2 valid invalid->valid
    9: 0.0016,   # input-1 valid valid->invalid (stale/random input reuse)
    10: 0.0012,  # input-2 valid valid->invalid
}

#: Local control FFs (control exactly one datapath register): chosen so
#: local + groups 1 and 3 = 9.8% of all FFs (Sec. 4.3.1).
LOCAL_CONTROL_FRACTION = 0.098 - GLOBAL_GROUP_FRACTIONS[1] - GLOBAL_GROUP_FRACTIONS[3]

#: Datapath registers hold everything else.
DATAPATH_FRACTION = 1.0 - sum(GLOBAL_GROUP_FRACTIONS.values()) - LOCAL_CONTROL_FRACTION

#: Bits per datapath register (FP32 accumulators dominate the datapath).
DATAPATH_REGISTER_BITS = 32


@dataclass(frozen=True)
class FFDescriptor:
    """One sampled flip-flop: where a bit flip lands.

    ``category`` is ``"datapath"``, ``"local_control"``, or
    ``"global_control"``.  For global control FFs, ``group`` is the
    Table 1 fault-model group (1-10).  For datapath FFs, ``bit`` is the
    flipped bit position within the FP32 register and ``has_feedback``
    marks FFs inside accumulation loops (their faults can persist for
    ``n > 1`` cycles).
    """

    category: str
    group: int | None = None
    bit: int | None = None
    has_feedback: bool = False

    def is_upper_exponent(self, count: int = 2) -> bool:
        """True for the Sec. 4.3.1 "upper two exponent bits" class."""
        if self.category != "datapath" or self.bit is None:
            return False
        return self.bit in range(31 - count, 31)


class FFInventory:
    """Samples FFs with the population weights of the modeled design."""

    def __init__(self, feedback_fraction: float = 0.3):
        """``feedback_fraction``: fraction of datapath/control FFs inside
        feedback loops (accumulators, address counters)."""
        if not 0.0 <= feedback_fraction <= 1.0:
            raise ValueError(f"feedback_fraction out of [0,1]: {feedback_fraction}")
        self.feedback_fraction = float(feedback_fraction)
        self._categories = (
            [("datapath", None)]
            + [("local_control", None)]
            + [("global_control", g) for g in GLOBAL_GROUP_FRACTIONS]
        )
        self._weights = np.array(
            [DATAPATH_FRACTION, LOCAL_CONTROL_FRACTION]
            + [GLOBAL_GROUP_FRACTIONS[g] for g in GLOBAL_GROUP_FRACTIONS],
            dtype=np.float64,
        )
        self._weights /= self._weights.sum()

    def sample(self, rng: np.random.Generator) -> FFDescriptor:
        """Draw one FF uniformly over the design's FF population."""
        idx = int(rng.choice(len(self._categories), p=self._weights))
        category, group = self._categories[idx]
        has_feedback = bool(rng.random() < self.feedback_fraction)
        if category == "datapath":
            bit = int(rng.integers(0, DATAPATH_REGISTER_BITS))
            return FFDescriptor("datapath", bit=bit, has_feedback=has_feedback)
        if category == "local_control":
            return FFDescriptor("local_control", has_feedback=has_feedback)
        return FFDescriptor("global_control", group=group, has_feedback=has_feedback)

    def category_fractions(self) -> dict[str, float]:
        """Aggregate population fractions (for reporting/tests)."""
        return {
            "datapath": DATAPATH_FRACTION,
            "local_control": LOCAL_CONTROL_FRACTION,
            "global_control": sum(GLOBAL_GROUP_FRACTIONS.values()),
        }
