"""NVDLA-like accelerator configuration.

Captures the architectural parameters of the accelerator the paper adopts
(Sec. 3.1): 16 parallel MAC lanes produce 16 consecutive output channels
per cycle; input reads fetch 64 consecutive input channels per cycle;
512 KB of on-chip buffers hold inputs, weights, partial sums and outputs;
MACs run in bfloat16 and element-wise units in FP32.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tensor.dtypes import Precision


@dataclass(frozen=True)
class AcceleratorConfig:
    """Architectural parameters used by the dataflow and fault models."""

    #: MAC lanes: output channels computed in parallel each cycle.
    mac_lanes: int = 16
    #: Input channels fetched per read cycle.
    input_channels_per_cycle: int = 64
    #: On-chip buffer capacity (KB); bounds feedback-loop lengths.
    buffer_kb: int = 512
    #: MAC operand precision (Sec. 3.1: bfloat16 for training MACs).
    mac_precision: str = Precision.BF16
    #: Element-wise / accumulator precision.
    elementwise_precision: str = Precision.FP32
    #: Maximum loop iterations for FFs with feedback loops (Table 1's
    #: ``n`` is drawn between 1 and this bound when a loop exists).
    max_feedback_loop: int = 16

    def __post_init__(self):
        if self.mac_lanes <= 0 or self.input_channels_per_cycle <= 0:
            raise ValueError("lane/channel counts must be positive")
        if self.max_feedback_loop < 1:
            raise ValueError("max_feedback_loop must be >= 1")


#: The default configuration used throughout the study.
DEFAULT_CONFIG = AcceleratorConfig()

#: Alternative device geometries (the paper's future work extends the
#: study "to a broader set of ... DL training systems such as GPUs and
#: CPUs").  The fault models consume only the dataflow geometry, so the
#: whole framework retargets by swapping the configuration.
GPU_LIKE_CONFIG = AcceleratorConfig(
    mac_lanes=32,                 # warp-width parallel outputs
    input_channels_per_cycle=32,  # narrower operand fetch
    buffer_kb=192,                # register-file/SMEM scale
    max_feedback_loop=8,
)
CPU_SIMD_CONFIG = AcceleratorConfig(
    mac_lanes=8,                  # AVX-wide SIMD outputs
    input_channels_per_cycle=8,
    buffer_kb=64,                 # L1-resident tiles
    max_feedback_loop=4,
)

#: Named presets for discovery.
CONFIG_PRESETS = {
    "nvdla": DEFAULT_CONFIG,
    "gpu_like": GPU_LIKE_CONFIG,
    "cpu_simd": CPU_SIMD_CONFIG,
}
