"""True multi-process data-parallel backend over shared-memory arenas.

One OS process per replica, the topology of the paper's 8-device runs
(Sec. 3.3).  Each replica's :class:`~repro.state.StateArena` ``param``/
``grad`` segments are remapped into a ``multiprocessing.shared_memory``
segment *before* the replica processes fork, so parent and children
address the same physical training state: children write gradients in
place, the parent reduces them with the order-pinned collectives and
broadcasts weights with plain buffer copies — no tensor ever crosses a
pipe.  The pipes carry only the control plane: per-iteration step
commands (with serialized :class:`~repro.backend.base.DeviceFaultPlan`
orders and chaos directives) and small replies (loss/acc, BatchNorm
moving statistics, fault execution results).

BatchNorm moving statistics deliberately live *outside* the arena (they
are per-device by design — the LowTestAccuracy mechanism), so each step
reply mirrors them back and the parent loads them into its own replica
modules.  That keeps every parent-side consumer — ``mvar_magnitude``,
``evaluate``, checkpoint capture, state digests — working unchanged,
and bit-identical to the in-process backend.

Robustness the simulator cannot express (and the reason this backend
exists beyond speed):

* **straggler detection** — a replica that exceeds the collective
  timeout is flagged (``straggler_detected`` trace event + telemetry
  list) while the collective keeps waiting, up to a hard deadline
  (:class:`~repro.backend.base.CollectiveTimeoutError`);
* **replica-crash detection** — a replica that dies mid-collective
  aborts the trainer cleanly (``replica_lost`` trace event, shared
  segments unlinked, :class:`~repro.backend.base.ReplicaLostError`
  surfaced as the ``ReplicaLost`` outcome);
* **chaos injection** — :class:`~repro.backend.base.ReplicaChaos`
  directives delay or hard-kill a chosen replica at a chosen iteration,
  exercising both paths deterministically in tests.

When given a trace path, every replica process streams its own shard
(``trace-replica<d>.jsonl``) through the PR 4 flight-recorder machinery;
:meth:`close` merges the shards into ``<trace>.replicas.jsonl``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from multiprocessing import connection as mp_connection
from multiprocessing.shared_memory import SharedMemory
from pathlib import Path

import numpy as np

from repro.backend.base import (
    CollectiveTimeoutError,
    ExecutionBackend,
    ReplicaChaos,
    ReplicaLostError,
    absorb_device_fault_results,
    collect_device_fault_plans,
    device_step,
)
from repro.backend.collectives import all_reduce_mean
from repro.backend.collectives import broadcast as broadcast_buffers
from repro.observe import (
    EXPERIMENT_FINISHED,
    EXPERIMENT_STARTED,
    FAULT_INJECTED,
    REPLICA_LOST,
    REPLICA_STEP,
    STRAGGLER_DETECTED,
    Tracer,
    merge_traces,
    profile_scope,
    replica_shard_path,
    replica_trace_path,
)
from repro.state.arena import GRAD_SEGMENT, PARAM_SEGMENT

#: How long the gather loop sleeps between poll rounds (seconds).
_POLL_INTERVAL = 0.02

#: How long :meth:`MultiProcessBackend.close` waits for a replica to
#: exit voluntarily before terminating it (seconds).
_STOP_GRACE = 5.0


# ----------------------------------------------------------------------
# Replica (child) side
# ----------------------------------------------------------------------
def _execute_chaos(chaos: list[ReplicaChaos]) -> None:
    """Apply chaos directives addressed to this replica/iteration."""
    for directive in chaos:
        if directive.kind == "kill":
            # A hard crash: no reply, no cleanup, no exit handlers —
            # exactly what the parent's loss detection must survive.
            os._exit(1)
        time.sleep(directive.seconds)


def _execute_plans(trainer, device: int, plans: list):
    """Arm the shipped fault plans on this replica; returns the armed
    ``(plan_id, injector)`` pairs for post-step result collection."""
    if not plans:
        return []
    # Imported lazily: repro.core.faults pulls in the campaign module,
    # which imports the trainer, which imports this package.
    from repro.core.faults.injector import FaultInjector

    armed = []
    for plan in plans:
        if plan.config is not None:
            injector = FaultInjector(plan.fault, plan.config)
        else:
            injector = FaultInjector(plan.fault)
        injector.arm(trainer, trainer.replicas[device])
        armed.append((plan.plan_id, injector))
    return armed


def _child_step(trainer, device: int, iteration: int, plans: list,
                chaos: list, tracer: Tracer | None) -> dict:
    """One replica's share of a synchronous iteration, child side."""
    _execute_chaos(chaos)
    armed = _execute_plans(trainer, device, plans)
    loss, acc = device_step(trainer, device, iteration)
    faults = []
    for plan_id, injector in armed:
        injector.disarm()
        faults.append((plan_id, injector.fired, injector.record))
        if tracer is not None and injector.fired and injector.record is not None:
            fault, record = injector.fault, injector.record
            tracer.emit(FAULT_INJECTED, iteration=iteration, device=device,
                        site=fault.site.module_name, kind=fault.site.kind,
                        op="site", ff_category=fault.ff.category,
                        model=record.model, num_faulty=record.num_faulty,
                        max_abs_faulty=record.max_abs_faulty())
    # Mirror per-device extra state (BatchNorm moving statistics) back to
    # the parent: it lives outside the shared arena on purpose.
    extra = None
    stateful = trainer.arenas[device].stateful_modules
    if stateful:
        extra = [(name, module.extra_state()) for name, module in stateful]
    if tracer is not None:
        tracer.emit(REPLICA_STEP, iteration=iteration, device=device,
                    loss=float(loss), acc=float(acc))
    return {"loss": loss, "acc": acc, "extra": extra, "faults": faults}


def _load_extra(trainer, device: int, states: list) -> None:
    """Apply a parent-side extra-state push (post-recovery resync)."""
    by_name = dict(states)
    for name, module in trainer.arenas[device].stateful_modules:
        state = by_name.get(name)
        if state is not None:
            module.load_extra_state(state)


def _replica_main(trainer, device: int, conn, shard: Path | None) -> None:
    """The replica process: serve step/barrier/load_extra commands until
    told to stop (or the parent disappears)."""
    tracer: Tracer | None = None
    if shard is not None:
        tracer = Tracer(meta={"replica": device}, stream=shard)
        tracer.set_context(key=f"replica{device}", worker=device, attempt=0)
        tracer.emit(EXPERIMENT_STARTED, device=device)
    status = "done"
    try:
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break  # parent is gone; nothing left to serve
            op = command[0]
            if op == "stop":
                break
            try:
                if op == "step":
                    _, iteration, plans, chaos = command
                    payload = _child_step(trainer, device, iteration,
                                          plans, chaos, tracer)
                    conn.send(("ok", payload))
                elif op == "load_extra":
                    _load_extra(trainer, device, command[1])
                    conn.send(("ok", None))
                elif op == "barrier":
                    conn.send(("ok", None))
                else:
                    conn.send(("err", f"unknown command {op!r}"))
            except Exception as exc:  # surface, keep serving
                status = "error"
                try:
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
                except (BrokenPipeError, OSError):
                    break
    finally:
        if tracer is not None:
            tracer.emit(EXPERIMENT_FINISHED, device=device, status=status)
            tracer.close()
        # Hard exit: a forked child must not run the parent's inherited
        # exit handlers (stream flushes, shared-memory cleanup).
        os._exit(0)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class MultiProcessBackend(ExecutionBackend):
    """One process per replica over shared-memory fused state."""

    name = "multiprocess"
    #: Device work happens in replica processes: injector hooks export
    #: :class:`DeviceFaultPlan` orders instead of arming parent modules.
    local_device_work = False

    def __init__(self, timeout: float = 30.0, hard_timeout: float | None = None,
                 chaos: tuple[ReplicaChaos, ...] = (),
                 trace_path: str | Path | None = None):
        super().__init__()
        self.timeout = float(timeout)
        self.hard_timeout = (float(hard_timeout) if hard_timeout is not None
                             else self.timeout * 8.0)
        self.chaos = tuple(chaos)
        self.trace_path = Path(trace_path) if trace_path is not None else None
        #: Straggler telemetry: one dict per flagged (device, collective).
        self.straggler_events: list[dict] = []
        #: Merged per-replica trace written by :meth:`close` (if traced).
        self.replica_trace: Path | None = None
        self._started = False
        self._closed = False
        self._segments: list[SharedMemory] = []
        self._conns: list = []
        self._procs: list = []
        self._shards: list[Path] = []
        self._scratch: np.ndarray | None = None

    def bind(self, trainer) -> None:
        super().bind(trainer)
        if trainer.arenas is None:
            raise RuntimeError(
                "the multiprocess backend requires fused state arenas and "
                "this model cannot be laid out as one (tied weights?); "
                "use the inprocess backend")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Map arenas into shared memory and fork the replica processes.

        Called lazily on the first :meth:`step`, so everything set up
        after trainer construction — hooks, checkpoint restores,
        campaign snapshot loads — is inherited by the children.
        """
        if self._started:
            return
        if self._closed:
            raise RuntimeError("multiprocess backend is closed")
        trainer = self.trainer
        ctx = mp.get_context("fork")  # children must inherit the trainer
        for arena in trainer.arenas:
            nbytes = arena.total * 4  # float32
            shm = SharedMemory(create=True, size=2 * nbytes)
            param = np.ndarray(arena.total, dtype=np.float32, buffer=shm.buf)
            grad = np.ndarray(arena.total, dtype=np.float32, buffer=shm.buf,
                              offset=nbytes)
            arena.rebind_segment(PARAM_SEGMENT, param)
            arena.rebind_segment(GRAD_SEGMENT, grad)
            self._segments.append(shm)
        self._scratch = trainer.master_arena.scratch()
        for device in range(trainer.num_devices):
            shard = None
            if self.trace_path is not None:
                shard = replica_shard_path(self.trace_path.parent, device)
                self._shards.append(shard)
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_replica_main,
                               args=(trainer, device, child_conn, shard),
                               daemon=True, name=f"repro-replica{device}")
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._started = True

    def close(self) -> None:
        """Stop the replicas, unmap + unlink shared memory, merge shards.

        The arenas are rebound onto fresh private buffers (carrying the
        final shared contents), so the trainer remains fully usable —
        evaluation, digests, snapshots — after the backend is gone.
        Idempotent; also the abort path after a lost replica.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass  # already dead or never started
        deadline = time.monotonic() + _STOP_GRACE
        for proc in self._procs:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if self._segments:
            for arena in self.trainer.arenas:
                arena.rebind_segment(PARAM_SEGMENT, arena.scratch())
                arena.rebind_segment(GRAD_SEGMENT, arena.scratch())
        for shm in self._segments:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - lingering view
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
        self._conns = []
        self._procs = []
        self._started = False
        if self._shards and self.trace_path is not None:
            existing = [s for s in self._shards if s.exists()]
            if existing:
                self.replica_trace = replica_trace_path(self.trace_path)
                merge_traces(existing, self.replica_trace)

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # The per-iteration contract
    # ------------------------------------------------------------------
    def step(self, iteration: int) -> tuple[float, float]:
        if not self._started:
            self.start()
        trainer = self.trainer
        plans, exporters = collect_device_fault_plans(trainer, iteration)
        with profile_scope("backend.dispatch"):
            for device, conn in enumerate(self._conns):
                chaos = [c for c in self.chaos if c.applies(device, iteration)]
                try:
                    conn.send(("step", iteration,
                               plans.get(device, []), chaos))
                except (BrokenPipeError, OSError):
                    self._replica_lost(device, "dispatch", iteration)
        with profile_scope("backend.gather"):
            replies = self._gather("step", iteration)
        fault_results = []
        for device in range(trainer.num_devices):
            payload = replies[device]
            fault_results.extend(payload["faults"])
            if payload["extra"]:
                _load_extra(trainer, device, payload["extra"])
        absorb_device_fault_results(exporters, fault_results)
        with profile_scope("sync.grad_average"):
            all_reduce_mean([arena.grad for arena in trainer.arenas],
                            out=trainer.master_arena.grad,
                            scratch=self._scratch,
                            fault_hook=self._comm_fault_hook)
        # Same summation order as the in-process device loop: ascending
        # device rank, so the returned averages are bit-identical.
        total_loss = 0.0
        total_acc = 0.0
        for device in range(trainer.num_devices):
            total_loss += replies[device]["loss"]
            total_acc += replies[device]["acc"]
        return (total_loss / trainer.num_devices,
                total_acc / trainer.num_devices)

    def broadcast(self) -> None:
        trainer = self.trainer
        broadcast_buffers(trainer.master_arena.param,
                          [arena.param for arena in trainer.arenas[1:]])

    def barrier(self) -> None:
        """Synchronize with every replica process (round-trip ping),
        with the same straggler/loss handling as any collective."""
        if not self._started:
            return
        for device, conn in enumerate(self._conns):
            try:
                conn.send(("barrier",))
            except (BrokenPipeError, OSError):
                self._replica_lost(device, "barrier", None)
        self._gather("barrier", None)

    # ------------------------------------------------------------------
    # State-restore notification
    # ------------------------------------------------------------------
    def on_state_restored(self) -> None:
        """Push per-device extra state (BatchNorm moving statistics) to
        the replicas after a recovery rewind or checkpoint restore.
        Parameters need no push — they live in shared memory."""
        if not self._started:
            return
        pushed = []
        for device, conn in enumerate(self._conns):
            stateful = self.trainer.arenas[device].stateful_modules
            if not stateful:
                continue
            states = [(name, module.extra_state())
                      for name, module in stateful]
            try:
                conn.send(("load_extra", states))
            except (BrokenPipeError, OSError):
                self._replica_lost(device, "load_extra", None)
            pushed.append(device)
        if pushed:
            self._gather("load_extra", None, devices=pushed)

    # ------------------------------------------------------------------
    # Gather: the robustness core
    # ------------------------------------------------------------------
    def _gather(self, phase: str, iteration: int | None,
                devices: list[int] | None = None) -> dict[int, dict]:
        """Await one reply per device, detecting stragglers and losses.

        A replica past ``timeout`` is flagged once (trace event +
        telemetry) while the collective keeps waiting; past
        ``hard_timeout`` the collective aborts.  A dead replica raises
        :class:`ReplicaLostError` after tearing the backend down.
        """
        if devices is None:
            devices = list(range(len(self._conns)))
        pending = {device: self._conns[device] for device in devices}
        replies: dict[int, dict] = {}
        flagged: set[int] = set()
        start = time.monotonic()
        while pending:
            ready = mp_connection.wait(list(pending.values()),
                                       timeout=_POLL_INTERVAL)
            for conn in ready:
                device = next(d for d, c in pending.items() if c is conn)
                try:
                    tag, payload = conn.recv()
                except (EOFError, OSError):
                    self._replica_lost(device, phase, iteration)
                if tag == "err":
                    self._replica_lost(device, phase, iteration,
                                       detail=str(payload))
                replies[device] = payload
                del pending[device]
            for device, conn in list(pending.items()):
                if not self._procs[device].is_alive() and not conn.poll(0):
                    self._replica_lost(device, phase, iteration)
            waited = time.monotonic() - start
            if pending and waited >= self.timeout:
                for device in sorted(set(pending) - flagged):
                    flagged.add(device)
                    event = {"device": device, "phase": phase,
                             "iteration": iteration,
                             "waited": round(waited, 3),
                             "timeout": self.timeout}
                    self.straggler_events.append(event)
                    self.trainer.tracer.emit(
                        STRAGGLER_DETECTED, iteration=iteration,
                        device=device, phase=phase,
                        waited=round(waited, 3), timeout=self.timeout)
                if waited >= self.hard_timeout:
                    stuck = sorted(pending)
                    self.close()
                    raise CollectiveTimeoutError(
                        f"collective {phase!r} timed out after {waited:.1f}s "
                        f"waiting for replicas {stuck}")
        return replies

    def _replica_lost(self, device: int, phase: str, iteration: int | None,
                      detail: str = ""):
        """Abort cleanly: record the loss, tear down, raise."""
        self.trainer.tracer.emit(REPLICA_LOST, iteration=iteration,
                                 device=device, phase=phase)
        self.close()
        raise ReplicaLostError(device, phase, detail)
