"""The historical single-process simulated backend.

This is the loop body ``SyncDataParallelTrainer.run_iteration`` always
ran, extracted behind the :class:`~repro.backend.base.ExecutionBackend`
interface and otherwise unchanged — golden traces
(``tests/data/golden_traces.json``) pin it bit-identical to the
pre-backend trainer.  Every replica steps sequentially in this process;
"communication" is the central-server accumulate/average/broadcast the
paper's simulator modeled.

Gradient accumulation is fully pre-allocated: the fused path reuses the
trainer's arena-layout scratch buffer, and the scattered fallback (tied
weights) keeps one per-parameter sum buffer for the trainer's lifetime,
so no per-iteration allocation happens on the averaging path.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ExecutionBackend, device_step
from repro.observe import profile_scope


class InProcessBackend(ExecutionBackend):
    """Sequentially simulated replicas inside the trainer's process."""

    name = "inprocess"

    def __init__(self):
        super().__init__()
        self._grad_accum: np.ndarray | None = None
        self._master_params = None
        self._grad_sums: list[np.ndarray] | None = None

    def bind(self, trainer) -> None:
        super().bind(trainer)
        if trainer.arenas is not None:
            self._grad_accum = trainer.master_arena.scratch()
        else:
            self._master_params = list(trainer.master.parameters())
            self._grad_sums = [np.zeros_like(p.data)
                               for p in self._master_params]

    # ------------------------------------------------------------------
    # Per-iteration contract
    # ------------------------------------------------------------------
    def step(self, iteration: int) -> tuple[float, float]:
        trainer = self.trainer
        fused = trainer.arenas is not None
        if fused:
            grad_accum = self._grad_accum
            grad_accum.fill(0.0)
        else:
            grad_sums = self._grad_sums
            for g_sum in grad_sums:
                g_sum.fill(0.0)
        total_loss = 0.0
        total_acc = 0.0
        for device in range(trainer.num_devices):
            loss, acc = device_step(trainer, device, iteration)
            total_loss += loss
            total_acc += acc
            with np.errstate(over="ignore", invalid="ignore"):
                if fused:
                    grad_accum += trainer.arenas[device].grad
                else:
                    for g_sum, param in zip(
                            grad_sums, trainer.replicas[device].parameters()):
                        g_sum += param.grad
        # Average gradients into the master replica (the "central
        # server"): one fused axpy instead of a per-parameter loop.
        inv = 1.0 / trainer.num_devices
        with profile_scope("sync.grad_average"), \
                np.errstate(over="ignore", invalid="ignore"):
            if fused:
                np.multiply(grad_accum, inv, out=trainer.master_arena.grad)
                self._apply_comm_fault(trainer.master_arena.grad)
            else:
                for param, g_sum in zip(self._master_params, grad_sums):
                    np.multiply(g_sum, inv, out=param.grad)
        return total_loss / trainer.num_devices, total_acc / trainer.num_devices

    def broadcast(self) -> None:
        """Copy master parameters into every other replica — one fused
        buffer copy per replica when arenas are available."""
        trainer = self.trainer
        if trainer.arenas is not None:
            master = trainer.master_arena.param
            for arena in trainer.arenas[1:]:
                np.copyto(arena.param, master)
            return
        master_params = self._master_params
        for replica in trainer.replicas[1:]:
            for p_master, p_replica in zip(master_params, replica.parameters()):
                np.copyto(p_replica.data, p_master.data)
