"""Pluggable execution backends for the data-parallel trainer.

See :mod:`repro.backend.base` for the contract,
:mod:`repro.backend.inprocess` for the historical simulated loop,
:mod:`repro.backend.multiprocess` for the one-process-per-replica
shared-memory runtime with deterministic collectives
(:mod:`repro.backend.collectives`), and :mod:`repro.backend.batched`
for the experiment-stacked vectorized runtime.

:data:`BACKEND_REGISTRY` is the single source of truth for what each
backend is and when to pick it; CLI help and docs are generated from it
rather than hand-maintained.
"""

from dataclasses import dataclass

from repro.backend import collectives
from repro.backend.base import (
    BACKEND_NAMES,
    CollectiveTimeoutError,
    DeviceFaultPlan,
    ExecutionBackend,
    ReplicaChaos,
    ReplicaLostError,
    absorb_device_fault_results,
    build_backend,
    collect_device_fault_plans,
    device_step,
    reseed_random_layers,
)
from repro.backend.batched import BatchedBackend, LaneGroup, run_lockstep
from repro.backend.collectives import all_reduce_mean, barrier, broadcast
from repro.backend.inprocess import InProcessBackend
from repro.backend.multiprocess import MultiProcessBackend


@dataclass(frozen=True)
class BackendInfo:
    """One registered backend: its CLI name, what it does, and the
    trade-off that decides when to pick it."""

    name: str
    summary: str
    tradeoff: str


#: Name -> :class:`BackendInfo`, in CLI order.  The single place backend
#: choices and their trade-offs are described; `repro ... --help` and
#: the README table are generated from it.
BACKEND_REGISTRY: dict[str, BackendInfo] = {
    info.name: info
    for info in (
        BackendInfo(
            name="inprocess",
            summary="sequential simulated replicas in one process",
            tradeoff="the bit-exact reference; lowest overhead for a "
                     "single run, but campaigns step one experiment at "
                     "a time",
        ),
        BackendInfo(
            name="multiprocess",
            summary="one OS process per replica over shared memory",
            tradeoff="true process isolation and replica-loss/chaos "
                     "experiments; IPC dominates on the paper's tiny "
                     "models, so it is slower than inprocess there",
        ),
        BackendInfo(
            name="batched",
            summary="E experiments stacked into one vectorized NumPy "
                    "program",
            tradeoff="highest campaign throughput (pair with "
                     "--experiment-batch E); small overhead at E=1, and "
                     "unbatchable models fall back to the solo loop "
                     "per lane",
        ),
    )
}
assert tuple(BACKEND_REGISTRY) == BACKEND_NAMES


def backend_choices_help() -> str:
    """One-line-per-backend help text generated from the registry."""
    return "; ".join(
        f"{info.name}: {info.summary} ({info.tradeoff})"
        for info in BACKEND_REGISTRY.values()
    )


__all__ = [
    "BACKEND_NAMES",
    "BACKEND_REGISTRY",
    "BackendInfo",
    "BatchedBackend",
    "LaneGroup",
    "backend_choices_help",
    "run_lockstep",
    "CollectiveTimeoutError",
    "DeviceFaultPlan",
    "ExecutionBackend",
    "InProcessBackend",
    "MultiProcessBackend",
    "ReplicaChaos",
    "ReplicaLostError",
    "absorb_device_fault_results",
    "all_reduce_mean",
    "barrier",
    "broadcast",
    "build_backend",
    "collect_device_fault_plans",
    "collectives",
    "device_step",
    "reseed_random_layers",
]
