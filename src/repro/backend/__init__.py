"""Pluggable execution backends for the data-parallel trainer.

See :mod:`repro.backend.base` for the contract,
:mod:`repro.backend.inprocess` for the historical simulated loop, and
:mod:`repro.backend.multiprocess` for the one-process-per-replica
shared-memory runtime with deterministic collectives
(:mod:`repro.backend.collectives`).
"""

from repro.backend import collectives
from repro.backend.base import (
    BACKEND_NAMES,
    CollectiveTimeoutError,
    DeviceFaultPlan,
    ExecutionBackend,
    ReplicaChaos,
    ReplicaLostError,
    absorb_device_fault_results,
    build_backend,
    collect_device_fault_plans,
    device_step,
    reseed_random_layers,
)
from repro.backend.collectives import all_reduce_mean, barrier, broadcast
from repro.backend.inprocess import InProcessBackend
from repro.backend.multiprocess import MultiProcessBackend

__all__ = [
    "BACKEND_NAMES",
    "CollectiveTimeoutError",
    "DeviceFaultPlan",
    "ExecutionBackend",
    "InProcessBackend",
    "MultiProcessBackend",
    "ReplicaChaos",
    "ReplicaLostError",
    "absorb_device_fault_results",
    "all_reduce_mean",
    "barrier",
    "broadcast",
    "build_backend",
    "collect_device_fault_plans",
    "collectives",
    "device_step",
    "reseed_random_layers",
]
