"""Experiment-stacked vectorized kernels for the batched backend.

One *lane* is one (experiment, device) replica.  A compiled
:class:`BatchedProgram` runs L lanes' forward/backward as single NumPy
ops over ``(L, ...)`` stacked tensors, reading parameters from and
scattering gradients into the :class:`~repro.state.ExperimentStacks`
row stacks via the arena's ``name -> (offset, size, shape)`` index.

Every kernel is an operation-for-operation mirror of its module's
``forward`` / ``backward`` (same op order, same dtype casts, same
``errstate`` scopes), arranged so each per-lane slice of the batched
computation is **bit-identical** to the solo module applied to that
lane's tensors:

* reductions move from axis 0 / (0, 2, 3) to axis 1 / (1, 3, 4) — NumPy
  pairwise summation over the same elements in the same order;
* matmuls become stacked ``np.matmul`` over ``(L, ...)`` operands, which
  computes each slice exactly as the solo 2-D ``@``;
* im2col/col2im fold the lane axis into the batch axis (patch rows stay
  lane-contiguous blocks, so per-lane slices are unchanged);
* elementwise ops broadcast per-lane scalars/stats along the lane axis.

Masked fault injection falls out of the lane layout: each lane's peer
module keeps its armed hooks, and kernels apply ``apply_fault_hook`` to
exactly that lane's slice of the stacked tensor with the solo call's
``site_info`` — one program, L differently-injected experiments.  The
repo's software fault models return fresh float32 arrays of the input
shape, so writing the hook result back into the slice is exact.

Models containing module types without a kernel here (pooling, dropout,
attention, ...) are reported unbatchable at compile time and the backend
falls back to per-lane :func:`~repro.backend.base.device_step` — the
literal solo code path — so correctness never depends on coverage.
"""

from __future__ import annotations

import numpy as np

from repro.nn import config
from repro.nn.activations import ReLU
from repro.nn.blocks import ResidualBlock
from repro.nn.config import Precision
from repro.nn.conv import Conv2D, GlobalAvgPool2D, col2im, conv_output_size, im2col
from repro.nn.linear import Dense, Flatten
from repro.nn.module import Module, Sequential
from repro.nn.normalization import BatchNorm


class Unbatchable(Exception):
    """The model (or its input shape) has no vectorized mirror."""


def _pkey(path: str, param: str) -> str:
    return f"{path}.{param}" if path else param


def _jkey(path: str, child: str) -> str:
    return f"{path}.{child}" if path else child


class LaneContext:
    """One batched call's execution context.

    ``modules`` is the per-lane ``dict(named_modules())`` of each lane's
    replica (hook application targets); ``rows`` the per-lane row index
    into the ``(rows, total)`` parameter/gradient stacks.
    """

    def __init__(self, modules: list[dict], rows, param_stack: np.ndarray,
                 grad_stack: np.ndarray, training: bool):
        self.modules = modules
        self.rows = np.asarray(rows, dtype=np.intp)
        self.param_stack = param_stack
        self.grad_stack = grad_stack
        self.training = bool(training)
        self._peers: dict[str, list[Module]] = {}

    def peers(self, path: str) -> list[Module]:
        got = self._peers.get(path)
        if got is None:
            got = [mods[path] for mods in self.modules]
            self._peers[path] = got
        return got

    def gather(self, entry) -> np.ndarray:
        """Stack one parameter across lanes: ``(L,) + entry.shape``."""
        flat = self.param_stack[self.rows, entry.offset:entry.offset + entry.size]
        return flat.reshape((len(self.modules),) + entry.shape)

    def scatter_add(self, entry, value: np.ndarray) -> None:
        """Accumulate per-lane gradients into the lanes' grad rows (the
        same storage as each lane's ``param.grad`` arena view)."""
        sl = slice(entry.offset, entry.offset + entry.size)
        self.grad_stack[self.rows, sl] += value.reshape(len(self.modules), -1)

    def apply_hooks(self, path: str, kind: str, stacked: np.ndarray,
                    **site_info) -> np.ndarray:
        """Masked injection: apply each lane's armed fault hook (if any)
        to that lane's slice only, with the solo call's site info."""
        for lane, peer in enumerate(self.peers(path)):
            if peer._fault_hooks[kind] is None:
                continue
            tensor = stacked[lane]
            out = peer.apply_fault_hook(kind, tensor, **site_info)
            if out is not tensor:
                stacked[lane] = out
        return stacked


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
class _Op:
    def __init__(self, path: str):
        self.path = path

    def infer(self, shape: tuple) -> tuple:
        """Static per-lane shape propagation; raises :class:`Unbatchable`
        when this kernel cannot mirror the module on that shape."""
        return shape

    def forward(self, ctx: LaneContext, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, ctx: LaneContext, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class _ConvOp(_Op):
    """Mirror of :class:`~repro.nn.conv.Conv2D` over stacked lanes."""

    def __init__(self, path: str, module: Conv2D, index: dict):
        super().__init__(path)
        self.k = module.kernel_size
        self.s = module.stride
        self.p = module.padding
        self.cin = module.in_channels
        self.cout = module.out_channels
        self.use_bias = module.use_bias
        self.w_entry = index[_pkey(path, "weight")]
        self.b_entry = index[_pkey(path, "bias")] if module.use_bias else None
        self._col: np.ndarray | None = None
        self._in_shape: tuple | None = None
        self._out_hw: tuple[int, int] | None = None

    def infer(self, shape):
        if len(shape) != 4 or shape[1] != self.cin:
            raise Unbatchable(f"{self.path}: Conv2D expects (n, {self.cin}, h, w), got {shape}")
        n, _c, h, w = shape
        return (n, self.cout,
                conv_output_size(h, self.k, self.s, self.p),
                conv_output_size(w, self.k, self.s, self.p))

    def forward(self, ctx, x):
        lanes, n, c, h, w = x.shape
        k, s, p = self.k, self.s, self.p
        oh, ow = conv_output_size(h, k, s, p), conv_output_size(w, k, s, p)
        # Lane axis folds into the batch axis: im2col patch rows stay
        # lane-contiguous blocks, so per-lane slices match solo im2col.
        col = im2col(x.reshape(lanes * n, c, h, w), k, k, s, p)
        col = col.reshape(lanes, n * oh * ow, c * k * k)
        self._col = col
        self._in_shape = x.shape
        self._out_hw = (oh, ow)
        w_row = ctx.gather(self.w_entry).reshape(lanes, self.cout, -1)
        out = config.matmul(col, w_row.transpose(0, 2, 1))
        if self.use_bias:
            out = out + ctx.gather(self.b_entry)[:, None, :]
        out = out.reshape(lanes, n, oh, ow, self.cout).transpose(0, 1, 4, 2, 3)
        out = np.ascontiguousarray(out, dtype=np.float32)
        return ctx.apply_hooks(self.path, "forward", out)

    def backward(self, ctx, grad):
        lanes, n, c, h, w = self._in_shape
        oh, ow = self._out_hw
        g2 = grad.transpose(0, 1, 3, 4, 2).reshape(lanes, n * oh * ow, self.cout)
        dw = config.matmul(self._col.transpose(0, 2, 1), g2).astype(np.float32, copy=False)
        dw = dw.transpose(0, 2, 1).reshape((lanes,) + self.w_entry.shape)
        dw = ctx.apply_hooks(self.path, "weight_grad", dw, param="weight")
        ctx.scatter_add(self.w_entry, dw)
        if self.use_bias:
            ctx.scatter_add(self.b_entry, g2.sum(axis=1).astype(np.float32, copy=False))
        w_row = ctx.gather(self.w_entry).reshape(lanes, self.cout, -1)
        dcol = config.matmul(g2, w_row).astype(np.float32, copy=False)
        dx = col2im(dcol.reshape(lanes * n * oh * ow, -1), (lanes * n, c, h, w),
                    self.k, self.k, self.s, self.p)
        dx = dx.reshape(self._in_shape)
        # Solo modules keep their im2col cache alive between iterations;
        # at E experiments that transient is E times larger, so drop it
        # (memory only — numerics are unaffected).
        self._col = None
        return ctx.apply_hooks(self.path, "input_grad", dx)


class _BNOp(_Op):
    """Mirror of :class:`~repro.nn.normalization.BatchNorm` (NCHW).

    Moving statistics stay per-lane module state — they are per-device
    in the solo trainer (never averaged; the LowTestAccuracy mechanism)
    and per-experiment here, so the recurrence updates write back into
    each lane's own ``moving_mean`` / ``moving_var`` arrays.
    """

    _AXES = (1, 3, 4)  # solo (0, 2, 3) shifted by the lane axis

    def __init__(self, path: str, module: BatchNorm, index: dict):
        super().__init__(path)
        self.momentum = module.momentum
        self.eps = module.eps
        self.c = module.num_features
        self.g_entry = index[_pkey(path, "gamma")]
        self.b_entry = index[_pkey(path, "beta")]
        self._cache: tuple | None = None

    def infer(self, shape):
        if len(shape) != 4 or shape[1] != self.c:
            raise Unbatchable(f"{self.path}: batched BatchNorm supports NCHW only, got {shape}")
        return shape

    @staticmethod
    def _e(stat: np.ndarray) -> np.ndarray:
        """(L, C) per-lane channel stats -> broadcastable over (L, n, C, h, w)."""
        return stat[:, None, :, None, None]

    def forward(self, ctx, x):
        peers = ctx.peers(self.path)
        if ctx.training:
            with np.errstate(over="ignore", invalid="ignore"):
                mean = x.mean(axis=self._AXES, dtype=np.float32)
                var = x.var(axis=self._AXES, dtype=np.float32)
                mm = np.stack([p.moving_mean for p in peers])
                mv = np.stack([p.moving_var for p in peers])
                new_mm = (self.momentum * mm + (1.0 - self.momentum) * mean).astype(np.float32, copy=False)
                new_mv = (self.momentum * mv + (1.0 - self.momentum) * var).astype(np.float32, copy=False)
            for lane, peer in enumerate(peers):
                peer.moving_mean = new_mm[lane].copy()
                peer.moving_var = new_mv[lane].copy()
        else:
            mean = np.stack([p.moving_mean for p in peers])
            var = np.stack([p.moving_var for p in peers])
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            inv_std = 1.0 / np.sqrt(var + self.eps)
            xhat = (x - self._e(mean)) * self._e(inv_std)
            out = (self._e(ctx.gather(self.g_entry)) * xhat
                   + self._e(ctx.gather(self.b_entry))).astype(np.float32, copy=False)
        if ctx.training:
            self._cache = (xhat, inv_std, x.shape)
        return ctx.apply_hooks(self.path, "forward", out)

    def backward(self, ctx, grad):
        xhat, inv_std, shape = self._cache
        self._cache = None
        m = float(shape[1] * shape[3] * shape[4])
        dgamma = (grad * xhat).sum(axis=self._AXES).astype(np.float32, copy=False)
        dbeta = grad.sum(axis=self._AXES).astype(np.float32, copy=False)
        dgamma = ctx.apply_hooks(self.path, "weight_grad", dgamma, param="gamma")
        ctx.scatter_add(self.g_entry, dgamma)
        ctx.scatter_add(self.b_entry, dbeta)
        gamma = self._e(ctx.gather(self.g_entry))
        inv = self._e(inv_std)
        dxhat = grad * gamma
        with np.errstate(over="ignore", invalid="ignore"):
            dx = (
                inv
                / m
                * (
                    m * dxhat
                    - dxhat.sum(axis=self._AXES, keepdims=True)
                    - xhat * (dxhat * xhat).sum(axis=self._AXES, keepdims=True)
                )
            ).astype(np.float32, copy=False)
        return ctx.apply_hooks(self.path, "input_grad", dx)


class _ReLUOp(_Op):
    def __init__(self, path: str):
        super().__init__(path)
        self._mask: np.ndarray | None = None

    def forward(self, ctx, x):
        self._mask = x > 0
        out = np.where(self._mask, x, 0.0).astype(np.float32, copy=False)
        return ctx.apply_hooks(self.path, "forward", out)

    def backward(self, ctx, grad):
        out = np.where(self._mask, grad, 0.0).astype(np.float32, copy=False)
        self._mask = None
        return ctx.apply_hooks(self.path, "input_grad", out)


class _DenseOp(_Op):
    def __init__(self, path: str, module: Dense, index: dict):
        super().__init__(path)
        self.in_features = module.in_features
        self.out_features = module.out_features
        self.use_bias = module.use_bias
        self.w_entry = index[_pkey(path, "weight")]
        self.b_entry = index[_pkey(path, "bias")] if module.use_bias else None
        self._x: np.ndarray | None = None

    def infer(self, shape):
        if len(shape) != 2 or shape[1] != self.in_features:
            raise Unbatchable(f"{self.path}: batched Dense expects (n, {self.in_features}), got {shape}")
        return (shape[0], self.out_features)

    def forward(self, ctx, x):
        self._x = x
        w = ctx.gather(self.w_entry)
        out = config.matmul(x, w)
        if self.use_bias:
            out = out + ctx.gather(self.b_entry)[:, None, :]
        out = out.astype(np.float32, copy=False)
        return ctx.apply_hooks(self.path, "forward", out)

    def backward(self, ctx, grad):
        x = self._x
        self._x = None
        w = ctx.gather(self.w_entry)
        dw = config.matmul(x.transpose(0, 2, 1), grad).astype(np.float32, copy=False)
        dw = ctx.apply_hooks(self.path, "weight_grad", dw, param="weight")
        ctx.scatter_add(self.w_entry, dw)
        if self.use_bias:
            ctx.scatter_add(self.b_entry, grad.sum(axis=1).astype(np.float32, copy=False))
        dx = config.matmul(grad, w.transpose(0, 2, 1)).astype(np.float32, copy=False)
        return ctx.apply_hooks(self.path, "input_grad", dx)


class _GAPOp(_Op):
    """Mirror of GlobalAvgPool2D (no fault-hook sites, like solo)."""

    def __init__(self, path: str):
        super().__init__(path)
        self._shape: tuple | None = None

    def infer(self, shape):
        if len(shape) != 4:
            raise Unbatchable(f"{self.path}: GlobalAvgPool2D expects NCHW, got {shape}")
        return (shape[0], shape[1])

    def forward(self, ctx, x):
        self._shape = x.shape
        return x.mean(axis=(3, 4)).astype(np.float32, copy=False)

    def backward(self, ctx, grad):
        shape = self._shape
        scale = 1.0 / (shape[3] * shape[4])
        return (np.broadcast_to(grad[:, :, :, None, None], shape) * scale).astype(np.float32, copy=False)


class _FlattenOp(_Op):
    def __init__(self, path: str):
        super().__init__(path)
        self._shape: tuple | None = None

    def infer(self, shape):
        flat = 1
        for dim in shape[1:]:
            flat *= dim
        return (shape[0], flat)

    def forward(self, ctx, x):
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, ctx, grad):
        return grad.reshape(self._shape)


class _SeqOp(_Op):
    def __init__(self, path: str, children: list[_Op]):
        super().__init__(path)
        self.children = children

    def infer(self, shape):
        for child in self.children:
            shape = child.infer(shape)
        return shape

    def forward(self, ctx, x):
        for child in self.children:
            x = child.forward(ctx, x)
        return x

    def backward(self, ctx, grad):
        for child in reversed(self.children):
            grad = child.backward(ctx, grad)
        return grad


class _ResidualOp(_Op):
    """Mirror of :class:`~repro.nn.blocks.ResidualBlock`."""

    def __init__(self, path: str, module: ResidualBlock, index: dict):
        super().__init__(path)
        self.use_bn = module.use_bn
        self.has_projection = module.has_projection
        self.conv1 = _ConvOp(_jkey(path, "conv1"), module.conv1, index)
        self.conv2 = _ConvOp(_jkey(path, "conv2"), module.conv2, index)
        self.relu1 = _ReLUOp(_jkey(path, "relu1"))
        self.relu_out = _ReLUOp(_jkey(path, "relu_out"))
        self.bn1 = _BNOp(_jkey(path, "bn1"), module.bn1, index) if module.use_bn else None
        self.bn2 = _BNOp(_jkey(path, "bn2"), module.bn2, index) if module.use_bn else None
        self.proj = None
        self.proj_bn = None
        if module.has_projection:
            self.proj = _ConvOp(_jkey(path, "proj"), module.proj, index)
            if module.use_bn:
                self.proj_bn = _BNOp(_jkey(path, "proj_bn"), module.proj_bn, index)

    def infer(self, shape):
        s = self.conv1.infer(shape)
        if self.bn1 is not None:
            s = self.bn1.infer(s)
        s = self.conv2.infer(self.relu1.infer(s))
        if self.bn2 is not None:
            s = self.bn2.infer(s)
        short = shape
        if self.proj is not None:
            short = self.proj.infer(shape)
            if self.proj_bn is not None:
                short = self.proj_bn.infer(short)
        if short != s:
            raise Unbatchable(f"{self.path}: residual add shapes differ: {s} vs {short}")
        return self.relu_out.infer(s)

    def forward(self, ctx, x):
        h = self.conv1.forward(ctx, x)
        if self.bn1 is not None:
            h = self.bn1.forward(ctx, h)
        h = self.relu1.forward(ctx, h)
        h = self.conv2.forward(ctx, h)
        if self.bn2 is not None:
            h = self.bn2.forward(ctx, h)
        if self.has_projection:
            shortcut = self.proj.forward(ctx, x)
            if self.proj_bn is not None:
                shortcut = self.proj_bn.forward(ctx, shortcut)
        else:
            shortcut = x
        with np.errstate(over="ignore", invalid="ignore"):
            out = (h + shortcut).astype(np.float32, copy=False)
        return self.relu_out.forward(ctx, out)

    def backward(self, ctx, grad):
        grad = self.relu_out.backward(ctx, grad)
        g_main = grad
        g_short = grad
        if self.bn2 is not None:
            g_main = self.bn2.backward(ctx, g_main)
        g_main = self.conv2.backward(ctx, g_main)
        g_main = self.relu1.backward(ctx, g_main)
        if self.bn1 is not None:
            g_main = self.bn1.backward(ctx, g_main)
        g_main = self.conv1.backward(ctx, g_main)
        if self.has_projection:
            if self.proj_bn is not None:
                g_short = self.proj_bn.backward(ctx, g_short)
            g_short = self.proj.backward(ctx, g_short)
        with np.errstate(over="ignore", invalid="ignore"):
            return (g_main + g_short).astype(np.float32, copy=False)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _compile(module: Module, path: str, index: dict) -> _Op:
    # Exact type checks: subclasses (ScaledReLU, NF blocks, ...) override
    # the math, so they must fall back rather than silently mis-mirror.
    kind = type(module)
    if kind is Sequential:
        return _SeqOp(path, [
            _compile(child, _jkey(path, str(i)), index)
            for i, child in enumerate(module.layers)
        ])
    if kind is Conv2D:
        return _ConvOp(path, module, index)
    if kind is BatchNorm:
        return _BNOp(path, module, index)
    if kind is ReLU:
        return _ReLUOp(path)
    if kind is Dense:
        return _DenseOp(path, module, index)
    if kind is GlobalAvgPool2D:
        return _GAPOp(path)
    if kind is Flatten:
        return _FlattenOp(path)
    if kind is ResidualBlock:
        return _ResidualOp(path, module, index)
    raise Unbatchable(f"no batched kernel for module type {kind.__name__!r}")


class BatchedProgram:
    """A compiled model mirror: one forward/backward over stacked lanes."""

    def __init__(self, root: _Op):
        self.root = root

    def forward(self, ctx: LaneContext, x: np.ndarray) -> np.ndarray:
        return self.root.forward(ctx, x)

    def backward(self, ctx: LaneContext, grad: np.ndarray) -> np.ndarray:
        return self.root.backward(ctx, grad)


def compile_program(model: Module, index: dict,
                    sample_shape: tuple) -> BatchedProgram | None:
    """Compile ``model`` into a batched program, or ``None`` when any
    module (or the ``sample_shape`` flowing through it) is unbatchable
    or a non-FP32 compute precision is active — callers then use the
    per-lane solo fallback."""
    if config.get_compute_precision() is not Precision.FP32:
        return None
    try:
        root = _compile(model, "", index)
        root.infer(tuple(sample_shape))
    except Unbatchable:
        return None
    return BatchedProgram(root)
