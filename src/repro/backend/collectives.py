"""Deterministic collective primitives over fused state buffers.

The multi-process backend replaces the simulator's central-server
averaging with proper collectives, but keeps the paper's reproducibility
contract: every collective here is **order-pinned** — the floating-point
association order is fixed by rank, never by arrival order — so a
campaign's convergence records are bit-identical at any worker count,
on any backend, across any scheduling of the replica processes.

``all_reduce_mean`` is structured as a chunked ring pass (chunks visit
ranks round-robin, the way a ring all-reduce schedules link transfers),
with the accumulation order *within* each chunk pinned to ascending
rank.  Because float addition is elementwise, the pinned per-element
association ``((0 + g_0) + g_1) + ...`` makes the result bit-identical
to the naive central-server sum the in-process simulator performs —
pinned by ``tests/test_backend.py`` property tests over every registry
workload.

The reduced buffer is also the comm-fault injection site: ``fault_hook``
perturbs the in-flight mean exactly once, after the reduction and before
any consumer sees it (link faults, see
:class:`repro.core.faults.comm.CommFaultInjector`).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

#: Default ring chunk size (elements).  Chunking only affects scheduling
#: granularity, never results: per-element association order is pinned.
DEFAULT_CHUNK = 1 << 16


def ring_order(num_ranks: int, start: int = 0) -> list[int]:
    """The pinned rank visitation order of the ring, starting at
    ``start``: ``start, start+1, ..., start-1`` (mod ``num_ranks``)."""
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be >= 1: {num_ranks}")
    return [(start + r) % num_ranks for r in range(num_ranks)]


def ring_chunks(total: int, num_ranks: int, chunk: int = DEFAULT_CHUNK) -> list[slice]:
    """Chunk slices of a ``total``-element buffer for a ring pass.

    At least one chunk per rank (the classic ring partition) and no
    chunk larger than ``chunk`` elements.
    """
    if total <= 0:
        return [slice(0, 0)]
    pieces = max(num_ranks, -(-total // max(int(chunk), 1)))
    bounds = np.linspace(0, total, min(pieces, total) + 1, dtype=np.int64)
    return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])
            if int(b) > int(a)]


def all_reduce_mean(
    buffers: Sequence[np.ndarray],
    out: np.ndarray,
    scratch: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
    fault_hook: Callable[[np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Reduce ``buffers`` to their elementwise mean in ``out``.

    ``out`` may alias one of the inputs (the master replica's gradient
    segment is both rank-0 contribution and destination): accumulation
    happens in ``scratch`` and is written to ``out`` only at the end.
    The addition order per chunk is pinned to ascending rank, making
    the result bit-identical to the sequential central-server sum.
    """
    num_ranks = len(buffers)
    if num_ranks == 0:
        raise ValueError("all_reduce_mean needs at least one buffer")
    total = buffers[0].size
    for buf in buffers:
        if buf.shape != buffers[0].shape:
            raise ValueError("all_reduce_mean buffers must be shape-aligned")
    if scratch is None:
        scratch = np.empty_like(out)
    inv = 1.0 / num_ranks
    # A throughput-optimal ring rotates each chunk's starting rank; we
    # pin every chunk's ring to start at rank 0, which fixes the
    # per-element association order to the central-server sum — the
    # reproducibility contract of the paper's campaigns.
    order = ring_order(num_ranks, start=0)
    with np.errstate(over="ignore", invalid="ignore"):
        for sl in ring_chunks(total, num_ranks, chunk):
            acc = scratch[sl]
            acc.fill(0.0)
            for rank in order:
                acc += buffers[rank][sl]
        np.multiply(scratch, inv, out=out)
    if fault_hook is not None:
        faulty = fault_hook(out)
        if faulty is not out:
            np.copyto(out, faulty)
    return out


def broadcast(src: np.ndarray, dests: Sequence[np.ndarray]) -> None:
    """Copy ``src`` into every destination buffer (rank order)."""
    for dest in dests:
        np.copyto(dest, src)


def barrier(conns: Sequence) -> None:
    """Round-trip synchronization with a set of replica endpoints.

    Sends a ``("barrier",)`` command down every connection (rank order)
    and awaits one acknowledgement each.  This is the bare protocol
    primitive; :meth:`repro.backend.multiprocess.MultiProcessBackend.barrier`
    wraps it with straggler and replica-loss handling.
    """
    for conn in conns:
        conn.send(("barrier",))
    for rank, conn in enumerate(conns):
        tag, _ = conn.recv()
        if tag != "ok":
            raise RuntimeError(f"barrier: replica {rank} answered {tag!r}")
