"""Execution-backend interface: who runs the replicas, and how.

The paper's campaigns ran on 8 real TPU devices (Sec. 3.3); the
reproduction historically simulated all replicas inside one Python
process.  :class:`ExecutionBackend` makes that substrate pluggable: the
:class:`~repro.distributed.sync.SyncDataParallelTrainer` owns the
*algorithm* (hook dispatch, optimizer step, convergence recording,
outcome bookkeeping) and delegates the *execution* of the per-device
work — forward/backward on every replica, gradient reduction, weight
broadcast — to a backend:

* :class:`~repro.backend.inprocess.InProcessBackend` — the historical
  simulated loop, extracted verbatim (golden traces stay bit-identical);
* :class:`~repro.backend.multiprocess.MultiProcessBackend` — one OS
  process per replica over shared-memory state, reduced with the
  deterministic collectives in :mod:`repro.backend.collectives`.

Crossing a process boundary means closures cannot travel: a fault hook
armed on a parent-side replica module never fires in the child that
actually computes.  The backend therefore carries faults across the
boundary as *plans* — serializable :class:`DeviceFaultPlan` descriptors
exported by injector hooks (``export_device_fault``), executed on the
owning replica, and absorbed back (``absorb_device_fault``) so the
parent-side hook's ``fired``/``record`` state, trace emission, and
reports behave identically under every backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.nn.linear import Dropout
from repro.nn.module import Module

#: Canonical backend names, in CLI order.
BACKEND_NAMES = ("inprocess", "multiprocess", "batched")

#: Hook applied to the in-flight reduced gradient buffer (the comm-fault
#: injection site); returns the possibly perturbed buffer.
CommFaultHook = Callable[[np.ndarray], np.ndarray]


class ReplicaLostError(RuntimeError):
    """A replica process died mid-collective; the trainer aborts cleanly
    and the run is classified as the ``ReplicaLost`` outcome."""

    def __init__(self, device: int, phase: str, detail: str = ""):
        self.device = int(device)
        self.phase = str(phase)
        msg = f"replica {device} lost during {phase}"
        if detail:
            msg = f"{msg}: {detail}"
        super().__init__(msg)


class CollectiveTimeoutError(RuntimeError):
    """A collective exceeded its hard deadline even after straggler
    grace; raised to the caller (campaigns quarantine the experiment)."""


@dataclass(frozen=True)
class ReplicaChaos:
    """Runtime-fault injection for the backend itself.

    Extends the repo's fault-injection story from tensors to the
    execution substrate: ``kind="delay"`` makes one replica straggle
    (``seconds`` of sleep before it answers the step collective) and
    ``kind="kill"`` hard-kills the replica process mid-iteration, both
    at a chosen iteration.  Used by the robustness tests and available
    for chaos experiments.
    """

    device: int
    iteration: int
    kind: str = "delay"
    seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in ("delay", "kill"):
            raise ValueError(f"unknown chaos kind: {self.kind!r}")

    def applies(self, device: int, iteration: int) -> bool:
        return device == self.device and iteration == self.iteration


@dataclass(frozen=True)
class DeviceFaultPlan:
    """A serializable order to inject one fault on one replica.

    ``fault`` is a :class:`~repro.core.faults.hardware.HardwareFault`
    (plain dataclasses all the way down, so the plan crosses process
    boundaries by pickling); ``plan_id`` routes the execution result
    back to the exporting hook.
    """

    plan_id: int
    device: int
    fault: object
    config: object = None


def reseed_random_layers(model: Module, seed) -> None:
    """Reseed every stochastic layer (currently Dropout) in a model.

    Implements requirement (3) of the paper's recovery technique: random
    draws must be reproducible when an iteration is re-executed — and,
    for the multi-process backend, reproducible regardless of which
    process executes the iteration.
    """
    for index, module in enumerate(model.modules()):
        if isinstance(module, Dropout):
            module.reseed((seed, index))


def device_step(trainer, device: int, iteration: int) -> tuple[float, float]:
    """One device's share of a synchronous iteration: forward, loss,
    backward.  Gradients land in the replica's arena ``grad`` segment
    (or scattered ``param.grad`` arrays); returns ``(loss, acc)``.

    This is the unit of work both backends execute — in-process runs it
    for every device sequentially, multi-process runs it inside the
    replica's own OS process.  The body is the historical loop body of
    ``SyncDataParallelTrainer.run_iteration``, unchanged, so results are
    bit-identical across backends.
    """
    model = trainer.replicas[device]
    model.train()
    reseed_random_layers(model, (trainer.seed, iteration, device))
    x, y = trainer.loader.shard_batch_at(iteration, device, trainer.num_devices)
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        out = model.forward(x)
        loss = trainer.losses[device].forward(out, y)
        if trainer.arenas is not None:
            trainer.arenas[device].grad.fill(0.0)
        else:
            model.zero_grad()
        model.backward(trainer.losses[device].backward())
    return float(loss), float(trainer.spec.metric(out, y))


def collect_device_fault_plans(trainer, iteration: int) \
        -> tuple[dict[int, list[DeviceFaultPlan]], dict[int, object]]:
    """Export pending device-fault plans from the trainer's hooks.

    Returns ``(plans_by_device, hook_by_plan_id)``: hooks implementing
    ``export_device_fault(iteration)`` contribute one plan each (or
    ``None``); results are absorbed back via
    :func:`absorb_device_fault_results`.
    """
    plans: dict[int, list[DeviceFaultPlan]] = {}
    exporters: dict[int, object] = {}
    plan_id = 0
    for hook in trainer.hooks:
        export = getattr(hook, "export_device_fault", None)
        if export is None:
            continue
        fault = export(iteration)
        if fault is None:
            continue
        plan = DeviceFaultPlan(plan_id=plan_id, device=fault[0],
                               fault=fault[1], config=fault[2])
        plans.setdefault(plan.device, []).append(plan)
        exporters[plan_id] = hook
        plan_id += 1
    return plans, exporters


def absorb_device_fault_results(exporters: dict[int, object],
                                results: list[tuple[int, bool, object]]) -> None:
    """Route child-side fault execution results back to their hooks."""
    for plan_id, fired, record in results:
        hook = exporters.get(plan_id)
        if hook is not None:
            hook.absorb_device_fault(fired, record)


class ExecutionBackend:
    """The contract between the trainer and its execution substrate.

    Lifecycle: the trainer calls :meth:`bind` once at construction;
    :meth:`step` / :meth:`broadcast` every iteration; :meth:`close` when
    the trainer is done (idempotent).  Backends read trainer state
    (replicas, arenas, loader, losses, seed, tracer) but never dispatch
    trainer hooks — hook order is the trainer's responsibility.
    """

    #: CLI name of the backend.
    name = "?"

    def __init__(self):
        self.trainer = None
        self._comm_fault_hook: CommFaultHook | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, trainer) -> None:
        """Attach to a trainer.  A backend serves exactly one trainer."""
        if self.trainer is not None and self.trainer is not trainer:
            raise RuntimeError(
                f"backend {self.name!r} is already bound to another trainer")
        self.trainer = trainer

    def close(self) -> None:
        """Release backend resources (processes, shared memory)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The per-iteration contract
    # ------------------------------------------------------------------
    def step(self, iteration: int) -> tuple[float, float]:
        """Run every device's forward/backward and reduce gradients into
        the master replica; returns shard-averaged ``(loss, acc)``."""
        raise NotImplementedError

    def broadcast(self) -> None:
        """Copy master parameters into every other replica."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Fault surface
    # ------------------------------------------------------------------
    def set_comm_fault_hook(self, hook: CommFaultHook | None) -> None:
        """Arm/disarm the link-fault site: ``hook`` perturbs the reduced
        gradient buffer after averaging, before the optimizer sees it.
        Both backends apply it at the same mathematical point, so comm
        faults propagate identically under either."""
        self._comm_fault_hook = hook

    def _apply_comm_fault(self, reduced: np.ndarray) -> None:
        """Apply the armed comm-fault hook (if any) to ``reduced`` in
        place.  Shared by both backends' reduction paths."""
        if self._comm_fault_hook is None:
            return
        faulty = self._comm_fault_hook(reduced)
        if faulty is not reduced:
            np.copyto(reduced, faulty)

    # ------------------------------------------------------------------
    # State-restore notification
    # ------------------------------------------------------------------
    def on_state_restored(self) -> None:
        """Called after an external restore of trainer state (recovery
        rewind, checkpoint load) so the backend can resynchronize any
        state living outside the parent process.  In-process: no-op."""


def build_backend(backend, trainer) -> ExecutionBackend:
    """Resolve a backend argument (name or instance) and bind it.

    ``backend`` may be a name from :data:`BACKEND_NAMES` or an already
    constructed :class:`ExecutionBackend` (the way to pass options such
    as collective timeouts or chaos plans).
    """
    from repro.backend.batched import BatchedBackend
    from repro.backend.inprocess import InProcessBackend
    from repro.backend.multiprocess import MultiProcessBackend

    if isinstance(backend, ExecutionBackend):
        backend.bind(trainer)
        return backend
    if backend == "inprocess":
        built = InProcessBackend()
    elif backend == "multiprocess":
        built = MultiProcessBackend()
    elif backend == "batched":
        built = BatchedBackend()
    else:
        raise ValueError(
            f"unknown execution backend {backend!r}; known: "
            f"{', '.join(BACKEND_NAMES)}")
    built.bind(trainer)
    return built
