"""Experiment-batched execution backend: E experiments, one program.

The multiprocess backend parallelizes *devices* and loses to the
in-process loop on the paper's tiny NumPy models (IPC dominates).  This
backend scales the axis fault-injection campaigns actually consume —
*experiments* — by stacking E experiments x D devices into ``(E * D,
...)`` lane tensors and stepping them all with single vectorized NumPy
ops (see :mod:`repro.backend.batched_ops` for the kernels and
:mod:`repro.state.batched` for the ``(E, ...)`` arena layout).

Bit-identity contract: every experiment in a batch produces exactly the
traces it would produce alone on
:class:`~repro.backend.inprocess.InProcessBackend` — same losses, same
parameter bytes, same injected-fault and rollback behavior.  Three
design rules deliver that:

* kernels mirror the solo modules op-for-op per lane (batched_ops);
* the per-experiment phases that are cheap and stateful stay on the solo
  code path operating on that experiment's arena row views: loss
  objects, metrics, gradient averaging (the literal in-process reduction
  per experiment), comm-fault hooks, ``optimizer.step()``, checkpoint
  capture/rollback;
* models the kernels cannot mirror fall back to per-lane
  :func:`~repro.backend.base.device_step` — the solo loop body itself.

A :class:`BatchedBackend` constructed bare owns a private single
-experiment :class:`LaneGroup`, so ``--backend batched`` drops into any
trainer (the D device lanes still batch through one program).  Campaigns
share one group across E trainers and drive them with
:func:`run_lockstep`, which interleaves the trainers' iterations while
dispatching each trainer's hooks, records, and finiteness checks in the
exact order of ``SyncDataParallelTrainer.train``.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ExecutionBackend, device_step, reseed_random_layers
from repro.backend.batched_ops import LaneContext, compile_program
from repro.nn import config
from repro.nn.config import Precision
from repro.observe import DIVERGENCE, ITERATION_STATS, profile_scope
from repro.state import ExperimentStacks


class _Member:
    """One adopted experiment: its trainer, stack rows, and lane data."""

    __slots__ = ("trainer", "exp", "rows", "modules", "accum")

    def __init__(self, trainer, exp: int, rows: list[int],
                 modules: list[dict], accum: np.ndarray):
        self.trainer = trainer
        self.exp = exp
        self.rows = rows
        self.modules = modules
        self.accum = accum


class LaneGroup:
    """E experiments' lanes stepped together through one program.

    Owns the :class:`~repro.state.ExperimentStacks` and the compiled
    :class:`~repro.backend.batched_ops.BatchedProgram` (compiled once,
    from the first adopted trainer; all members share one workload
    layout, which adoption enforces via the arena index).
    """

    #: Max lanes per kernel sweep.  Stacking amortizes NumPy dispatch
    #: overhead, but past a point the im2col transients of a sweep spill
    #: out of cache and large batches get slower, not faster — so one
    #: compute round walks its experiments in chunks of this many lanes.
    #: Chunking is invisible numerically: lanes never mix arithmetic.
    lane_chunk = 8

    def __init__(self, capacity: int = 1):
        self.stacks = ExperimentStacks(capacity)
        self._members: dict[int, _Member] = {}
        self._program = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def adopt(self, trainer) -> _Member:
        if trainer.arenas is None:
            raise RuntimeError(
                "the batched backend requires the fused state arena "
                "(this workload's parameters could not be fused)")
        first = self.stacks.param is None
        exp = self.stacks.adopt(trainer.arenas, trainer.optimizer)
        member = _Member(
            trainer=trainer,
            exp=exp,
            rows=[self.stacks.row(exp, d) for d in range(trainer.num_devices)],
            modules=[dict(r.named_modules()) for r in trainer.replicas],
            accum=trainer.master_arena.scratch(),
        )
        self._members[id(trainer)] = member
        if first:
            x, _y = trainer.loader.shard_batch_at(0, 0, trainer.num_devices)
            self._program = compile_program(
                trainer.master, trainer.master_arena.index, x.shape)
        return member

    def member(self, trainer) -> _Member:
        return self._members[id(trainer)]

    @property
    def vectorized(self) -> bool:
        """Whether the compiled fast path is active (re-checked against
        the live compute precision every round)."""
        return (self._program is not None
                and config.get_compute_precision() is Precision.FP32)

    # ------------------------------------------------------------------
    # Training rounds
    # ------------------------------------------------------------------
    def compute(self, entries: list[tuple]) -> list[tuple[float, float]]:
        """Run one (forward, loss, backward, reduce) round for every
        ``(trainer, iteration)`` entry; returns per-entry shard-averaged
        ``(loss, acc)`` exactly as ``InProcessBackend.step`` would."""
        if not self.vectorized:
            return [self._solo_entry(trainer, iteration)
                    for trainer, iteration in entries]
        results: list[tuple[float, float]] = []
        block: list[tuple] = []
        lanes = 0
        for entry in entries:
            devices = entry[0].num_devices
            if block and lanes + devices > self.lane_chunk:
                results.extend(self._compute_block(block))
                block, lanes = [], 0
            block.append(entry)
            lanes += devices
        if block:
            results.extend(self._compute_block(block))
        return results

    def _compute_block(self, entries: list[tuple]) -> list[tuple[float, float]]:
        lane_modules: list[dict] = []
        rows: list[int] = []
        xs: list[np.ndarray] = []
        ys: list[np.ndarray] = []
        for trainer, iteration in entries:
            member = self._members[id(trainer)]
            for d in range(trainer.num_devices):
                model = trainer.replicas[d]
                model.train()
                reseed_random_layers(model, (trainer.seed, iteration, d))
                x, y = trainer.loader.shard_batch_at(
                    iteration, d, trainer.num_devices)
                lane_modules.append(member.modules[d])
                rows.append(member.rows[d])
                xs.append(x)
                ys.append(y)
        ctx = LaneContext(lane_modules, rows, self.stacks.param,
                          self.stacks.grad, training=True)
        x_stack = np.stack(xs)
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            out = self._program.forward(ctx, x_stack)
            lane_losses = []
            lane = 0
            for trainer, _iteration in entries:
                for d in range(trainer.num_devices):
                    lane_losses.append(
                        trainer.losses[d].forward(out[lane], ys[lane]))
                    lane += 1
            self.stacks.grad[ctx.rows] = 0.0
            grad_in = np.stack([
                trainer.losses[d].backward()
                for trainer, _iteration in entries
                for d in range(trainer.num_devices)
            ])
            self._program.backward(ctx, grad_in)
        # Metrics outside the errstate scope, mirroring device_step.
        results = []
        lane = 0
        for trainer, _iteration in entries:
            total_loss = 0.0
            total_acc = 0.0
            for _d in range(trainer.num_devices):
                total_loss += float(lane_losses[lane])
                total_acc += float(trainer.spec.metric(out[lane], ys[lane]))
                lane += 1
            self._reduce(trainer)
            results.append((total_loss / trainer.num_devices,
                            total_acc / trainer.num_devices))
        return results

    def _reduce(self, trainer) -> None:
        """The in-process gradient reduction, verbatim, on this
        experiment's arena row views (including its comm-fault site)."""
        member = self._members[id(trainer)]
        accum = member.accum
        accum.fill(0.0)
        with np.errstate(over="ignore", invalid="ignore"):
            for device in range(trainer.num_devices):
                accum += trainer.arenas[device].grad
        inv = 1.0 / trainer.num_devices
        with profile_scope("sync.grad_average"), \
                np.errstate(over="ignore", invalid="ignore"):
            np.multiply(accum, inv, out=trainer.master_arena.grad)
            trainer.backend._apply_comm_fault(trainer.master_arena.grad)

    def _solo_entry(self, trainer, iteration: int) -> tuple[float, float]:
        """Per-lane fallback: the literal in-process step for one
        experiment (unbatchable model or non-FP32 precision)."""
        total_loss = 0.0
        total_acc = 0.0
        member = self._members[id(trainer)]
        accum = member.accum
        accum.fill(0.0)
        for device in range(trainer.num_devices):
            loss, acc = device_step(trainer, device, iteration)
            total_loss += loss
            total_acc += acc
            with np.errstate(over="ignore", invalid="ignore"):
                accum += trainer.arenas[device].grad
        inv = 1.0 / trainer.num_devices
        with profile_scope("sync.grad_average"), \
                np.errstate(over="ignore", invalid="ignore"):
            np.multiply(accum, inv, out=trainer.master_arena.grad)
            trainer.backend._apply_comm_fault(trainer.master_arena.grad)
        return total_loss / trainer.num_devices, total_acc / trainer.num_devices

    # ------------------------------------------------------------------
    # Evaluation rounds
    # ------------------------------------------------------------------
    def evaluate_many(self, trainers: list) -> list[float]:
        """Batched mirror of ``SyncDataParallelTrainer.evaluate`` for the
        trainers' eval-device lanes: same chunking, same per-chunk metric
        and weight accumulation, one stacked forward per chunk."""
        if not self.vectorized:
            return [trainer.evaluate() for trainer in trainers]
        batch = trainers[0].spec.batch_size
        n = len(trainers[0].spec.test_data)
        if any(t.spec.batch_size != batch or len(t.spec.test_data) != n
               for t in trainers):
            return [trainer.evaluate() for trainer in trainers]
        if len(trainers) > self.lane_chunk:
            scores: list[float] = []
            for start in range(0, len(trainers), self.lane_chunk):
                scores.extend(self.evaluate_many(
                    trainers[start:start + self.lane_chunk]))
            return scores
        lane_modules = []
        rows = []
        for trainer in trainers:
            member = self._members[id(trainer)]
            device = trainer.eval_device
            trainer.replicas[device].eval()
            lane_modules.append(member.modules[device])
            rows.append(member.rows[device])
        ctx = LaneContext(lane_modules, rows, self.stacks.param,
                          self.stacks.grad, training=False)
        metrics: list[list] = [[] for _ in trainers]
        weights: list[int] = []
        for start in range(0, n, batch):
            x_stack = np.stack([
                t.spec.test_data.inputs[start:start + batch] for t in trainers])
            with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
                out = self._program.forward(ctx, x_stack)
            for lane, trainer in enumerate(trainers):
                y = trainer.spec.test_data.targets[start:start + batch]
                metrics[lane].append(trainer.spec.metric(out[lane], y))
            weights.append(x_stack.shape[1])
        for trainer in trainers:
            trainer.replicas[trainer.eval_device].train()
        return [
            float(np.average(m, weights=weights)) if m else 0.0
            for m in metrics
        ]


class BatchedBackend(ExecutionBackend):
    """Vectorized experiment-stacked backend (``--backend batched``)."""

    name = "batched"
    #: Device work happens in this process on parent-side replica
    #: modules, so injector hooks arm normally (per-lane masking happens
    #: inside the kernels).
    local_device_work = True

    def __init__(self, group: LaneGroup | None = None):
        super().__init__()
        self._group = group

    @property
    def group(self) -> LaneGroup | None:
        return self._group

    def bind(self, trainer) -> None:
        super().bind(trainer)
        if self._group is None:
            self._group = LaneGroup(capacity=1)
        self._group.adopt(trainer)

    def step(self, iteration: int) -> tuple[float, float]:
        return self._group.compute([(self.trainer, iteration)])[0]

    def broadcast(self) -> None:
        trainer = self.trainer
        master = trainer.master_arena.param
        for arena in trainer.arenas[1:]:
            np.copyto(arena.param, master)


class _LockstepRun:
    __slots__ = ("trainer", "end", "t", "loss", "acc")

    def __init__(self, trainer, end: int):
        self.trainer = trainer
        self.end = end
        self.t = 0
        self.loss = 0.0
        self.acc = 0.0


def run_lockstep(group: LaneGroup, trainers: list, budgets: list[int]) -> list:
    """Drive E trainers through ``budgets`` iterations in lockstep.

    Per experiment this replays ``SyncDataParallelTrainer.train`` in its
    exact order — before_iteration, backend step, after_backward,
    optimizer step, after_step, broadcast, condition probes, records,
    trace events, evaluation, after_iteration, recovery/finiteness
    bookkeeping — so hooks (fault injectors, detectors, recovery) behave
    identically to a solo run.  Across experiments, iterations advance
    together; an experiment whose recovery hook rewinds its iteration
    counter simply trails its batch-mates (batch shards and reseeding are
    pure functions of the iteration, so divergent counters are exact),
    and experiments leave the round set when they diverge non-finite or
    exhaust their budget.  Returns each trainer's ConvergenceRecord.
    """
    runs = [_LockstepRun(trainer, trainer.iteration + int(budget))
            for trainer, budget in zip(trainers, budgets)]
    active = [run for run in runs if run.trainer.iteration < run.end]
    while active:
        for run in active:
            run.t = run.trainer.iteration
            run.trainer._dispatch("before_iteration", run.t)
        results = group.compute([(run.trainer, run.t) for run in active])
        evaluating: list[_LockstepRun] = []
        for run, (loss, acc) in zip(active, results):
            trainer = run.trainer
            run.loss, run.acc = loss, acc
            trainer._dispatch("after_backward", run.t)
            with profile_scope("optim.step"):
                trainer.optimizer.step()
            trainer._dispatch("after_step", run.t)
            with profile_scope("sync.broadcast"):
                trainer.backend.broadcast()
            hist = trainer.history_magnitude() if trainer.track_conditions else None
            mvar = trainer.mvar_magnitude() if trainer.track_conditions else None
            trainer.record.record_train(run.t, loss, acc, hist, mvar)
            if trainer.tracer.enabled:
                trainer.tracer.emit(ITERATION_STATS, iteration=run.t,
                                    loss=float(loss), acc=float(acc),
                                    history_magnitude=hist,
                                    mvar_magnitude=mvar)
            if trainer.test_every and (run.t + 1) % trainer.test_every == 0:
                evaluating.append(run)
        if evaluating:
            scores = group.evaluate_many([run.trainer for run in evaluating])
            for run, score in zip(evaluating, scores):
                run.trainer.record.record_test(run.t, score)
        still_active: list[_LockstepRun] = []
        for run in active:
            trainer = run.trainer
            trainer._dispatch("after_iteration", run.t, run.loss, run.acc)
            trainer.iteration += 1
            if trainer._just_recovered:
                trainer._just_recovered = False
            elif not trainer._state_is_finite(run.loss):
                trainer.record.mark_nonfinite(run.t)
                trainer.tracer.emit(DIVERGENCE, iteration=run.t,
                                    loss=float(run.loss))
                if trainer.stop_on_nonfinite:
                    continue
            if trainer.iteration < run.end:
                still_active.append(run)
        active = still_active
    return [run.trainer.record for run in runs]
