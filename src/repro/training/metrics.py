"""Convergence recording.

Mirrors the paper's measurement protocol (Sec. 3.3): "we captured the
convergence trend by recording the training loss and accuracy values in
every training iteration, as well as the test accuracy once every 100
training iterations" (scaled down here).  The resulting
:class:`ConvergenceRecord` is the input to the outcome classifier
(:mod:`repro.core.analysis.classify`).
"""

from __future__ import annotations

import numpy as np


class ConvergenceRecord:
    """Per-iteration training trace plus periodic test evaluations."""

    def __init__(self):
        self.iterations: list[int] = []
        self.train_loss: list[float] = []
        self.train_acc: list[float] = []
        self.test_iterations: list[int] = []
        self.test_acc: list[float] = []
        #: Largest |optimizer history| observed each iteration (if tracked).
        self.history_magnitude: list[float] = []
        #: Largest |BatchNorm moving statistic| each iteration (if tracked).
        self.mvar_magnitude: list[float] = []
        #: Iteration at which a non-finite loss/weight was first observed.
        self.nonfinite_at: int | None = None
        #: Iteration at which a replica process was lost (multi-process
        #: backend), and the device that died.
        self.replica_lost_at: int | None = None
        self.replica_lost_device: int | None = None
        #: Iterations at which the hardware-failure detector fired.
        self.detections: list[int] = []
        #: Iterations at which a recovery re-execution was performed.
        self.recoveries: list[int] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_train(self, iteration: int, loss: float, acc: float,
                     history_mag: float | None = None,
                     mvar_mag: float | None = None) -> None:
        self.iterations.append(int(iteration))
        self.train_loss.append(float(loss))
        self.train_acc.append(float(acc))
        if history_mag is not None:
            self.history_magnitude.append(float(history_mag))
        if mvar_mag is not None:
            self.mvar_magnitude.append(float(mvar_mag))

    def record_test(self, iteration: int, acc: float) -> None:
        self.test_iterations.append(int(iteration))
        self.test_acc.append(float(acc))

    def mark_nonfinite(self, iteration: int) -> None:
        if self.nonfinite_at is None:
            self.nonfinite_at = int(iteration)

    def mark_replica_lost(self, iteration: int, device: int) -> None:
        if self.replica_lost_at is None:
            self.replica_lost_at = int(iteration)
            self.replica_lost_device = int(device)

    def truncate_to(self, iteration: int) -> None:
        """Drop all entries at or after ``iteration`` (used when recovery
        rewinds the trainer and the iterations are re-executed)."""
        keep = sum(1 for i in self.iterations if i < iteration)
        del self.iterations[keep:]
        del self.train_loss[keep:]
        del self.train_acc[keep:]
        del self.history_magnitude[keep:]
        del self.mvar_magnitude[keep:]
        keep_test = sum(1 for i in self.test_iterations if i < iteration)
        del self.test_iterations[keep_test:]
        del self.test_acc[keep_test:]
        if self.nonfinite_at is not None and self.nonfinite_at >= iteration:
            self.nonfinite_at = None

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    def final_train_accuracy(self, window: int = 10) -> float:
        """Mean training accuracy over the last ``window`` iterations."""
        if not self.train_acc:
            return 0.0
        return float(np.mean(self.train_acc[-window:]))

    def final_test_accuracy(self, window: int = 3) -> float:
        if not self.test_acc:
            return 0.0
        return float(np.mean(self.test_acc[-window:]))

    def train_accuracy_array(self) -> np.ndarray:
        return np.asarray(self.train_acc, dtype=np.float64)

    def test_accuracy_array(self) -> np.ndarray:
        return np.asarray(self.test_acc, dtype=np.float64)

    def loss_array(self) -> np.ndarray:
        return np.asarray(self.train_loss, dtype=np.float64)

    def to_dict(self) -> dict:
        """JSON-serializable summary (used by campaign result dumps)."""
        return {
            "iterations": self.iterations,
            "train_loss": self.train_loss,
            "train_acc": self.train_acc,
            "test_iterations": self.test_iterations,
            "test_acc": self.test_acc,
            "nonfinite_at": self.nonfinite_at,
            "replica_lost_at": self.replica_lost_at,
            "replica_lost_device": self.replica_lost_device,
            "detections": self.detections,
            "recoveries": self.recoveries,
        }
