"""Training-state checkpoints.

Used in two roles:

* **Campaign baselines** — an FI campaign trains a workload fault-free to
  the injection window once, snapshots the full trainer state, and resumes
  from the snapshot for every injection experiment (this is how the
  paper's artifact uses pre-trained checkpoints per epoch).
* **The checkpointing baseline** of Sec. 5.3 — a checkpoint per epoch,
  whose recovery cost (re-training from the last epoch boundary) the
  paper compares against two-iteration re-execution (up to ~500x).

Capture strategy
----------------
When the trainer carries a fused state layer (:mod:`repro.state`), a
snapshot is **one buffer copy per state class**: each replica's fused
parameter buffer, each optimizer slot segment, plus the small per-device
extra state (BatchNorm moving statistics — deliberately outside the
arena, because they are never averaged across devices and their
per-device locality is the LowTestAccuracy mechanism, Sec. 4.3.3).  This
is what makes the always-on per-iteration snapshot ring of the recovery
manager cheap (see ``benchmarks/bench_state_overhead.py``).

The legacy dict representation (``replica_states`` / ``optimizer_state``)
remains available on every checkpoint: for fused captures it is
materialized lazily as views into the stored buffers, so existing
consumers (corruption analyses, campaign tooling) keep working unchanged.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro.observe import profile_scope


def _ndarray_leaf_bytes(value) -> int:
    """Total bytes of every ndarray leaf in a nested list/tuple/dict."""
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, dict):
        return sum(_ndarray_leaf_bytes(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(_ndarray_leaf_bytes(v) for v in value)
    return 0


class _FusedCapture:
    """The raw-buffer form of a snapshot taken from an arena trainer."""

    def __init__(self, trainer):
        arenas = trainer.arenas
        self.layout = arenas[0].index
        self.param_bufs = [arena.param.copy() for arena in arenas]
        # Per replica: [(module_name, {key: copy}), ...] over the arena's
        # cached stateful-module list — the hot path of per-iteration
        # capture, so no module-tree walk and no intermediate dicts.
        self.extra = [
            [
                (mod_name, {k: v.copy() for k, v in module.extra_state().items()})
                for mod_name, module in arena.stateful_modules
            ]
            for arena in arenas
        ]
        optimizer = trainer.optimizer
        self.opt_iteration = optimizer.iteration
        self.opt_lr = optimizer.lr
        self.opt_slots = {
            name: buf.copy() for name, buf in optimizer._fused_slots.items()
        }

    def _views(self, buf: np.ndarray) -> dict[str, np.ndarray]:
        return {
            name: buf[e.offset : e.offset + e.size].reshape(e.shape)
            for name, e in self.layout.items()
        }

    def replica_state(self, device: int) -> dict[str, np.ndarray]:
        """Materialize one replica's ``state_dict``-shaped mapping.

        Array values are views into the stored buffers: reads see the
        captured state and in-place writes (e.g. corruption studies)
        stay coherent with the fused restore path.
        """
        out = {
            f"param:{name}": view
            for name, view in self._views(self.param_bufs[device]).items()
        }
        for mod_name, state in self.extra[device]:
            for key, value in state.items():
                out[f"state:{mod_name}:{key}"] = value
        return out

    def optimizer_state(self) -> dict:
        out: dict = {"iteration": self.opt_iteration, "lr": self.opt_lr}
        for name, buf in self.opt_slots.items():
            out[name] = list(self._views(buf).values())
        return out

    def restorable_into(self, trainer) -> bool:
        """True if ``trainer`` can take the raw buffers directly."""
        return (
            trainer.arenas is not None
            and trainer.master_arena.index == self.layout
            and set(trainer.optimizer._fused_slots) == set(self.opt_slots)
            and [name for name, _ in trainer.master_arena.stateful_modules]
            == [name for name, _ in self.extra[0]]
        )

    def restore(self, trainer) -> None:
        for arena, buf in zip(trainer.arenas, self.param_bufs):
            np.copyto(arena.param, buf)
        for arena, extra in zip(trainer.arenas, self.extra):
            for (_, module), (_, state) in zip(arena.stateful_modules, extra):
                module.load_extra_state(
                    {k: np.array(v, copy=True) for k, v in state.items()}
                )
        optimizer = trainer.optimizer
        optimizer.iteration = int(self.opt_iteration)
        optimizer.lr = float(self.opt_lr)
        for name, buf in self.opt_slots.items():
            np.copyto(optimizer._fused_slots[name], buf)

    def nbytes(self) -> int:
        total = sum(buf.nbytes for buf in self.param_bufs)
        total += sum(buf.nbytes for buf in self.opt_slots.values())
        total += _ndarray_leaf_bytes(self.extra)
        return total


class Checkpoint:
    """A deep snapshot of trainer state at an iteration boundary."""

    def __init__(self, iteration: int, replica_states: list[dict] | None = None,
                 optimizer_state: dict | None = None):
        self.iteration = int(iteration)
        self._replica_states = replica_states
        self._optimizer_state = optimizer_state
        self._fused: _FusedCapture | None = None

    @classmethod
    def capture(cls, trainer) -> "Checkpoint":
        """Snapshot a :class:`SyncDataParallelTrainer`.

        Fused-buffer capture when the trainer has a state arena; the
        scattered per-array walk otherwise."""
        with profile_scope("state.snapshot"):
            if getattr(trainer, "arenas", None) is not None:
                ckpt = cls(trainer.iteration)
                ckpt._fused = _FusedCapture(trainer)
                return ckpt
            return cls.capture_scattered(trainer)

    @classmethod
    def capture_scattered(cls, trainer) -> "Checkpoint":
        """The pre-arena capture path: one copy per array via
        ``state_dict()``.  Kept for non-arena trainers and as the
        before/after baseline in ``benchmarks/bench_state_overhead.py``."""
        replica_states = [replica.state_dict() for replica in trainer.replicas]
        return cls(
            iteration=trainer.iteration,
            replica_states=replica_states,
            optimizer_state=copy.deepcopy(trainer.optimizer.state_dict()),
        )

    # ------------------------------------------------------------------
    # Dict-shaped views (lazy for fused captures)
    # ------------------------------------------------------------------
    @property
    def replica_states(self) -> list[dict]:
        if self._replica_states is None and self._fused is not None:
            self._replica_states = [
                self._fused.replica_state(device)
                for device in range(len(self._fused.param_bufs))
            ]
        return self._replica_states

    @property
    def optimizer_state(self) -> dict:
        if self._optimizer_state is None and self._fused is not None:
            self._optimizer_state = self._fused.optimizer_state()
        return self._optimizer_state

    @property
    def num_replicas(self) -> int:
        if self._fused is not None:
            return len(self._fused.param_bufs)
        return len(self._replica_states)

    def restore(self, trainer) -> None:
        """Load this snapshot back into a trainer (in place)."""
        if len(trainer.replicas) != self.num_replicas:
            raise ValueError(
                f"checkpoint has {self.num_replicas} replicas, "
                f"trainer has {len(trainer.replicas)}"
            )
        with profile_scope("state.restore"):
            if self._fused is not None and self._fused.restorable_into(trainer):
                self._fused.restore(trainer)
                trainer.iteration = self.iteration
                return
            for replica, state in zip(trainer.replicas, self.replica_states):
                replica.load_state_dict(state)
            trainer.optimizer.load_state_dict(
                copy.deepcopy(self.optimizer_state))
            trainer.iteration = self.iteration

    def nbytes(self) -> int:
        """Approximate snapshot size: every ndarray leaf, including
        dict- or nested-valued optimizer slots."""
        if self._fused is not None:
            return self._fused.nbytes()
        total = _ndarray_leaf_bytes(self.replica_states)
        for key, value in self.optimizer_state.items():
            if key not in ("iteration", "lr"):
                total += _ndarray_leaf_bytes(value)
        return total


class CheckpointStore:
    """Rolling store of epoch-boundary checkpoints (the Sec. 5.3 baseline)."""

    def __init__(self, every: int, keep: int = 3):
        if every <= 0:
            raise ValueError(f"checkpoint interval must be positive: {every}")
        self.every = int(every)
        self.keep = int(keep)
        self.checkpoints: list[Checkpoint] = []
        #: Wall-clock seconds spent capturing checkpoints (overhead metric).
        self.capture_seconds = 0.0

    def maybe_capture(self, trainer) -> Checkpoint | None:
        """Capture a checkpoint if the trainer sits on a boundary."""
        if trainer.iteration % self.every != 0:
            return None
        start = time.perf_counter()
        ckpt = Checkpoint.capture(trainer)
        self.capture_seconds += time.perf_counter() - start
        self.checkpoints.append(ckpt)
        if len(self.checkpoints) > self.keep:
            self.checkpoints.pop(0)
        return ckpt

    def latest_before(self, iteration: int) -> Checkpoint | None:
        """Most recent checkpoint strictly before ``iteration``."""
        best = None
        for ckpt in self.checkpoints:
            if ckpt.iteration < iteration and (best is None or ckpt.iteration > best.iteration):
                best = ckpt
        return best

    # Hook interface: capture on iteration boundaries automatically.
    def before_iteration(self, trainer, iteration: int) -> None:
        """Trainer hook: capture on iteration boundaries."""
        self.maybe_capture(trainer)
