"""Training-state checkpoints.

Used in two roles:

* **Campaign baselines** — an FI campaign trains a workload fault-free to
  the injection window once, snapshots the full trainer state, and resumes
  from the snapshot for every injection experiment (this is how the
  paper's artifact uses pre-trained checkpoints per epoch).
* **The checkpointing baseline** of Sec. 5.3 — a checkpoint per epoch,
  whose recovery cost (re-training from the last epoch boundary) the
  paper compares against two-iteration re-execution (up to ~500x).
"""

from __future__ import annotations

import copy

import numpy as np


class Checkpoint:
    """A deep snapshot of trainer state at an iteration boundary."""

    def __init__(self, iteration: int, replica_states: list[dict],
                 optimizer_state: dict):
        self.iteration = int(iteration)
        self.replica_states = replica_states
        self.optimizer_state = optimizer_state

    @classmethod
    def capture(cls, trainer) -> "Checkpoint":
        """Snapshot a :class:`SyncDataParallelTrainer`."""
        replica_states = [replica.state_dict() for replica in trainer.replicas]
        return cls(
            iteration=trainer.iteration,
            replica_states=replica_states,
            optimizer_state=copy.deepcopy(trainer.optimizer.state_dict()),
        )

    def restore(self, trainer) -> None:
        """Load this snapshot back into a trainer (in place)."""
        if len(trainer.replicas) != len(self.replica_states):
            raise ValueError(
                f"checkpoint has {len(self.replica_states)} replicas, "
                f"trainer has {len(trainer.replicas)}"
            )
        for replica, state in zip(trainer.replicas, self.replica_states):
            replica.load_state_dict(state)
        trainer.optimizer.load_state_dict(copy.deepcopy(self.optimizer_state))
        trainer.iteration = self.iteration

    def nbytes(self) -> int:
        """Approximate snapshot size (for overhead reporting)."""
        total = 0
        for state in self.replica_states:
            total += sum(np.asarray(v).nbytes for v in state.values())
        for value in self.optimizer_state.values():
            if isinstance(value, list):
                total += sum(np.asarray(v).nbytes for v in value)
        return total


class CheckpointStore:
    """Rolling store of epoch-boundary checkpoints (the Sec. 5.3 baseline)."""

    def __init__(self, every: int, keep: int = 3):
        if every <= 0:
            raise ValueError(f"checkpoint interval must be positive: {every}")
        self.every = int(every)
        self.keep = int(keep)
        self.checkpoints: list[Checkpoint] = []
        #: Wall-clock seconds spent capturing checkpoints (overhead metric).
        self.capture_seconds = 0.0

    def maybe_capture(self, trainer) -> Checkpoint | None:
        """Capture a checkpoint if the trainer sits on a boundary."""
        if trainer.iteration % self.every != 0:
            return None
        import time

        start = time.perf_counter()
        ckpt = Checkpoint.capture(trainer)
        self.capture_seconds += time.perf_counter() - start
        self.checkpoints.append(ckpt)
        if len(self.checkpoints) > self.keep:
            self.checkpoints.pop(0)
        return ckpt

    def latest_before(self, iteration: int) -> Checkpoint | None:
        """Most recent checkpoint strictly before ``iteration``."""
        best = None
        for ckpt in self.checkpoints:
            if ckpt.iteration < iteration and (best is None or ckpt.iteration > best.iteration):
                best = ckpt
        return best

    # Hook interface: capture on iteration boundaries automatically.
    def before_iteration(self, trainer, iteration: int) -> None:
        """Trainer hook: capture on iteration boundaries."""
        self.maybe_capture(trainer)
