"""Training engine: convergence recording and checkpoint utilities."""

from repro.training.checkpoints import Checkpoint, CheckpointStore
from repro.training.metrics import ConvergenceRecord

__all__ = ["Checkpoint", "CheckpointStore", "ConvergenceRecord"]
