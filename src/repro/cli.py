"""Command-line interface for the reproduction.

Mirrors the paper artifact's entry points (train a workload, replay an
injection, evaluate the technique) as subcommands::

    python -m repro train resnet --iterations 60
    python -m repro train resnet --backend multiprocess --devices 2
    python -m repro inject resnet --site 1.conv1 --kind weight_grad \\
        --group 1 --iteration 20 --device 1
    python -m repro inject resnet --kind comm --bit 30 --iteration 20
    python -m repro campaign resnet --experiments 40
    python -m repro campaign resnet --experiments 400 --parallel 4 \\
        --store results.jsonl --resume --progress-every 20 --trace --detect
    python -m repro campaign resnet --experiments 400 --parallel 4 \\
        --store results.jsonl --serve 9100 --slo slo_rules.json
    python -m repro report results.jsonl [--json]
    python -m repro monitor results.jsonl --follow
    python -m repro monitor results.jsonl --once --max-quarantine-rate 0.1
    python -m repro monitor results.jsonl --serve 9100 --slo slo_rules.json
    python -m repro serve-infer resnet --port 9200 --fault-rate 1e-3 \\
        --store serving.json
    python -m repro loadgen http://127.0.0.1:9200 --rps 200 --duration 10
    python -m repro bench record BENCH_*.json --history BENCH_HISTORY.jsonl
    python -m repro bench compare --history BENCH_HISTORY.jsonl
    python -m repro merge merged.jsonl shard0.jsonl shard1.jsonl
    python -m repro validate --experiments 400
    python -m repro mitigate resnet --iteration 20 --trace run.trace.jsonl
    python -m repro trace run.trace.jsonl --type fault_injected
    python -m repro trace results.trace.jsonl --analyze
    python -m repro replay results.trace.jsonl <experiment-key> --verify-trace
    python -m repro replay --corpus tests/data/replay_corpus.json
    python -m repro diff-campaign results_a.jsonl results_b.jsonl [--json]
    python -m repro profile resnet --iterations 20

Every command prints an artifact-style text report (see
:mod:`repro.core.analysis.report`) and exits non-zero on hard failures.
"""

from __future__ import annotations

import argparse
import sys

from repro.accelerator.ffs import FFDescriptor
from repro.backend import BACKEND_NAMES, MultiProcessBackend, backend_choices_help
from repro.core.analysis.classify import classify_outcome
from repro.core.analysis.report import (
    campaign_report_dict,
    render_campaign,
    render_convergence,
    render_trace_analysis,
    stable_floats,
)
from repro.core.faults import (
    COMM,
    LINK_SITE,
    Campaign,
    CommFaultInjector,
    FaultInjector,
    HardwareFault,
    OpSite,
    run_validation,
)
from repro.core.mitigation import (
    HardwareFailureDetector,
    MitigationHook,
    RecoveryManager,
)
from repro.distributed import SyncDataParallelTrainer
from repro.observe import (
    PROFILER,
    EVENT_TYPES,
    Tracer,
    read_trace,
    render_profile,
)
from repro.workloads import build_workload, workload_names


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", choices=["tiny", "small"], default="tiny",
                        help="workload scale (default: tiny)")
    parser.add_argument("--devices", type=int, default=4,
                        help="simulated training devices (default: 4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", choices=list(BACKEND_NAMES),
                        default="inprocess",
                        help="execution backend (bit-identical results; "
                             "default: inprocess) — "
                             + backend_choices_help())


def _make_backend(args, replica_trace: bool = True):
    """The backend argument for a trainer built from CLI args.

    Returns the plain backend name except for ``--backend multiprocess``
    combined with ``--trace PATH``, where a configured instance carrying
    the trace path is built so each replica process streams its own
    flight-recorder shard next to the exported trace.
    """
    name = getattr(args, "backend", "inprocess")
    if name != "multiprocess":
        return name
    trace = getattr(args, "trace", None)
    trace_path = trace if (replica_trace and isinstance(trace, str)) else None
    return MultiProcessBackend(trace_path=trace_path)


def _make_trainer(args, eval_device: int = 0,
                  stop_on_nonfinite: bool = True,
                  tracer: Tracer | None = None,
                  replica_trace: bool = True) -> SyncDataParallelTrainer:
    spec = build_workload(args.workload, size=args.size, seed=args.seed)
    return SyncDataParallelTrainer(
        spec, num_devices=args.devices, seed=args.seed,
        test_every=max(spec.iterations // 6, 1), eval_device=eval_device,
        stop_on_nonfinite=stop_on_nonfinite, tracer=tracer,
        backend=_make_backend(args, replica_trace=replica_trace),
    )


def _make_tracer(args, command: str) -> Tracer | None:
    """A tracer for commands carrying ``--trace PATH`` (else ``None``)."""
    if not getattr(args, "trace", None):
        return None
    return Tracer(meta={"command": command, "workload": args.workload,
                        "size": args.size, "devices": args.devices,
                        "seed": args.seed})


def _export_trace(tracer: Tracer | None, args) -> None:
    if tracer is None:
        return
    count = tracer.export(args.trace)
    note = f" ({tracer.dropped} dropped by the ring)" if tracer.dropped else ""
    print(f"trace: {count} events -> {args.trace}{note}")


def _make_fault(args) -> HardwareFault:
    if args.bit is not None:
        ff = FFDescriptor("datapath", bit=args.bit)
    elif args.group is not None:
        ff = FFDescriptor("global_control", group=args.group, has_feedback=True)
    else:
        ff = FFDescriptor("local_control", has_feedback=True)
    if args.kind == COMM:
        # Link faults hit the one logical reduction link, not a layer.
        site = OpSite(LINK_SITE, COMM)
    else:
        site = OpSite(args.site, args.kind)
    return HardwareFault(ff=ff, site=site,
                         iteration=args.iteration, device=args.device,
                         seed=args.fault_seed)


def _make_injector(fault: HardwareFault):
    """The right injector hook for the fault's site kind."""
    if fault.site.kind == COMM:
        return CommFaultInjector(fault)
    return FaultInjector(fault)


def _report_replica_trace(trainer) -> None:
    """Print the merged per-replica trace path, if the backend wrote one."""
    path = getattr(trainer.backend, "replica_trace", None)
    if path is not None:
        print(f"replica trace: {path}")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def cmd_train(args) -> int:
    """``repro train``: fault-free training with a text report."""
    tracer = _make_tracer(args, "train")
    trainer = _make_trainer(args, tracer=tracer)
    try:
        trainer.train(args.iterations)
    finally:
        trainer.close()
    print(render_convergence(trainer.record, every=args.report_every,
                             title=f"{args.workload} fault-free"))
    _export_trace(tracer, args)
    _report_replica_trace(trainer)
    return 0


def cmd_inject(args) -> int:
    """``repro inject``: one fault, classified against a clean run."""
    tracer = _make_tracer(args, "inject")
    trainer = _make_trainer(args, eval_device=args.device,
                            stop_on_nonfinite=False, tracer=tracer)
    # The clean reference never writes replica shards: both trainers
    # share the --trace directory and the shards are per-device files.
    reference = _make_trainer(args, replica_trace=False)
    reference.stop_on_nonfinite = True
    fault = _make_fault(args)
    injector = _make_injector(fault)
    trainer.add_hook(injector)
    total = args.iterations
    try:
        trainer.train(total)
        reference.train(total)
    finally:
        trainer.close()
        reference.close()
    print(render_convergence(trainer.record, every=args.report_every,
                             title=f"{args.workload} + {fault.describe()}"))
    if injector.record is not None:
        print(f"\nfault effect: {injector.record.num_faulty} elements, "
              f"max |value| {injector.record.max_abs_faulty():.3e}")
    report = classify_outcome(trainer.record, reference.record, fault.iteration)
    print(f"outcome: {report.outcome.value} (unexpected: {report.is_unexpected})")
    _export_trace(tracer, args)
    _report_replica_trace(trainer)
    return 0


def _progress_printer(every: int):
    """Progress callback printing a status line every ``every`` completions."""
    if every <= 0:
        return None
    last = [0]

    def on_progress(snapshot):
        if snapshot.done - last[0] >= every or snapshot.remaining == 0:
            last[0] = snapshot.done
            print(snapshot.render(), file=sys.stderr, flush=True)

    return on_progress


def cmd_campaign(args) -> int:
    """``repro campaign``: statistical FI with aggregate statistics."""
    if args.resume and not args.store:
        print("--resume requires --store", file=sys.stderr)
        return 2
    if args.trace and not args.store:
        print("--trace requires --store (shards and the merged campaign "
              "trace live next to it)", file=sys.stderr)
        return 2
    if args.experiment_batch > 1 and args.backend != "batched":
        print("--experiment-batch requires --backend batched",
              file=sys.stderr)
        return 2
    if args.serve is not None and not args.store:
        print("--serve requires --store (the telemetry series is "
              "persisted next to it)", file=sys.stderr)
        return 2
    if args.slo and args.serve is None:
        print("--slo requires --serve (rules evaluate over the live "
              "telemetry series)", file=sys.stderr)
        return 2

    telemetry = None
    if args.serve is not None:
        from repro.observe.slo import load_rules
        from repro.serve import CampaignTelemetry

        rules = load_rules(args.slo) if args.slo else []
        telemetry = CampaignTelemetry(
            store_path=args.store, port=args.serve,
            interval=args.serve_interval, rules=rules,
            meta={"workload": args.workload, "store": args.store})
        telemetry.start()
        print(f"telemetry: serving on {telemetry.url}", flush=True)

    spec = build_workload(args.workload, size=args.size, seed=args.seed)
    campaign = Campaign(spec, num_devices=args.devices, seed=args.seed,
                        test_every=max(spec.iterations // 6, 1),
                        detect=args.detect, backend=args.backend,
                        experiment_batch=args.experiment_batch)
    try:
        result = campaign.run(
            args.experiments, seed=args.campaign_seed,
            parallel=args.parallel, store=args.store, resume=args.resume,
            timeout=args.timeout, max_retries=args.retries,
            on_progress=_progress_printer(args.progress_every),
            on_engine=telemetry.on_engine if telemetry else None,
            trace=args.trace)
    finally:
        if telemetry is not None:
            telemetry.stop()
    print(render_campaign(result))
    report = result.engine_report
    if report is not None:
        print(f"engine: {report.executed} executed, {report.skipped} resumed, "
              f"{len(report.quarantined)} quarantined, {report.retries} "
              f"retries in {report.elapsed:.1f}s "
              f"({report.snapshot.throughput:.2f} exp/s, "
              f"{args.parallel} worker{'s' if args.parallel != 1 else ''})")
    if args.store:
        print(f"result store: {args.store}")
    if report is not None and report.trace_path is not None:
        print(f"campaign trace: {report.trace_path}")
    if telemetry is not None:
        if telemetry.series_path is not None:
            print(f"telemetry series: {telemetry.series_path} "
                  f"({telemetry.sampler.samples_taken} samples)")
        breached = telemetry.breached()
        if breached:
            print("slo: sustained breach of critical rule"
                  f"{'s' if len(breached) > 1 else ''}: "
                  + ", ".join(breached), file=sys.stderr)
            return 1
    return 0


def _inference_store_breakdown(experiments: list[dict]) -> dict[str, int]:
    """Masked/SDC/nonfinite counts for a ``kind="inference"`` store.

    Records written before the taxonomy landed lack ``outcome``; the
    experiment-level flags they do carry reconstruct it exactly.
    """
    from repro.core.analysis.classify import (
        classify_inference_experiment,
        inference_breakdown,
    )

    return inference_breakdown([
        r["payload"].get("outcome") or classify_inference_experiment(
            sdc=bool(r["payload"].get("sdc")),
            nonfinite=bool(r["payload"].get("nonfinite"))).value
        for r in experiments])


def cmd_report(args) -> int:
    """``repro report``: summarize a persistent result store."""
    import json

    from repro.engine import EXPERIMENT, QUARANTINE, read_records, store_to_campaign

    records = read_records(args.store)
    header = records[0]
    kind = header.get("kind", "campaign")
    experiments = [r for r in records[1:] if r["record"] == EXPERIMENT]
    quarantined = [r for r in records[1:] if r["record"] == QUARANTINE]
    meta = header.get("meta") or {}
    if args.json:
        payload = {
            "store": str(args.store),
            "kind": kind,
            "schema": header.get("schema"),
            "meta": meta,
            "experiments": len(experiments),
            "quarantined": {r["key"]: r.get("error", "")
                            for r in quarantined},
        }
        if kind == "campaign":
            payload["report"] = campaign_report_dict(
                store_to_campaign(args.store))
        elif kind == "inference":
            n = max(len(experiments), 1)
            breakdown = _inference_store_breakdown(experiments)
            payload["report"] = {
                "sdc_rate": sum(bool(r["payload"].get("sdc"))
                                for r in experiments) / n,
                "nonfinite_rate": sum(bool(r["payload"].get("nonfinite"))
                                      for r in experiments) / n,
                "masked_rate": breakdown.get("masked", 0) / n,
                "breakdown": breakdown,
            }
        print(json.dumps(stable_floats(payload), indent=2, sort_keys=True))
        return 0
    print(f"# store: {args.store}")
    print(f"kind {kind}, schema {header.get('schema')}, "
          f"{len(experiments)} experiments, {len(quarantined)} quarantined")
    if meta:
        print("meta: " + ", ".join(f"{k}={v}" for k, v in meta.items()))
    if kind == "campaign":
        print()
        print(render_campaign(store_to_campaign(args.store)))
    elif kind == "inference":
        n = max(len(experiments), 1)
        breakdown = _inference_store_breakdown(experiments)
        print("outcome breakdown (Table 5 taxonomy):")
        for name, count in sorted(breakdown.items()):
            print(f"  {name:<10} {count:>6}  ({count / n:.2%})")
    if quarantined:
        print("quarantined experiments:")
        for record in quarantined:
            print(f"  {record['key']}: {record.get('error', '?')}")
    return 0


def cmd_merge(args) -> int:
    """``repro merge``: merge partial result stores into one."""
    from repro.engine import merge_stores

    with merge_stores(args.inputs, args.output) as merged:
        print(f"merged {len(args.inputs)} stores into {args.output}: "
              f"{len(merged.completed)} experiments, "
              f"{len(merged.quarantined)} quarantined")
    return 0


def cmd_validate(args) -> int:
    """``repro validate``: software fault models vs micro-RTL."""
    summary = run_validation(num_experiments=args.experiments, seed=args.seed)
    print(f"RTL validation: {summary.total} experiments, "
          f"{summary.masked} masked, {summary.matched} matched, "
          f"{summary.mismatched} mismatched "
          f"(match rate {summary.match_rate:.1%})")
    return 0 if summary.mismatched == 0 else 1


def cmd_mitigate(args) -> int:
    """``repro mitigate``: inject under detection + recovery."""
    tracer = _make_tracer(args, "mitigate")
    trainer = _make_trainer(args, eval_device=args.device,
                            stop_on_nonfinite=False, tracer=tracer)
    fault = _make_fault(args)
    detector = HardwareFailureDetector()
    trainer.add_hook(_make_injector(fault))
    trainer.add_hook(MitigationHook(detector, RecoveryManager(strategy=args.strategy)))
    try:
        trainer.train(args.iterations)
    finally:
        trainer.close()
    print(render_convergence(trainer.record, every=args.report_every,
                             title=f"{args.workload} + fault + mitigation"))
    if detector.fired:
        print(f"\ndetected at iteration {detector.fired_at()} "
              f"(latency {detector.detection_latency(fault.iteration)}), "
              f"re-executed from {trainer.record.recoveries}")
    else:
        print("\nno detection event (the fault was masked or benign)")
    _export_trace(tracer, args)
    _report_replica_trace(trainer)
    return 0


def cmd_trace(args) -> int:
    """``repro trace``: render/filter an exported trace file."""
    trace = read_trace(args.file)
    print(f"# trace: {trace.path}")
    if trace.meta:
        print("meta: " + ", ".join(f"{k}={v}" for k, v in trace.meta.items()))
    print(f"{len(trace)} events recovered ({trace.emitted} emitted, "
          f"{trace.dropped} dropped by the ring)")
    if trace.truncated:
        print("WARNING: final line truncated (writer killed mid-record); "
              "all complete events above were recovered", file=sys.stderr)
    if args.analyze:
        from repro.observe import analysis

        print()
        print(render_trace_analysis(analysis.campaign_summary(trace)))
        return 0
    if args.summary:
        print()
        for event_type, count in sorted(trace.type_counts().items(),
                                        key=lambda kv: -kv[1]):
            print(f"  {event_type:<24} {count:>6}")
        return 0
    events = trace.events
    if args.type:
        events = [e for e in events if e.type == args.type]
    if args.min_iteration is not None:
        events = [e for e in events
                  if e.iteration is not None and e.iteration >= args.min_iteration]
    if args.max_iteration is not None:
        events = [e for e in events
                  if e.iteration is not None and e.iteration <= args.max_iteration]
    shown = events if args.limit is None else events[-args.limit:]
    if len(shown) < len(events):
        print(f"... ({len(events) - len(shown)} earlier events elided; "
              f"raise --limit to see them)")
    print()
    for event in shown:
        print(event.render())
    return 0


def cmd_monitor(args) -> int:
    """``repro monitor``: live dashboard over a store + worker shards."""
    import json
    import time
    from pathlib import Path

    from repro.engine import (
        collect,
        evaluate_alerts,
        render_html,
        render_markdown,
        render_text,
        snapshot_dict,
    )
    from repro.engine.monitor import monitor_flat_metrics
    from repro.observe.slo import evaluate_once, load_rules

    rules = load_rules(args.slo) if args.slo else []

    def observe():
        state = collect(args.store, stall_after=args.stall_after)
        evaluate_alerts(state,
                        max_quarantine_rate=args.max_quarantine_rate,
                        max_divergence_rate=args.max_divergence_rate)
        return state

    if args.serve is not None:
        from repro.serve import serve_monitor

        outcome = serve_monitor(
            args.store, port=args.serve, interval=args.interval,
            rules=rules, stall_after=args.stall_after,
            max_quarantine_rate=args.max_quarantine_rate,
            max_divergence_rate=args.max_divergence_rate,
            on_start=lambda url: print(f"telemetry: serving on {url}",
                                       flush=True),
            on_poll=lambda state: print(render_text(state) + "\n",
                                        flush=True))
        failures = list(outcome["alerts"])
        failures += [f"slo:{name}" for name in outcome["slo_breached"]]
        if failures:
            print("monitor: " + "; ".join(failures), file=sys.stderr)
            return 1
        return 0

    state = observe()
    if args.json:
        snapshot = snapshot_dict(state)
        if rules:
            statuses = evaluate_once(rules, monitor_flat_metrics(state))
            snapshot["slo"] = [s.to_dict() for s in statuses]
            firing = [s for s in statuses if s.firing]
        else:
            firing = []
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 1 if state.alerts or firing else 0
    if args.follow:
        try:
            while True:
                print(render_text(state), flush=True)
                if state.total is not None \
                        and state.attempted >= state.total:
                    break
                time.sleep(args.interval)
                state = observe()
                print(flush=True)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
    else:
        print(render_text(state))
    if args.html:
        Path(args.html).write_text(render_html(state), encoding="utf-8")
        print(f"html dashboard -> {args.html}")
    if args.markdown:
        Path(args.markdown).write_text(render_markdown(state),
                                       encoding="utf-8")
        print(f"markdown snapshot -> {args.markdown}")
    firing = [s for s in evaluate_once(rules, monitor_flat_metrics(state))
              if s.firing] if rules else []
    for status in firing:
        print(f"  SLO        {status.message()}")
    if state.alerts or firing:
        print("monitor: " + "; ".join(
            state.alerts + [s.message() for s in firing]), file=sys.stderr)
        return 1
    return 0


def _print_replay_report(report) -> None:
    events = {True: "match", False: "DIVERGED", None: "n/a"}[report.events_match]
    arena = {True: "match", False: "DIVERGED", None: "n/a"}[report.arena_match]
    status = "ok" if report.ok else "FAIL"
    print(f"{status:<5} {report.key}  backend={report.backend}  "
          f"outcome={report.outcome_replayed}"
          f"{'' if report.outcome_match else ' (recorded ' + str(report.outcome_recorded) + ')'}"
          f"  arena={arena}  events={events}")
    for mismatch in report.mismatches:
        print(f"      {mismatch}")


def cmd_serve_infer(args) -> int:
    """``repro serve-infer``: fault-injected inference serving."""
    import asyncio
    import json

    from repro.observe.slo import load_rules
    from repro.serving import InferenceSession, ServingEngine, run_service
    from repro.workloads.registry import build_workload

    spec = build_workload(args.workload, size=args.size, seed=args.seed)
    print(f"training {args.workload} ({args.size}) for serving...",
          flush=True)
    session = InferenceSession(spec, seed=args.seed,
                               train_iterations=args.train_iterations,
                               num_devices=args.devices)
    engine = ServingEngine(
        session, fault_rate=args.fault_rate, seed=args.fault_seed,
        max_batch=args.max_batch, max_wait_s=args.max_wait_ms / 1e3,
        queue_cap=args.queue_cap, shadow_rate=args.shadow_rate,
        recover=not args.no_recover)
    rules = load_rules(args.slo) if args.slo else None
    try:
        summary = asyncio.run(run_service(
            engine, host=args.host, port=args.port, store=args.store,
            rules=rules, interval=args.interval, duration=args.duration,
            announce=lambda message: print(message, flush=True)))
    except KeyboardInterrupt:
        print("\nserving interrupted", file=sys.stderr)
        return 130
    except OSError as exc:  # e.g. the requested port is already bound
        print(f"error: cannot serve on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    print(json.dumps(stable_floats(summary), indent=2, sort_keys=True))
    if summary["breached_critical"]:
        print("critical SLO breached: "
              + ", ".join(summary["breached_critical"]), file=sys.stderr)
        return 1
    return 0


def cmd_loadgen(args) -> int:
    """``repro loadgen``: open-loop load against a serve-infer endpoint."""
    import asyncio
    import json

    from repro.serving import render_loadgen, run_loadgen

    report = asyncio.run(run_loadgen(
        args.url, rps=args.rps, duration=args.duration,
        timeout=args.timeout, seed=args.seed))
    if args.json:
        print(json.dumps(stable_floats(report), indent=2, sort_keys=True))
    else:
        print(render_loadgen(report))
    return 0 if report["errors"] == 0 else 1


def cmd_replay(args) -> int:
    """``repro replay``: re-run recorded experiments bit-for-bit."""
    from repro import replay as rp

    if args.bless and not args.corpus:
        print("--bless only applies to --corpus replays", file=sys.stderr)
        return 2
    if args.corpus:
        corpus = rp.load_corpus(args.corpus)
        reports = rp.run_corpus(corpus, backend=args.backend,
                                verify_trace=args.verify_trace,
                                bless=args.bless)
        for report in reports:
            _print_replay_report(report)
        failed = [r for r in reports if not r.ok]
        if args.bless:
            rp.save_corpus(corpus, args.corpus)
            print(f"blessed {len(reports)} entries -> {args.corpus}"
                  + (f" ({len(failed)} pins changed)" if failed else
                     " (no pins changed)"))
            return 0
        print(f"replayed {len(reports)} corpus entries: "
              f"{len(reports) - len(failed)} ok, {len(failed)} failed")
        return 1 if failed else 0

    if not args.trace:
        print("error: a trace file (with an experiment key) or --corpus "
              "is required", file=sys.stderr)
        return 2
    if not args.key:
        keys = rp.replay_keys(args.trace)
        print(f"# {args.trace}: {len(keys)} replayable experiments")
        for key in keys:
            print(f"  {key}")
        print("re-run with one of these keys to replay it")
        return 0
    record = rp.replay_record(args.trace, args.key)
    report = rp.replay(record, backend=args.backend,
                       verify_trace=args.verify_trace)
    _print_replay_report(report)
    return 0 if report.ok else 1


def cmd_diff_campaign(args) -> int:
    """``repro diff-campaign``: outcome-taxonomy drift between stores."""
    import json

    from repro.replay import diff_campaigns, render_diff

    diff = diff_campaigns(args.store_a, args.store_b)
    if args.json:
        print(json.dumps(stable_floats(diff), indent=2, sort_keys=True))
    else:
        print(render_diff(diff))
    return 1 if diff["flip_count"] else 0


def cmd_bench_record(args) -> int:
    """``repro bench record``: fold BENCH artifacts into the history."""
    from pathlib import Path

    from repro.bench import record_artifacts

    artifacts = [Path(p) for p in args.artifacts]
    if not artifacts:
        artifacts = sorted(Path(".").glob("BENCH_*.json"))
    if not artifacts:
        print("no BENCH_*.json artifacts found (run the benchmarks first, "
              "or pass artifact paths)", file=sys.stderr)
        return 2
    records = record_artifacts(artifacts, args.history)
    sha = records[0]["provenance"]["git_sha"][:12] if records else "?"
    for record in records:
        metrics = record["metrics"]
        print(f"recorded {record['bench']}: {len(metrics)} metric"
              f"{'s' if len(metrics) != 1 else ''} @ {sha}")
    print(f"bench history: {args.history}")
    return 0


def cmd_bench_compare(args) -> int:
    """``repro bench compare``: diff the newest runs, gate regressions."""
    import json
    from pathlib import Path

    from repro.bench import compare

    if not Path(args.history).exists():
        print(f"no bench history at {args.history}; nothing to compare",
              file=sys.stderr)
        return 0 if args.informational else 2
    comparisons = compare(args.history, tolerance=args.tolerance,
                          metrics=args.metric)
    regressions = [c for c in comparisons if c.status == "regression"]
    if args.json:
        print(json.dumps({
            "history": str(args.history),
            "tolerance": args.tolerance,
            "comparisons": [c.to_dict() for c in comparisons],
            "regressions": [f"{c.bench}.{c.metric}" for c in regressions],
        }, indent=2, sort_keys=True))
    else:
        if not comparisons:
            print("bench compare: fewer than two recorded runs per "
                  "benchmark; nothing to compare")
        for comparison in comparisons:
            print(comparison.message())
        if regressions:
            print(f"bench compare: {len(regressions)} regression"
                  f"{'s' if len(regressions) != 1 else ''} beyond "
                  f"{args.tolerance:.0%} tolerance", file=sys.stderr)
    if regressions and not args.informational:
        return 1
    return 0


def cmd_profile(args) -> int:
    """``repro profile``: time the hot paths over a short traced run."""
    PROFILER.reset()
    PROFILER.enable()
    trainer = None
    try:
        trainer = _make_trainer(args, stop_on_nonfinite=False)
        # The mitigation hook exercises the snapshot/restore scopes too,
        # so the report covers every instrumented path in one run.
        trainer.add_hook(MitigationHook(HardwareFailureDetector(),
                                        RecoveryManager(strategy="snapshot")))
        trainer.train(args.iterations)
    finally:
        if trainer is not None:
            trainer.close()
        PROFILER.disable()
    print(f"# profile: {args.workload} ({args.devices} devices, "
          f"{args.iterations} iterations)")
    print(render_profile())
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Understanding and Mitigating Hardware "
                    "Failures in DL Training Accelerator Systems' (ISCA 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_arg(p):
        p.add_argument("--trace", metavar="PATH",
                       help="record a structured event trace and export "
                            "it as JSONL to PATH")

    train = sub.add_parser("train", help="train a workload fault-free")
    train.add_argument("workload", choices=workload_names())
    _add_common(train)
    train.add_argument("--iterations", type=int, default=60)
    train.add_argument("--report-every", type=int, default=5)
    add_trace_arg(train)
    train.set_defaults(func=cmd_train)

    def add_fault_args(p):
        """Shared fault-description flags for inject/mitigate."""
        p.add_argument("--site", default="1.conv1",
                       help="op-site module name (default: 1.conv1)")
        p.add_argument("--kind", default="weight_grad",
                       choices=["forward", "weight_grad", "input_grad", "comm"],
                       help="op-site kind; 'comm' injects a link fault into "
                            "the in-flight reduced gradient (ignores --site)")
        p.add_argument("--group", type=int, choices=range(1, 11),
                       help="global control fault group (Table 1)")
        p.add_argument("--bit", type=int,
                       help="datapath bit flip position (0-31)")
        p.add_argument("--iteration", type=int, default=20)
        p.add_argument("--device", type=int, default=1)
        p.add_argument("--fault-seed", type=int, default=3)

    inject = sub.add_parser("inject", help="inject one hardware fault")
    inject.add_argument("workload", choices=workload_names())
    _add_common(inject)
    add_fault_args(inject)
    inject.add_argument("--iterations", type=int, default=60)
    inject.add_argument("--report-every", type=int, default=5)
    add_trace_arg(inject)
    inject.set_defaults(func=cmd_inject)

    campaign = sub.add_parser("campaign", help="run a statistical FI campaign")
    campaign.add_argument("workload", choices=workload_names())
    _add_common(campaign)
    campaign.add_argument("--experiments", type=int, default=30)
    campaign.add_argument("--experiment-batch", type=int, default=1,
                          metavar="E",
                          help="with --backend batched: step E experiments "
                               "concurrently through one vectorized program "
                               "(default: 1)")
    campaign.add_argument("--campaign-seed", type=int, default=77)
    campaign.add_argument("--parallel", type=int, default=1,
                          help="worker processes (default: 1 = in-process)")
    campaign.add_argument("--store", metavar="PATH",
                          help="stream results into a persistent JSONL "
                               "result store (resumable, mergeable)")
    campaign.add_argument("--resume", action="store_true",
                          help="continue an existing --store, skipping "
                               "already-finished experiments")
    campaign.add_argument("--timeout", type=float,
                          help="per-experiment deadline in seconds "
                               "(parallel mode)")
    campaign.add_argument("--retries", type=int, default=2,
                          help="retries before quarantining an experiment "
                               "(default: 2)")
    campaign.add_argument("--progress-every", type=int, default=0,
                          metavar="N",
                          help="print a progress/telemetry line to stderr "
                               "every N completed experiments (default: off)")
    campaign.add_argument("--trace", action="store_true",
                          help="flight recorder: stream every worker's "
                               "events into trace shards next to --store, "
                               "merged into one campaign trace at the end")
    campaign.add_argument("--detect", action="store_true",
                          help="attach the Sec. 5.1 detector (observe-only) "
                               "to every experiment so detector_fired "
                               "events land in the campaign trace")
    campaign.add_argument("--serve", type=int, metavar="PORT",
                          help="serve live telemetry (/metrics /healthz "
                               "/progress /alerts) on 127.0.0.1:PORT while "
                               "the campaign runs (0 = ephemeral port); "
                               "requires --store")
    campaign.add_argument("--serve-interval", type=float, default=1.0,
                          metavar="S",
                          help="telemetry sampling interval in seconds "
                               "(default: 1)")
    campaign.add_argument("--slo", metavar="RULES.json",
                          help="declarative SLO rules evaluated over the "
                               "live series; a sustained critical breach "
                               "makes the campaign exit nonzero "
                               "(requires --serve)")
    campaign.set_defaults(func=cmd_campaign)

    report = sub.add_parser("report",
                            help="summarize a persistent result store")
    report.add_argument("store", help="path of a JSONL result store")
    report.add_argument("--json", action="store_true",
                        help="machine-readable JSON mirroring the text "
                             "report")
    report.set_defaults(func=cmd_report)

    monitor = sub.add_parser("monitor",
                             help="live dashboard over a result store and "
                                  "its worker trace shards")
    monitor.add_argument("store", help="path of a JSONL result store")
    mode = monitor.add_mutually_exclusive_group()
    mode.add_argument("--once", action="store_true",
                      help="render one observation and exit (default)")
    mode.add_argument("--follow", action="store_true",
                      help="keep rendering until the campaign completes")
    mode.add_argument("--json", action="store_true",
                      help="print one deterministic JSON snapshot "
                           "(wall-clock fields excluded) and exit")
    monitor.add_argument("--interval", type=float, default=2.0,
                         help="--follow refresh interval in seconds "
                              "(default: 2)")
    monitor.add_argument("--html", metavar="PATH",
                         help="also write a static HTML dashboard to PATH")
    monitor.add_argument("--markdown", metavar="PATH",
                         help="also write a markdown snapshot to PATH")
    monitor.add_argument("--stall-after", type=float, metavar="S",
                         help="flag a worker as stalled after S seconds "
                              "without a shard write while busy")
    monitor.add_argument("--max-quarantine-rate", type=float, metavar="R",
                         help="exit nonzero when quarantined/(attempted) "
                              "exceeds R")
    monitor.add_argument("--max-divergence-rate", type=float, metavar="R",
                         help="exit nonzero when the INF/NaN outcome "
                              "fraction exceeds R")
    monitor.add_argument("--serve", type=int, metavar="PORT",
                         help="poll the store into a served telemetry "
                              "endpoint on 127.0.0.1:PORT until the "
                              "campaign completes (0 = ephemeral port)")
    monitor.add_argument("--slo", metavar="RULES.json",
                         help="declarative SLO rules evaluated against "
                              "each observation (embedded in --json, "
                              "gates the exit code)")
    monitor.set_defaults(func=cmd_monitor)

    serve_infer = sub.add_parser(
        "serve-infer",
        help="serve batched inference over a workload with in-flight "
             "fault injection, telemetry, and SLO gating")
    serve_infer.add_argument("workload", choices=workload_names())
    serve_infer.add_argument("--size", choices=["tiny", "small"],
                             default="tiny",
                             help="workload scale (default: tiny)")
    serve_infer.add_argument("--devices", type=int, default=2,
                             help="devices for the pre-serving training "
                                  "run (default: 2)")
    serve_infer.add_argument("--seed", type=int, default=0)
    serve_infer.add_argument("--train-iterations", type=int, default=None,
                             help="training iterations before serving "
                                  "(default: the workload's own)")
    serve_infer.add_argument("--host", default="127.0.0.1")
    serve_infer.add_argument("--port", type=int, default=0,
                             help="bind port (default: 0 = ephemeral, "
                                  "announced on stdout)")
    serve_infer.add_argument("--fault-rate", type=float, default=0.0,
                             help="expected forward faults per request "
                                  "(Poisson; default: 0)")
    serve_infer.add_argument("--fault-seed", type=int, default=3)
    serve_infer.add_argument("--max-batch", type=int, default=32,
                             help="dynamic batcher max batch size")
    serve_infer.add_argument("--max-wait-ms", type=float, default=5.0,
                             help="max time the oldest queued request "
                                  "waits for a batch to fill (ms)")
    serve_infer.add_argument("--queue-cap", type=int, default=256,
                             help="queue bound; beyond it requests shed "
                                  "with HTTP 503")
    serve_infer.add_argument("--shadow-rate", type=float, default=0.25,
                             help="fraction of fault-armed batches "
                                  "golden-re-executed for SDC detection "
                                  "(default: 0.25)")
    serve_infer.add_argument("--no-recover", action="store_true",
                             help="serve faulty outputs instead of "
                                  "re-executing detected-faulty batches")
    serve_infer.add_argument("--slo", metavar="RULES.json",
                             help="SLO rule file (default: built-in "
                                  "shed-rate/p99/sdc-per-million rules)")
    serve_infer.add_argument("--store", metavar="PATH",
                             help="write the run summary to PATH and the "
                                  "telemetry series to "
                                  "PATH-derived .series.jsonl")
    serve_infer.add_argument("--interval", type=float, default=0.25,
                             help="telemetry sampling interval (s)")
    serve_infer.add_argument("--duration", type=float, default=None,
                             help="serve this many seconds then exit "
                                  "(default: until interrupted)")
    serve_infer.set_defaults(func=cmd_serve_infer)

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop load generator against a serve-infer endpoint")
    loadgen.add_argument("url", help="server URL, e.g. http://127.0.0.1:9200")
    loadgen.add_argument("--rps", type=float, default=50.0,
                         help="scheduled request rate (default: 50)")
    loadgen.add_argument("--duration", type=float, default=5.0,
                         help="seconds of load (default: 5)")
    loadgen.add_argument("--timeout", type=float, default=10.0)
    loadgen.add_argument("--seed", type=int, default=0,
                         help="seed for the sampled request indices")
    loadgen.add_argument("--json", action="store_true",
                         help="emit the report as JSON")
    loadgen.set_defaults(func=cmd_loadgen)

    merge = sub.add_parser("merge",
                           help="merge partial result stores (dedup by key)")
    merge.add_argument("output", help="destination store path")
    merge.add_argument("inputs", nargs="+", help="source store paths")
    merge.set_defaults(func=cmd_merge)

    validate = sub.add_parser("validate",
                              help="validate software fault models vs micro-RTL")
    validate.add_argument("--experiments", type=int, default=400)
    validate.add_argument("--seed", type=int, default=0)
    validate.set_defaults(func=cmd_validate)

    mitigate = sub.add_parser("mitigate",
                              help="inject a fault under detection + recovery")
    mitigate.add_argument("workload", choices=workload_names())
    _add_common(mitigate)
    add_fault_args(mitigate)
    mitigate.add_argument("--iterations", type=int, default=60)
    mitigate.add_argument("--report-every", type=int, default=5)
    mitigate.add_argument("--strategy", choices=["snapshot", "arithmetic"],
                          default="snapshot")
    add_trace_arg(mitigate)
    mitigate.set_defaults(func=cmd_mitigate)

    trace = sub.add_parser("trace",
                           help="render/filter an exported trace file")
    trace.add_argument("file", help="path of a trace JSONL file")
    trace.add_argument("--type", choices=sorted(EVENT_TYPES),
                       help="only show events of this type")
    trace.add_argument("--min-iteration", type=int, metavar="N")
    trace.add_argument("--max-iteration", type=int, metavar="N")
    trace.add_argument("--limit", type=int, metavar="N",
                       help="show only the last N matching events")
    trace.add_argument("--summary", action="store_true",
                       help="print per-type event counts instead of lines")
    trace.add_argument("--analyze", action="store_true",
                       help="campaign-level analytics (detection latencies, "
                            "Table 4 tallies, phase vulnerability)")
    trace.set_defaults(func=cmd_trace)

    replay = sub.add_parser(
        "replay",
        help="re-run a recorded experiment bit-for-bit and verify it")
    replay.add_argument("trace", nargs="?",
                        help="merged campaign trace file (omit the key to "
                             "list its replayable experiments)")
    replay.add_argument("key", nargs="?",
                        help="experiment key to replay")
    replay.add_argument("--corpus", metavar="PATH",
                        help="replay every entry of a pinned replay-corpus "
                             "document instead of a trace record")
    replay.add_argument("--backend", choices=list(BACKEND_NAMES),
                        help="override the recorded execution backend "
                             "(outcomes are backend-invariant)")
    replay.add_argument("--verify-trace", action="store_true",
                        help="also verify the replayed event stream "
                             "against the recorded one")
    replay.add_argument("--bless", action="store_true",
                        help="with --corpus: re-pin the corpus to the "
                             "replayed outcomes/digests (golden refresh)")
    replay.set_defaults(func=cmd_replay)

    diff = sub.add_parser(
        "diff-campaign",
        help="report outcome-taxonomy drift between two result stores")
    diff.add_argument("store_a", help="baseline result store")
    diff.add_argument("store_b", help="comparison result store")
    diff.add_argument("--json", action="store_true",
                      help="machine-readable JSON (deterministic)")
    diff.set_defaults(func=cmd_diff_campaign)

    bench = sub.add_parser(
        "bench",
        help="record benchmark artifacts into a history and compare runs")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_record = bench_sub.add_parser(
        "record",
        help="ingest BENCH_<name>.json artifacts into the bench history")
    bench_record.add_argument("artifacts", nargs="*", metavar="ARTIFACT",
                              help="artifact paths (default: ./BENCH_*.json)")
    bench_record.add_argument("--history", default="BENCH_HISTORY.jsonl",
                              metavar="PATH",
                              help="history file to append to "
                                   "(default: BENCH_HISTORY.jsonl)")
    bench_record.set_defaults(func=cmd_bench_record)
    bench_compare = bench_sub.add_parser(
        "compare",
        help="diff each benchmark's newest recorded run against the "
             "previous one")
    bench_compare.add_argument("--history", default="BENCH_HISTORY.jsonl",
                               metavar="PATH")
    bench_compare.add_argument("--tolerance", type=float, default=0.05,
                               metavar="R",
                               help="relative change beyond which a "
                                    "directional metric counts as a "
                                    "regression (default: 0.05)")
    bench_compare.add_argument("--metric", action="append", metavar="NAME",
                               help="restrict the gate to this metric "
                                    "(repeatable; matches 'metric' or "
                                    "'bench.metric')")
    bench_compare.add_argument("--informational", action="store_true",
                               help="report regressions but always exit 0")
    bench_compare.add_argument("--json", action="store_true",
                               help="machine-readable comparison output")
    bench_compare.set_defaults(func=cmd_bench_compare)

    profile = sub.add_parser("profile",
                             help="profile hot-path timings over a short run")
    profile.add_argument("workload", choices=workload_names())
    _add_common(profile)
    profile.add_argument("--iterations", type=int, default=20)
    profile.set_defaults(func=cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, FileExistsError, FileNotFoundError) as exc:
        # Predictable operator errors (clobbering a store without
        # --resume, unknown schema versions, missing files) get a clean
        # message instead of a traceback.  StoreSchemaError and
        # StoreFormatError are ValueError subclasses.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
