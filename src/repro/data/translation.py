"""Toy sequence-transduction dataset (WMT14 EN-DE stand-in).

The Transformer workload needs a sequence-to-sequence task learnable at
miniature scale.  We use token-wise *reversal with vocabulary shift*: the
target sequence is the source reversed, with each token mapped through a
fixed random permutation ("dictionary").  Solving it requires attention
to long-range positions plus a learned token mapping — structurally a
translation task.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import Dataset

#: Token id reserved for padding in variable-length batches.
PAD_ID = 0


def make_translation_dataset(
    num_samples: int = 512,
    vocab_size: int = 24,
    sequence_length: int = 10,
    seed: int = 0,
) -> Dataset:
    """Generate (source, target) token sequences.

    Inputs are (N, T) int64 source sequences over tokens 1..vocab_size-1
    (0 is padding, unused here since lengths are fixed); targets are the
    reversed sequences mapped through a fixed permutation.
    """
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(vocab_size - 1) + 1  # bijection on 1..V-1
    sources = rng.integers(1, vocab_size, size=(num_samples, sequence_length))
    targets = permutation[sources[:, ::-1] - 1]
    ds = Dataset(sources.astype(np.int64), targets.astype(np.int64), num_classes=vocab_size)
    ds.permutation = permutation
    return ds
