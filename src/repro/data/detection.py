"""Toy object-detection dataset (VOC12 stand-in for the YOLO workload).

Each image contains one bright rectangular object of a class-specific
texture on a noisy background.  Targets are dense YOLO-style grids:
per cell, (tx, ty, tw, th, objectness, one-hot class) — matching the
layout consumed by :class:`repro.nn.losses.DetectionLoss`.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import Dataset


def make_detection_dataset(
    num_samples: int = 256,
    num_classes: int = 4,
    image_size: int = 16,
    grid_size: int = 4,
    channels: int = 3,
    seed: int = 0,
) -> Dataset:
    """Generate images with a single object and dense grid targets.

    Target shape: (N, 5 + num_classes, grid, grid).
    """
    rng = np.random.default_rng(seed)
    cell = image_size // grid_size
    images = rng.normal(0.0, 0.3, size=(num_samples, channels, image_size, image_size))
    targets = np.zeros((num_samples, 5 + num_classes, grid_size, grid_size), dtype=np.float32)
    # Class-specific channel intensity signatures.
    signatures = rng.uniform(0.8, 2.0, size=(num_classes, channels))
    signatures[:, rng.integers(0, channels)] *= -1.0
    labels = rng.integers(0, num_classes, size=num_samples)
    for i, label in enumerate(labels):
        w = int(rng.integers(3, max(image_size // 2, 4)))
        h = int(rng.integers(3, max(image_size // 2, 4)))
        x0 = int(rng.integers(0, image_size - w))
        y0 = int(rng.integers(0, image_size - h))
        for c in range(channels):
            images[i, c, y0 : y0 + h, x0 : x0 + w] += signatures[label, c]
        cx, cy = x0 + w / 2.0, y0 + h / 2.0
        gx, gy = min(int(cx // cell), grid_size - 1), min(int(cy // cell), grid_size - 1)
        targets[i, 0, gy, gx] = cx / cell - gx  # tx in [0, 1)
        targets[i, 1, gy, gx] = cy / cell - gy  # ty
        targets[i, 2, gy, gx] = np.log(w / cell)  # tw
        targets[i, 3, gy, gx] = np.log(h / cell)  # th
        targets[i, 4, gy, gx] = 1.0  # objectness
        targets[i, 5 + label, gy, gx] = 1.0
    images -= images.mean()
    images /= max(images.std(), 1e-8)
    ds = Dataset(images.astype(np.float32), targets, num_classes)
    ds.labels = labels.astype(np.int64)
    return ds


def detection_cell_accuracy(prediction: np.ndarray, target: np.ndarray) -> float:
    """Fraction of object cells whose objectness and class are both right.

    A cheap detection-quality metric so the YOLO workload reports an
    "accuracy" comparable to the classification workloads' convergence
    traces.  NaN predictions never count as correct.
    """
    pred = np.nan_to_num(prediction, nan=-1e9)
    obj_mask = target[:, 4] > 0.5
    if not np.any(obj_mask):
        return 0.0
    pred_obj = pred[:, 4] > 0.0  # logit > 0 means p > 0.5
    pred_cls = pred[:, 5:].argmax(axis=1)
    true_cls = target[:, 5:].argmax(axis=1)
    correct = pred_obj & (pred_cls == true_cls) & obj_mask
    return float(correct.sum() / obj_mask.sum())
