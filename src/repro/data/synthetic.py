"""Synthetic image-classification dataset (CIFAR-10 stand-in).

The paper trains on CIFAR-10; offline we generate a classification task
with the same statistical properties Algorithm 1 assumes: inputs
normalized to zero mean and unit variance (Property 2).  Each class is a
smooth random prototype image; samples are prototypes plus Gaussian noise
and small spatial jitter, which makes the task non-trivially learnable by
small conv nets within a few hundred iterations.
"""

from __future__ import annotations

import numpy as np


class Dataset:
    """A fixed (inputs, targets) pair with train/test views."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray, num_classes: int):
        if len(inputs) != len(targets):
            raise ValueError("inputs and targets length mismatch")
        self.inputs = inputs
        self.targets = targets
        self.num_classes = int(num_classes)

    def __len__(self) -> int:
        return len(self.inputs)

    def subset(self, start: int, stop: int) -> "Dataset":
        return Dataset(self.inputs[start:stop], self.targets[start:stop], self.num_classes)


def _smooth_noise(rng: np.random.Generator, shape: tuple[int, ...], passes: int = 2) -> np.ndarray:
    """Low-frequency noise: white noise box-blurred a few times."""
    field = rng.normal(0.0, 1.0, size=shape)
    for _ in range(passes):
        field = (
            field
            + np.roll(field, 1, axis=-1)
            + np.roll(field, -1, axis=-1)
            + np.roll(field, 1, axis=-2)
            + np.roll(field, -1, axis=-2)
        ) / 5.0
    return field


def make_image_classification(
    num_samples: int = 512,
    num_classes: int = 8,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.6,
    seed: int = 0,
) -> Dataset:
    """Generate a normalized synthetic image-classification dataset.

    Returns a :class:`Dataset` whose inputs are (N, C, H, W) float32 with
    approximately zero mean and unit variance overall.
    """
    rng = np.random.default_rng(seed)
    prototypes = np.stack(
        [_smooth_noise(rng, (channels, image_size, image_size)) for _ in range(num_classes)]
    )
    # Rescale prototypes so classes are separable above the noise floor.
    prototypes *= 1.5 / max(prototypes.std(), 1e-8)
    targets = rng.integers(0, num_classes, size=num_samples)
    samples = np.empty((num_samples, channels, image_size, image_size), dtype=np.float32)
    for i, label in enumerate(targets):
        base = prototypes[label]
        # Small spatial jitter (translation by up to 2 pixels).
        dy, dx = rng.integers(-2, 3, size=2)
        jittered = np.roll(np.roll(base, dy, axis=1), dx, axis=2)
        samples[i] = jittered + rng.normal(0.0, noise, size=base.shape)
    # Normalize to zero mean / unit variance (Algorithm 1, Property 2).
    samples -= samples.mean()
    samples /= max(samples.std(), 1e-8)
    return Dataset(samples.astype(np.float32), targets.astype(np.int64), num_classes)


def train_test_split(dataset: Dataset, test_fraction: float = 0.25) -> tuple[Dataset, Dataset]:
    """Split a dataset into train/test views (deterministic prefix split)."""
    n_test = max(int(len(dataset) * test_fraction), 1)
    return dataset.subset(0, len(dataset) - n_test), dataset.subset(len(dataset) - n_test, len(dataset))
