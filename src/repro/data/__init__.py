"""Synthetic datasets and the replayable mini-batch loader."""

from repro.data.detection import detection_cell_accuracy, make_detection_dataset
from repro.data.loader import BatchLoader
from repro.data.maze import make_maze_dataset
from repro.data.synthetic import Dataset, make_image_classification, train_test_split
from repro.data.translation import PAD_ID, make_translation_dataset

__all__ = [
    "PAD_ID",
    "BatchLoader",
    "Dataset",
    "detection_cell_accuracy",
    "make_detection_dataset",
    "make_image_classification",
    "make_maze_dataset",
    "make_translation_dataset",
    "train_test_split",
]
