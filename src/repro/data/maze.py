"""Maze-navigation dataset (25x25-maze stand-in for multigrid neural memory).

The paper's multigrid-neural-memory workload learns to navigate mazes; a
recurrent memory integrates observations over time.  The stand-in task:
an agent performs a random walk on a grid; the model observes the
per-step movement deltas as a sequence and must classify the quadrant of
the final position — solvable only by integrating the whole observation
history, which exercises recurrent (history-carrying) state.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import Dataset


def make_maze_dataset(
    num_samples: int = 512,
    maze_size: int = 25,
    sequence_length: int = 12,
    seed: int = 0,
) -> Dataset:
    """Generate (N, T, 4) movement one-hot sequences and quadrant labels.

    Observations are one-hot moves in {up, down, left, right}; the label is
    the quadrant (0-3) of the walk's end position relative to the start.
    """
    rng = np.random.default_rng(seed)
    moves = np.array([[0, 1], [0, -1], [-1, 0], [1, 0]])  # dy per move index
    sequences = np.zeros((num_samples, sequence_length, 4), dtype=np.float32)
    labels = np.zeros(num_samples, dtype=np.int64)
    half = maze_size // 2
    for i in range(num_samples):
        pos = np.array([half, half], dtype=np.int64)
        for t in range(sequence_length):
            move = int(rng.integers(0, 4))
            nxt = np.clip(pos + moves[move], 0, maze_size - 1)
            sequences[i, t, move] = 1.0
            pos = nxt
        dy, dx = pos[0] - half, pos[1] - half
        labels[i] = (2 if dy >= 0 else 0) + (1 if dx >= 0 else 0)
    # Center the one-hot observations (zero mean input, Property 2-ish).
    sequences -= sequences.mean()
    sequences /= max(sequences.std(), 1e-8)
    return Dataset(sequences, labels, num_classes=4)
