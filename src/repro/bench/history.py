"""Benchmark history: BENCH artifacts → JSONL trend line → regressions.

``repro bench record`` ingests the ``BENCH_<name>.json`` artifacts a
benchmark run leaves behind into an append-only ``BENCH_HISTORY.jsonl``
— same file conventions as the result store and telemetry series: a
schema-versioned header line, one flushed JSON record per line, and a
truncated final line tolerated on read (a crash mid-append loses at most
one record, never the file).

``repro bench compare`` then diffs the newest run of each benchmark
against the previous one.  Metric *direction* is inferred from the
name — ``throughput``/``per_s``/``speedup`` style metrics should go up,
``overhead``/``seconds``/``latency`` style metrics should go down;
direction-less metrics (counts, configuration echoes) are reported but
never gate.  A change worse than ``tolerance`` in the bad direction is
a regression; CI runs the comparison after every benchmark job.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.bench.provenance import run_provenance

HISTORY_SCHEMA_VERSION = 1

HEADER = "header"
BENCH = "bench"

#: Single tokens marking a metric where smaller is better.  Checked
#: first: an "overhead_per_s" style name is an overhead, not a
#: throughput.
_LOWER_TOKENS = {"overhead", "seconds", "latency", "duration", "elapsed"}
#: Token *pairs* for per-call costs ("ns_per_call", "us_per_emit", ...).
_LOWER_PAIRS = {("ns", "per"), ("us", "per"), ("ms", "per")}
#: Tokens / token pairs where bigger is better ("iterations_per_s",
#: "throughput", "match_rate", ...).
_HIGHER_TOKENS = {"throughput", "speedup", "iterations", "ops"}
_HIGHER_PAIRS = {("per", "s"), ("per", "sec"), ("per", "second"),
                 ("match", "rate")}


class HistoryFormatError(ValueError):
    """Raised when a history file is structurally unusable."""


@dataclass
class BenchComparison:
    """One metric's latest-vs-previous verdict."""

    bench: str
    metric: str
    baseline: float
    current: float
    #: Relative change, signed (``(current - baseline) / |baseline|``).
    change: float
    direction: str          # "higher" | "lower" | "none"
    status: str             # "ok" | "regression" | "improved" | "untracked"
    baseline_sha: str = "unknown"
    current_sha: str = "unknown"

    def to_dict(self) -> dict:
        return {
            "bench": self.bench, "metric": self.metric,
            "baseline": self.baseline, "current": self.current,
            "change": self.change, "direction": self.direction,
            "status": self.status, "baseline_sha": self.baseline_sha,
            "current_sha": self.current_sha,
        }

    def message(self) -> str:
        pct = f"{self.change:+.1%}"
        return (f"[{self.status}] {self.bench}.{self.metric}: "
                f"{self.baseline:.6g} -> {self.current:.6g} ({pct}, "
                f"{self.direction} is better)"
                if self.direction != "none" else
                f"[{self.status}] {self.bench}.{self.metric}: "
                f"{self.baseline:.6g} -> {self.current:.6g} ({pct})")


def metric_direction(name: str) -> str:
    """``"higher"``, ``"lower"``, or ``"none"`` for a metric name.

    Matches whole underscore-separated tokens, not raw substrings —
    ``iterations_per_s`` must not match the ``ns_per`` cost pattern.
    """
    tokens = [t for t in re.split(r"[^a-z0-9]+", name.lower()) if t]
    pairs = set(zip(tokens, tokens[1:]))
    if _LOWER_TOKENS.intersection(tokens) or _LOWER_PAIRS & pairs:
        return "lower"
    if _HIGHER_TOKENS.intersection(tokens) or _HIGHER_PAIRS & pairs:
        return "higher"
    return "none"


def _bench_name(path: Path) -> str:
    stem = path.stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def _numeric_metrics(data: dict) -> dict[str, float]:
    """Top-level numeric fields of one artifact (bools excluded)."""
    metrics = {}
    for key, value in data.items():
        if key == "provenance":
            continue
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[key] = float(value)
    return metrics


def record_artifacts(paths: list[str | Path],
                     history_path: str | Path,
                     provenance: dict | None = None) -> list[dict]:
    """Append one ``bench`` record per artifact to the history file.

    All artifacts of one invocation share one provenance stamp (the
    artifact's own embedded stamp, when present, is preserved alongside
    as ``artifact_provenance``).  Returns the appended records.
    """
    history_path = Path(history_path)
    if provenance is None:
        provenance = run_provenance()
    records = []
    for raw in paths:
        path = Path(raw)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise HistoryFormatError(
                f"unreadable artifact {path}: {exc}") from None
        if not isinstance(data, dict):
            raise HistoryFormatError(
                f"artifact {path} is not a JSON object")
        record = {
            "record": BENCH,
            "bench": _bench_name(path),
            "metrics": _numeric_metrics(data),
            "provenance": dict(provenance),
        }
        embedded = data.get("provenance")
        if isinstance(embedded, dict):
            record["artifact_provenance"] = embedded
        records.append(record)
    if not records:
        return records

    new_file = not history_path.exists() or \
        history_path.stat().st_size == 0
    with history_path.open("a", encoding="utf-8") as handle:
        if new_file:
            handle.write(json.dumps(
                {"record": HEADER, "schema": HISTORY_SCHEMA_VERSION,
                 "kind": "bench_history"}, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
    return records


def read_history(history_path: str | Path) -> tuple[dict, list[dict]]:
    """``(header, bench_records)`` — truncated-final-line tolerant."""
    history_path = Path(history_path)
    try:
        lines = history_path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise HistoryFormatError(f"cannot read {history_path}: {exc}") \
            from None
    if not lines:
        raise HistoryFormatError(f"{history_path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        raise HistoryFormatError(
            f"{history_path}: malformed header line") from None
    if not isinstance(header, dict) or header.get("record") != HEADER:
        raise HistoryFormatError(f"{history_path}: first line is not a "
                                 f"history header")
    if header.get("schema") != HISTORY_SCHEMA_VERSION:
        raise HistoryFormatError(
            f"{history_path}: schema {header.get('schema')!r}, expected "
            f"{HISTORY_SCHEMA_VERSION}")
    records = []
    for index, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines):    # torn tail from a crash mid-append
                break
            raise HistoryFormatError(
                f"{history_path}: malformed line {index}") from None
        if isinstance(record, dict) and record.get("record") == BENCH:
            records.append(record)
    return header, records


def compare(history_path: str | Path, tolerance: float = 0.05,
            metrics: list[str] | None = None) -> list[BenchComparison]:
    """Diff each benchmark's newest record against its previous one.

    ``metrics`` restricts the gate to named metrics (exact match on
    ``metric`` or ``bench.metric``); by default every directional metric
    gates.  Direction-less metrics come back ``untracked`` and a first
    observation of a benchmark yields no comparison at all.
    """
    _, records = read_history(history_path)
    by_bench: dict[str, list[dict]] = {}
    for record in records:
        by_bench.setdefault(record.get("bench", "?"), []).append(record)

    comparisons: list[BenchComparison] = []
    for bench in sorted(by_bench):
        runs = by_bench[bench]
        if len(runs) < 2:
            continue
        previous, latest = runs[-2], runs[-1]
        prev_metrics = previous.get("metrics", {})
        cur_metrics = latest.get("metrics", {})
        for name in sorted(set(prev_metrics) & set(cur_metrics)):
            if metrics and name not in metrics \
                    and f"{bench}.{name}" not in metrics:
                continue
            baseline = float(prev_metrics[name])
            current = float(cur_metrics[name])
            change = ((current - baseline) / abs(baseline)
                      if baseline else (0.0 if current == baseline else
                                        float("inf")))
            direction = metric_direction(name)
            if direction == "none":
                status = "untracked"
            elif direction == "higher":
                status = ("regression" if change < -tolerance else
                          "improved" if change > tolerance else "ok")
            else:
                status = ("regression" if change > tolerance else
                          "improved" if change < -tolerance else "ok")
            comparisons.append(BenchComparison(
                bench=bench, metric=name, baseline=baseline,
                current=current, change=change, direction=direction,
                status=status,
                baseline_sha=(previous.get("provenance") or {})
                .get("git_sha", "unknown"),
                current_sha=(latest.get("provenance") or {})
                .get("git_sha", "unknown")))
    return comparisons
