"""Provenance stamps for benchmark artifacts.

A benchmark number with no commit attached is trivia; attached to a git
SHA it is a data point on a trend line.  :func:`run_provenance` captures
where a measurement came from — commit, wall-clock time, host, platform,
interpreter — cheaply enough to stamp onto every artifact.
"""

from __future__ import annotations

import datetime
import os
import platform
import socket
import subprocess
import time


def git_sha(cwd: str | None = None) -> str:
    """The current commit SHA: ``$GITHUB_SHA`` when CI provides it,
    otherwise ``git rev-parse HEAD``, otherwise ``"unknown"``."""
    env_sha = os.environ.get("GITHUB_SHA", "").strip()
    if env_sha:
        return env_sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_provenance(cwd: str | None = None) -> dict:
    """One provenance stamp: commit, time, host, platform, python."""
    now = time.time()
    return {
        "git_sha": git_sha(cwd),
        "timestamp": datetime.datetime.fromtimestamp(
            now, tz=datetime.timezone.utc).isoformat(),
        "unix_time": now,
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
