"""Benchmark provenance and regression tracking.

Benchmarks emit ``BENCH_<name>.json`` artifacts (``benchmarks/_report``);
this package stamps them with provenance (:mod:`repro.bench.provenance`)
and folds them into a git-SHA-stamped ``BENCH_HISTORY.jsonl`` so CI can
flag perf regressions between commits (:mod:`repro.bench.history`,
``repro bench record`` / ``repro bench compare``).
"""

from repro.bench.history import (
    HISTORY_SCHEMA_VERSION,
    BenchComparison,
    HistoryFormatError,
    compare,
    metric_direction,
    read_history,
    record_artifacts,
)
from repro.bench.provenance import run_provenance

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "BenchComparison",
    "HistoryFormatError",
    "compare",
    "metric_direction",
    "read_history",
    "record_artifacts",
    "run_provenance",
]
