"""Scrapeable telemetry endpoint for live campaigns.

A paper-scale campaign should behave like a service, not a script: while
it runs, anything — a Prometheus scraper, a cron gate, an operator with
``curl`` — can ask how it is doing.  This module serves that view with
nothing beyond the stdlib ``http.server``:

* ``/metrics``  — Prometheus/OpenMetrics text of the latest sample;
* ``/healthz``  — liveness + degradation summary (HTTP 503 while any
  critical SLO rule fires or workers stall);
* ``/progress`` — deterministic JSON of campaign progress;
* ``/alerts``   — SLO rule states plus legacy alert strings;
* ``/``         — endpoint index.

The server only ever reads the latest :class:`TelemetrySample` published
by a :class:`~repro.observe.timeseries.TelemetrySampler`; nothing in a
request handler touches training state, so a slow or hostile scraper
cannot perturb the campaign (the sampler itself stays inside the ≤5%
observability budget pinned by ``bench_observe_overhead``).

:class:`CampaignTelemetry` bundles sampler + server + SLO engine for a
live engine run (``repro campaign --serve``); :func:`serve_monitor`
drives the same stack from polled on-disk state (``repro monitor
--serve``), so a finished or remote campaign is scrapeable too.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.observe import REGISTRY
from repro.observe.export import dumps_json, render_prometheus
from repro.observe.slo import SLOEngine, SLORule
from repro.observe.timeseries import (
    SeriesBuffer,
    TelemetrySample,
    TelemetrySampler,
    build_sample,
    series_path,
)

#: Default bind host: telemetry is an operator surface, not a public
#: one — bind loopback unless explicitly told otherwise.
DEFAULT_HOST = "127.0.0.1"

ENDPOINTS = ("/metrics", "/healthz", "/progress", "/alerts")


class TelemetryHub:
    """Thread-safe bridge between the sampler and request handlers."""

    def __init__(self, meta: dict | None = None,
                 slo_engine: SLOEngine | None = None):
        self.meta = dict(meta or {})
        self.slo_engine = slo_engine
        self._lock = threading.Lock()
        self._sample: TelemetrySample | None = None
        #: Legacy alert strings (monitor-style), shown next to SLO states.
        self._alerts: list[str] = []
        self.scrapes = 0

    # ------------------------------------------------------------------
    # Publishing (sampler side)
    # ------------------------------------------------------------------
    def publish(self, sample: TelemetrySample | None,
                alerts: list[str] | None = None) -> None:
        with self._lock:
            if sample is not None:
                self._sample = sample
            if alerts is not None:
                self._alerts = list(alerts)

    # ------------------------------------------------------------------
    # Reading (handler side)
    # ------------------------------------------------------------------
    def latest(self) -> TelemetrySample | None:
        with self._lock:
            return self._sample

    def alerts(self) -> list[str]:
        with self._lock:
            return list(self._alerts)

    def slo_statuses(self) -> list[dict]:
        if self.slo_engine is None:
            return []
        return [status.to_dict() for status in self.slo_engine.statuses]

    def metrics_text(self) -> str:
        return render_prometheus(self.latest())

    def progress_json(self) -> str:
        return dumps_json(self.latest(), meta=self.meta)

    def alerts_json(self) -> str:
        firing = [s for s in self.slo_statuses() if s["state"] == "firing"]
        return json.dumps({
            "slo": self.slo_statuses(),
            "firing": [s["rule"] for s in firing],
            "alerts": self.alerts(),
        }, indent=2, sort_keys=True)

    def health(self) -> tuple[bool, dict]:
        """``(healthy, payload)`` for ``/healthz``.

        Degraded while any critical SLO rule fires, any legacy alert is
        raised, or workers are stalled in the latest sample.
        """
        sample = self.latest()
        reasons: list[str] = []
        for status in self.slo_statuses():
            if status["state"] == "firing" and \
                    status["severity"] == "critical":
                reasons.append(f"slo:{status['rule']}")
        reasons.extend(f"alert:{a}" for a in self.alerts())
        stalled = 0
        age = None
        if sample is not None:
            stalled = int(sample.gauges.get("workers.stalled", 0))
            age = max(time.time() - sample.t, 0.0)
        if stalled:
            reasons.append(f"stalled_workers:{stalled}")
        payload = {
            "status": "ok" if not reasons else "degraded",
            "reasons": reasons,
            "last_sample_age_s": age,
            "scrapes": self.scrapes,
        }
        return not reasons, payload


def _make_handler(hub: TelemetryHub):
    class TelemetryHandler(BaseHTTPRequestHandler):
        server_version = "repro-telemetry/1"

        def log_message(self, *args) -> None:  # silence per-request noise
            pass

        def _respond(self, status: int, body: str,
                     content_type: str) -> None:
            data = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            hub.scrapes += 1
            try:
                if path == "/metrics":
                    self._respond(200, hub.metrics_text(),
                                  "text/plain; version=0.0.4; charset=utf-8")
                elif path == "/healthz":
                    healthy, payload = hub.health()
                    self._respond(200 if healthy else 503,
                                  json.dumps(payload, indent=2,
                                             sort_keys=True),
                                  "application/json")
                elif path == "/progress":
                    self._respond(200, hub.progress_json(),
                                  "application/json")
                elif path == "/alerts":
                    self._respond(200, hub.alerts_json(), "application/json")
                elif path == "/":
                    self._respond(200, json.dumps(
                        {"endpoints": list(ENDPOINTS), "meta": hub.meta},
                        indent=2, sort_keys=True), "application/json")
                else:
                    self._respond(404, json.dumps(
                        {"error": f"unknown path {path!r}",
                         "endpoints": list(ENDPOINTS)}), "application/json")
            except BrokenPipeError:  # scraper went away mid-response
                pass

    return TelemetryHandler


class TelemetryServer:
    """A threaded HTTP server over one :class:`TelemetryHub`."""

    def __init__(self, hub: TelemetryHub, port: int = 0,
                 host: str = DEFAULT_HOST):
        self.hub = hub
        self.httpd = ThreadingHTTPServer((host, port), _make_handler(hub))
        self.httpd.daemon_threads = True
        self.host = host
        #: The bound port (resolves port 0 to the ephemeral choice).
        self.port = self.httpd.server_address[1]
        self.url = f"http://{host}:{self.port}"
        self._thread: threading.Thread | None = None

    def start(self) -> "TelemetryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                daemon=True, name="repro-telemetry-server")
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self.httpd.shutdown()
            self._thread.join(timeout=2.0)
            self._thread = None
        self.httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class CampaignTelemetry:
    """Sampler + server + SLO engine for one live engine-driven run.

    Usage (what ``repro campaign --serve`` does)::

        telemetry = CampaignTelemetry(store_path="camp.jsonl", port=0,
                                      rules=load_rules("slo.json"))
        telemetry.start()
        campaign.run(..., on_engine=telemetry.on_engine)
        telemetry.stop()
        if telemetry.breached():
            sys.exit(1)

    The sampler reads only the engine's published progress snapshots and
    the global metrics registry; the series lands next to the store.
    """

    def __init__(self, store_path: str | Path | None = None,
                 port: int = 0, host: str = DEFAULT_HOST,
                 interval: float = 1.0,
                 rules: list[SLORule] | None = None,
                 registry=REGISTRY, meta: dict | None = None,
                 buffer_len: int = 720):
        self.meta = dict(meta or {})
        self.slo = SLOEngine(rules or [])
        self.hub = TelemetryHub(meta=self.meta, slo_engine=self.slo)
        self.buffer = SeriesBuffer(maxlen=buffer_len)
        self._registry = registry
        self._engine = None
        path = series_path(store_path) if store_path else None
        self.sampler = TelemetrySampler(
            self._provider, interval=interval, buffer=self.buffer,
            path=path, meta=self.meta, slo_engine=self.slo)
        self.series_path = path
        self.server = TelemetryServer(self.hub, port=port, host=host)
        self.url = self.server.url

    # ------------------------------------------------------------------
    def on_engine(self, engine) -> None:
        """Engine hook: called by ``Campaign.run`` once the engine
        exists, so the sampler can read its progress snapshots."""
        self._engine = engine

    def _provider(self) -> TelemetrySample:
        engine = self._engine
        progress = engine.progress() if engine is not None else None
        sample = build_sample(progress=progress, registry=self._registry)
        self.hub.publish(sample)
        return sample

    # ------------------------------------------------------------------
    def start(self) -> "CampaignTelemetry":
        self.server.start()
        self.sampler.start()
        return self

    def stop(self) -> None:
        self.sampler.stop(final_sample=True)
        self.server.stop()

    def breached(self, severity: str = "critical") -> list[str]:
        """Rules of at least ``severity`` that fired at any point."""
        return self.slo.breached(severity)

    def __enter__(self) -> "CampaignTelemetry":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_monitor(store_path: str | Path, port: int = 0,
                  host: str = DEFAULT_HOST, interval: float = 2.0,
                  rules: list[SLORule] | None = None,
                  stall_after: float | None = None,
                  max_quarantine_rate: float | None = None,
                  max_divergence_rate: float | None = None,
                  max_polls: int | None = None,
                  on_poll=None, on_start=None) -> dict:
    """Poll a store into a served telemetry endpoint until the campaign
    completes (or ``max_polls`` observations).

    This is the post-hoc twin of :class:`CampaignTelemetry`: the
    provider is :func:`repro.engine.monitor.collect` over the on-disk
    store + shards, so it works from any machine that can read the
    filesystem — including against a crashed or finished run.  Returns
    ``{"polls", "alerts", "slo_breached", "url"}``.
    """
    from repro.engine.monitor import collect, evaluate_alerts, telemetry_sample

    store_path = Path(store_path)
    slo = SLOEngine(rules or [])
    hub = TelemetryHub(meta={"store": store_path.name}, slo_engine=slo)
    buffer = SeriesBuffer()
    last_alerts: list[str] = []
    state_box = {"complete": False}

    def provider() -> TelemetrySample:
        state = collect(store_path, stall_after=stall_after)
        alerts = evaluate_alerts(
            state, max_quarantine_rate=max_quarantine_rate,
            max_divergence_rate=max_divergence_rate)
        last_alerts[:] = alerts
        if state.total is not None and state.attempted >= state.total:
            state_box["complete"] = True
        sample = telemetry_sample(state)
        hub.publish(sample, alerts=alerts)
        if on_poll is not None:
            on_poll(state)
        return sample

    sampler = TelemetrySampler(provider, interval=interval, buffer=buffer,
                               slo_engine=slo)
    polls = 0
    with TelemetryServer(hub, port=port, host=host) as server:
        if on_start is not None:
            on_start(server.url)
        sampler.sample_once()
        polls += 1
        while not state_box["complete"]:
            if max_polls is not None and polls >= max_polls:
                break
            time.sleep(interval)
            sampler.sample_once()
            polls += 1
    if sampler.last_error is not None and sampler.samples_taken == 0:
        raise RuntimeError(f"monitor polling failed: {sampler.last_error}")
    return {"polls": polls, "alerts": list(last_alerts),
            "slo_breached": slo.breached(), "url": server.url,
            "statuses": [s.to_dict() for s in slo.statuses]}
