"""Live campaign monitor: one view over the store and worker shards.

A paper-scale campaign runs for days with nothing watching but the
operator.  The monitor reads what the flight recorder leaves on disk —
the append-only :class:`~repro.engine.store.ResultStore` plus the
per-worker trace shards next to it — and renders a dashboard without
touching the running engine:

* progress, throughput and ETA from the store's ``ts``-stamped records;
* the Table 3 outcome taxonomy breakdown so far;
* per-worker health straight from the shards (what each worker is
  executing, how long ago it last wrote, stall highlighting);
* recent detector firings;
* alert thresholds (quarantine rate, divergence rate) whose breach the
  CLI turns into a nonzero exit code, so a cron job or CI gate can halt
  a campaign that is eating itself.

Everything is a pure function of the on-disk state, so the monitor can
run on a different machine than the campaign (shared filesystem) and is
safe to point at a finished or crashed run post mortem.
"""

from __future__ import annotations

import html
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.store import EXPERIMENT, QUARANTINE, read_records
from repro.observe import (
    DETECTOR_FIRED,
    EXPERIMENT_FINISHED,
    EXPERIMENT_STARTED,
    TraceFormatError,
    campaign_trace_path,
    read_trace,
    shard_paths,
)
from repro.observe.slo import evaluate_once, threshold_rules

# Shared with the telemetry sampler (re-exported here and from
# ``repro.engine`` for back-compat): outcome labels that count as
# training divergence (the INF/NaN classes of the Table 3 taxonomy).
from repro.observe.timeseries import DIVERGENCE_OUTCOMES, TelemetrySample

#: How many recent completions / detector firings the dashboard keeps.
RECENT = 8


@dataclass
class WorkerShard:
    """What one worker's shard file says about it right now."""

    worker: int
    path: Path
    #: Events recovered from the shard (0 when unreadable).
    events: int = 0
    #: Shard could not be parsed at all (e.g. header cut by a kill).
    unreadable: bool = False
    #: Final line was cut mid-write (worker killed while streaming).
    truncated: bool = False
    #: Experiment key of the open (started, not finished) attempt.
    busy_key: str | None = None
    #: Seconds since the shard was last written.
    last_write_age: float = 0.0
    #: Busy with no write for longer than the stall threshold.
    stalled: bool = False
    #: Units this shard saw to completion (status done or error).
    finished: int = 0


@dataclass
class MonitorState:
    """One observation of a campaign's on-disk state."""

    store_path: Path
    kind: str = "campaign"
    meta: dict = field(default_factory=dict)
    #: Campaign size from the store header (None when not recorded).
    total: int | None = None
    completed: int = 0
    quarantined: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)
    #: Completions per second over the stamped records (None before two).
    throughput: float | None = None
    eta: float | None = None
    #: Seconds since the last stamped result (None without stamps).
    last_result_age: float | None = None
    recent: list[dict] = field(default_factory=list)
    workers: list[WorkerShard] = field(default_factory=list)
    detections: list[dict] = field(default_factory=list)
    #: Merged campaign trace next to the store, if one exists.
    trace_path: Path | None = None
    alerts: list[str] = field(default_factory=list)

    @property
    def attempted(self) -> int:
        return self.completed + self.quarantined

    @property
    def quarantine_rate(self) -> float:
        return self.quarantined / self.attempted if self.attempted else 0.0

    @property
    def divergence_rate(self) -> float:
        if not self.completed:
            return 0.0
        diverged = sum(count for outcome, count in self.breakdown.items()
                       if outcome in DIVERGENCE_OUTCOMES)
        return diverged / self.completed

    @property
    def stalled_workers(self) -> list[int]:
        return [w.worker for w in self.workers if w.stalled]


def _shard_worker_id(path: Path) -> int:
    digits = "".join(ch for ch in path.stem if ch.isdigit())
    return int(digits) if digits else -1


def _read_shard(path: Path, now: float,
                stall_after: float | None) -> WorkerShard:
    shard = WorkerShard(worker=_shard_worker_id(path), path=path)
    try:
        shard.last_write_age = max(now - path.stat().st_mtime, 0.0)
    except OSError:
        shard.unreadable = True
        return shard
    try:
        trace = read_trace(path)
    except TraceFormatError:
        shard.unreadable = True
        return shard
    shard.events = len(trace.events)
    shard.truncated = trace.truncated
    open_attempts: dict[tuple, str] = {}
    for event in trace.events:
        attempt = (event.data.get("key"), event.data.get("attempt"))
        if event.type == EXPERIMENT_STARTED:
            open_attempts[attempt] = event.data.get("key")
        elif event.type == EXPERIMENT_FINISHED:
            open_attempts.pop(attempt, None)
            shard.finished += 1
    if open_attempts:
        shard.busy_key = list(open_attempts.values())[-1]
    if stall_after is not None and shard.busy_key is not None \
            and shard.last_write_age > stall_after:
        shard.stalled = True
    return shard


def _collect_detections(paths: list[Path]) -> list[dict]:
    detections: list[dict] = []
    for path in paths:
        try:
            trace = read_trace(path)
        except (TraceFormatError, OSError):
            continue
        for event in trace.events:
            if event.type == DETECTOR_FIRED:
                detections.append({
                    "key": event.data.get("key"),
                    "iteration": event.iteration,
                    "condition": event.data.get("condition"),
                    "magnitude": event.data.get("magnitude"),
                })
    return detections[-RECENT:]


def collect(store_path: str | Path, stall_after: float | None = None,
            now: float | None = None) -> MonitorState:
    """Read the store + shards into a :class:`MonitorState`.

    ``stall_after`` flags a worker as stalled when its shard shows an
    open experiment but no write for that many seconds (a sensible
    value is the campaign's per-experiment timeout)."""
    store_path = Path(store_path)
    if now is None:
        now = time.time()
    state = MonitorState(store_path=store_path)
    records = read_records(store_path)
    header = records[0]
    state.kind = header.get("kind", "campaign")
    state.meta = header.get("meta") or {}
    total = state.meta.get("num_experiments")
    state.total = int(total) if isinstance(total, (int, float)) else None

    stamps: list[float] = []
    outcome_field = "outcome"
    for record in records[1:]:
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            stamps.append(float(ts))
        if record.get("record") == EXPERIMENT:
            state.completed += 1
            payload = record.get("payload")
            outcome = (payload.get(outcome_field)
                       if isinstance(payload, dict) else None)
            if outcome is not None:
                state.breakdown[outcome] = state.breakdown.get(outcome, 0) + 1
            state.recent.append({"key": record.get("key"),
                                 "outcome": outcome, "ts": ts})
        elif record.get("record") == QUARANTINE:
            state.quarantined += 1
            state.recent.append({"key": record.get("key"),
                                 "outcome": "quarantined",
                                 "error": record.get("error"), "ts": ts})
    state.recent = state.recent[-RECENT:]
    if len(stamps) >= 2 and stamps[-1] > stamps[0]:
        state.throughput = (len(stamps) - 1) / (stamps[-1] - stamps[0])
    if stamps:
        state.last_result_age = max(now - stamps[-1], 0.0)
    if state.throughput and state.total is not None:
        remaining = max(state.total - state.attempted, 0)
        state.eta = remaining / state.throughput

    shards = shard_paths(store_path.parent)
    state.workers = [_read_shard(p, now, stall_after) for p in shards]
    trace = campaign_trace_path(store_path)
    if trace.exists():
        state.trace_path = trace
    state.detections = _collect_detections(
        ([state.trace_path] if state.trace_path else []) + shards)
    return state


def monitor_flat_metrics(state: MonitorState) -> dict[str, float]:
    """The flat metric namespace of one observation, as the SLO engine
    addresses it.  Rates are omitted (not zero) before any data exists,
    so rules stay ``no_data`` instead of trivially passing."""
    flat: dict[str, float] = {
        "campaign.completed": float(state.completed),
        "campaign.quarantined": float(state.quarantined),
        "workers.stalled": float(len(state.stalled_workers)),
    }
    if state.attempted:
        flat["campaign.quarantine_rate"] = state.quarantine_rate
    if state.completed:
        flat["campaign.divergence_rate"] = state.divergence_rate
    if state.throughput is not None:
        flat["campaign.throughput"] = state.throughput
    return flat


def evaluate_alerts(state: MonitorState,
                    max_quarantine_rate: float | None = None,
                    max_divergence_rate: float | None = None) -> list[str]:
    """Check alert thresholds; fills and returns ``state.alerts``.

    The classic flags are compiled to instantaneous SLO rules and run
    through the same engine as ``--slo`` rule files; the legacy alert
    strings (asserted by downstream tooling) are rendered from the
    firing statuses.
    """
    rules = threshold_rules(max_quarantine_rate=max_quarantine_rate,
                            max_divergence_rate=max_divergence_rate)
    firing = {status.rule for status in
              evaluate_once(rules, monitor_flat_metrics(state))
              if status.firing}
    alerts: list[str] = []
    if "quarantine-rate" in firing:
        alerts.append(
            f"quarantine rate {state.quarantine_rate:.2f} exceeds "
            f"{max_quarantine_rate:.2f} "
            f"({state.quarantined}/{state.attempted} experiments)")
    if "divergence-rate" in firing:
        alerts.append(
            f"divergence rate {state.divergence_rate:.2f} exceeds "
            f"{max_divergence_rate:.2f}")
    if state.stalled_workers:
        alerts.append(
            "stalled workers: "
            + ", ".join(f"w{wid}" for wid in state.stalled_workers))
    state.alerts = alerts
    return alerts


def telemetry_sample(state: MonitorState,
                     now: float | None = None) -> TelemetrySample:
    """One observation as a :class:`TelemetrySample`, so the monitor's
    polled on-disk view feeds the same exposition/SLO machinery as a
    live engine (``repro monitor --serve``)."""
    if now is None:
        now = time.time()
    gauges = {
        "campaign.done": float(state.completed),
        "campaign.quarantined": float(state.quarantined),
        "campaign.quarantine_rate": state.quarantine_rate,
        "campaign.divergence_rate": state.divergence_rate,
        "workers.alive": float(len(state.workers)),
        "workers.busy": float(sum(w.busy_key is not None
                                  for w in state.workers)),
        "workers.stalled": float(len(state.stalled_workers)),
    }
    if state.total is not None:
        gauges["campaign.total"] = float(state.total)
        gauges["campaign.remaining"] = float(
            max(state.total - state.attempted, 0))
    if state.throughput is not None:
        gauges["campaign.throughput"] = state.throughput
    if state.eta is not None:
        gauges["campaign.eta_seconds"] = state.eta
    if state.last_result_age is not None:
        gauges["campaign.last_result_age_seconds"] = state.last_result_age
    return TelemetrySample(
        t=now, gauges=gauges,
        outcomes={k: int(v) for k, v in sorted(state.breakdown.items())})


def snapshot_dict(state: MonitorState) -> dict:
    """A deterministic machine-readable snapshot of one observation.

    Everything wall-clock-dependent (throughput, ETA, write ages, ``ts``
    stamps) is excluded so two snapshots of the same on-disk state are
    byte-identical — the property ``repro monitor --json`` needs to be
    diffable in CI alongside ``diff-campaign``.  Floats are normalized
    by :func:`repro.core.analysis.report.stable_floats`.
    """
    from repro.core.analysis.report import stable_floats

    def recent_row(row: dict) -> dict:
        return {k: v for k, v in sorted(row.items()) if k != "ts"}

    return stable_floats({
        "store": state.store_path.name,
        "kind": state.kind,
        "meta": state.meta,
        "total": state.total,
        "completed": state.completed,
        "quarantined": state.quarantined,
        "quarantine_rate": state.quarantine_rate,
        "divergence_rate": state.divergence_rate,
        "breakdown": dict(sorted(state.breakdown.items())),
        "recent": [recent_row(r) for r in state.recent],
        "workers": [{
            "worker": w.worker,
            "events": w.events,
            "finished": w.finished,
            "busy_key": w.busy_key,
            "unreadable": w.unreadable,
            "truncated": w.truncated,
            "stalled": w.stalled,
        } for w in state.workers],
        "detections": state.detections,
        "trace": None if state.trace_path is None else state.trace_path.name,
        "alerts": state.alerts,
    })


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render_text(state: MonitorState) -> str:
    """The terminal dashboard, one observation per call."""
    lines = []
    workload = state.meta.get("workload", "?")
    lines.append(f"== campaign monitor: {state.store_path.name} "
                 f"(kind={state.kind}, workload={workload}) ==")
    total = "?" if state.total is None else str(state.total)
    progress = f"  progress   {state.completed}/{total} done"
    if state.quarantined:
        progress += f" | {state.quarantined} quarantined"
    if state.total:
        progress += f" | {100.0 * state.attempted / state.total:.0f}%"
    lines.append(progress)
    tput = ("-" if state.throughput is None
            else f"{state.throughput:.2f} exp/s")
    line = f"  throughput {tput} | eta {_fmt_eta(state.eta)}"
    if state.last_result_age is not None:
        line += f" | last result {state.last_result_age:.0f}s ago"
    lines.append(line)
    if state.breakdown:
        top = sorted(state.breakdown.items(), key=lambda kv: (-kv[1], kv[0]))
        lines.append("  outcomes   "
                     + " ".join(f"{k}:{v}" for k, v in top))
    for shard in state.workers:
        if shard.unreadable:
            status = "UNREADABLE"
        elif shard.stalled:
            status = f"STALLED key={shard.busy_key}"
        elif shard.busy_key is not None:
            status = f"busy key={shard.busy_key}"
        else:
            status = "idle"
        line = (f"  worker w{shard.worker:<3} {status} | "
                f"{shard.finished} finished | last write "
                f"{shard.last_write_age:.0f}s ago")
        if shard.truncated:
            line += " | truncated shard"
        lines.append(line)
    if state.detections:
        last = state.detections[-1]
        lines.append(f"  detector   {len(state.detections)} recent firings"
                     f" | last: iter {last['iteration']}"
                     f" {last['condition']} key={last['key']}")
    if state.trace_path is not None:
        lines.append(f"  trace      {state.trace_path.name}")
    for alert in state.alerts:
        lines.append(f"  ALERT      {alert}")
    return "\n".join(lines)


def render_markdown(state: MonitorState) -> str:
    """A static markdown snapshot (for dropping into a report or issue)."""
    workload = state.meta.get("workload", "?")
    lines = [f"# Campaign monitor: `{state.store_path.name}`", ""]
    lines.append(f"- kind: `{state.kind}`, workload: `{workload}`")
    total = "?" if state.total is None else str(state.total)
    lines.append(f"- progress: {state.completed}/{total} done, "
                 f"{state.quarantined} quarantined")
    tput = ("n/a" if state.throughput is None
            else f"{state.throughput:.2f} exp/s")
    lines.append(f"- throughput: {tput}, eta: {_fmt_eta(state.eta)}")
    if state.breakdown:
        lines += ["", "| outcome | count |", "| --- | --- |"]
        for outcome, count in sorted(state.breakdown.items(),
                                     key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"| {outcome} | {count} |")
    if state.workers:
        lines += ["", "| worker | status | finished | last write |",
                  "| --- | --- | --- | --- |"]
        for shard in state.workers:
            if shard.unreadable:
                status = "unreadable"
            elif shard.stalled:
                status = f"**STALLED** `{shard.busy_key}`"
            elif shard.busy_key is not None:
                status = f"busy `{shard.busy_key}`"
            else:
                status = "idle"
            lines.append(f"| w{shard.worker} | {status} | {shard.finished} "
                         f"| {shard.last_write_age:.0f}s ago |")
    for alert in state.alerts:
        lines += ["", f"> **ALERT**: {alert}"]
    return "\n".join(lines) + "\n"


def render_html(state: MonitorState) -> str:
    """A dependency-free static HTML snapshot of the dashboard."""
    def esc(value) -> str:
        return html.escape(str(value))

    workload = state.meta.get("workload", "?")
    total = "?" if state.total is None else str(state.total)
    tput = ("n/a" if state.throughput is None
            else f"{state.throughput:.2f} exp/s")
    rows = []
    for outcome, count in sorted(state.breakdown.items(),
                                 key=lambda kv: (-kv[1], kv[0])):
        rows.append(f"<tr><td>{esc(outcome)}</td>"
                    f"<td>{count}</td></tr>")
    worker_rows = []
    for shard in state.workers:
        if shard.unreadable:
            status, cls = "unreadable", "warn"
        elif shard.stalled:
            status, cls = f"STALLED {esc(shard.busy_key)}", "alert"
        elif shard.busy_key is not None:
            status, cls = f"busy {esc(shard.busy_key)}", ""
        else:
            status, cls = "idle", ""
        worker_rows.append(
            f'<tr class="{cls}"><td>w{shard.worker}</td><td>{status}</td>'
            f"<td>{shard.finished}</td>"
            f"<td>{shard.last_write_age:.0f}s ago</td></tr>")
    alert_html = "".join(f'<p class="alert">ALERT: {esc(a)}</p>'
                         for a in state.alerts)
    detection_rows = "".join(
        f"<tr><td>{esc(d['key'])}</td><td>{esc(d['iteration'])}</td>"
        f"<td>{esc(d['condition'])}</td></tr>"
        for d in state.detections)
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>campaign monitor: {esc(state.store_path.name)}</title>
<style>
body {{ font-family: monospace; margin: 2em; }}
table {{ border-collapse: collapse; margin: 1em 0; }}
td, th {{ border: 1px solid #999; padding: 2px 8px; }}
tr.alert td {{ background: #fdd; font-weight: bold; }}
tr.warn td {{ background: #ffd; }}
p.alert {{ color: #a00; font-weight: bold; }}
</style></head><body>
<h1>campaign monitor: {esc(state.store_path.name)}</h1>
<p>kind={esc(state.kind)} workload={esc(workload)}</p>
<p>progress {state.completed}/{total} done,
{state.quarantined} quarantined | throughput {tput} |
eta {_fmt_eta(state.eta)}</p>
{alert_html}
<h2>outcomes</h2>
<table><tr><th>outcome</th><th>count</th></tr>{''.join(rows)}</table>
<h2>workers</h2>
<table><tr><th>worker</th><th>status</th><th>finished</th>
<th>last write</th></tr>{''.join(worker_rows)}</table>
<h2>recent detector firings</h2>
<table><tr><th>key</th><th>iteration</th><th>condition</th></tr>
{detection_rows}</table>
</body></html>
"""
