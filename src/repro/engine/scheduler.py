"""Campaign-execution engine: parallel dispatch, retry, and resume.

The engine turns a list of :class:`~repro.engine.worker.WorkUnit` into a
key -> result mapping, fanning the units out over a pool of forked
worker processes (or running them in-process for ``parallel <= 1``).
It owns the robustness policy a multi-day campaign needs:

* **resume** — units whose key is already in the result store are not
  re-executed; their stored payloads are folded into the report;
* **timeout** — an experiment past its deadline gets its worker killed
  and is retried (parallel mode; in-process execution cannot preempt);
* **retry with backoff** — failed/timed-out/crashed units are requeued
  with exponential backoff up to ``max_retries`` extra attempts;
* **quarantine** — units that exhaust their retries are recorded in the
  store and skipped by future resumes, so one pathological fault cannot
  sink the campaign;
* **telemetry** — progress snapshots (throughput, breakdown, ETA,
  per-worker health) are published through ``on_progress``.

Determinism: units are fully seeded descriptors, so the result of each
unit is independent of scheduling — the same units yield the same
result set at any worker count.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine import worker as worker_proto
from repro.engine.store import ResultStore
from repro.engine.telemetry import ProgressSnapshot, ProgressTracker
from repro.engine.worker import UnitCapture, WorkUnit, worker_main
from repro.observe import (
    EXPERIMENT_COMPLETED,
    EXPERIMENT_QUARANTINED,
    NULL_TRACER,
    Tracer,
    campaign_trace_path,
    counter,
    histogram,
    merge_campaign_shards,
    profile_scope,
    set_current_tracer,
    shard_path,
)


@dataclass
class EngineConfig:
    """Execution policy for one engine run."""

    #: Worker processes; <= 1 executes in-process (serial).
    parallel: int = 1
    #: Per-experiment deadline in seconds (parallel mode only).
    timeout: float | None = None
    #: Extra attempts after the first failure before quarantining.
    max_retries: int = 2
    #: Base of the exponential retry backoff, in seconds.
    retry_backoff: float = 0.1
    #: Parent poll interval while waiting on workers, in seconds.
    poll_interval: float = 0.05
    #: How the result payload maps to an outcome label for telemetry.
    outcome_field: str = "outcome"
    #: Lease fresh units to runners in blocks of up to this many: the
    #: runner receives a *list* of payloads and must return an
    #: equal-length list of results (the batched backend steps the whole
    #: block through one vectorized program).  Only never-attempted
    #: units are blocked together — retries always lease solo, so one
    #: poisoned unit cannot repeatedly sink its block-mates.  A block
    #: failure/timeout/crash fails every unit in it (each gets a retry).
    block_size: int = 1
    #: Flight recorder: every worker streams its events into a private
    #: shard file next to the result store (required), merged into one
    #: campaign trace when the run ends.
    trace: bool = False
    #: Run workers as daemons (killed with the parent, the safe default).
    #: Must be False when the runner itself spawns processes — e.g. the
    #: multiprocess execution backend's replicas — because daemonic
    #: processes may not have children; the engine still sentinels,
    #: joins, and kills its workers on every exit path.
    worker_daemon: bool = True


@dataclass
class EngineReport:
    """Everything a front-end needs after :meth:`CampaignEngine.run`."""

    #: key -> result payload, including results resumed from the store.
    results: dict[str, dict] = field(default_factory=dict)
    #: Units executed this session.
    executed: int = 0
    #: Units skipped because the store already held them.
    skipped: int = 0
    #: key -> error string for units that exhausted their retries.
    quarantined: dict[str, str] = field(default_factory=dict)
    #: Total retry attempts this session.
    retries: int = 0
    elapsed: float = 0.0
    snapshot: ProgressSnapshot | None = None
    #: Merged campaign trace (EngineConfig.trace runs only).
    trace_path: Path | None = None


@dataclass
class _Task:
    unit: WorkUnit
    attempts: int = 0
    not_before: float = 0.0
    last_error: str = ""
    #: ``time.monotonic()`` when the current lease started (0 = never
    #: leased); feeds the ``engine.experiment_seconds`` histogram.
    leased_at: float = 0.0


class _WorkerHandle:
    """Parent-side state for one worker process."""

    def __init__(self, worker_id: int, ctx, runner_factory, result_queue,
                 trace_path: Path | None = None,
                 outcome_field: str = "outcome", daemon: bool = True):
        self.id = worker_id
        self.queue = ctx.Queue()
        self.ready = False
        #: The in-flight lease: a single-unit list, or an E-sized block.
        self.block: list[_Task] | None = None
        self.deadline: float | None = None
        self.process = ctx.Process(
            target=worker_main,
            args=(worker_id, runner_factory, self.queue, result_queue,
                  trace_path, outcome_field),
            daemon=daemon,
        )
        self.process.start()

    @property
    def idle(self) -> bool:
        return self.ready and self.block is None

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=2.0)


class CampaignEngine:
    """Executes work units through a runner, robustly and resumably.

    ``runner_factory`` is a zero-argument callable returning
    ``runner(payload) -> result-payload``; it is invoked once per worker
    (in the worker, after fork) or once in-process for serial runs.
    ``store``, when given, receives every result as it completes and
    seeds the resume set.
    """

    def __init__(self, runner_factory, config: EngineConfig | None = None,
                 store: ResultStore | None = None, on_progress=None,
                 tracer=None):
        self.runner_factory = runner_factory
        self.config = config or EngineConfig()
        self.store = store
        self.on_progress = on_progress
        #: Event sink for scheduler-level events (completions and
        #: quarantines); defaults to the disabled NULL_TRACER.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: The live tracker of the current run, for out-of-band readers
        #: (the telemetry sampler thread).  None outside ``run``.
        self._tracker: ProgressTracker | None = None

    def progress(self) -> ProgressSnapshot | None:
        """A progress snapshot of the in-flight run (None when idle).

        Safe to call from another thread: the tracker copies its state
        under snapshot, so the sampler never touches engine internals."""
        tracker = self._tracker
        return tracker.snapshot() if tracker is not None else None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, units: list[WorkUnit]) -> EngineReport:
        start = time.monotonic()
        report = EngineReport()
        self._trace_dir: Path | None = None
        if self.config.trace:
            if self.store is None:
                raise ValueError(
                    "EngineConfig.trace requires a result store: worker "
                    "shards and the merged campaign trace live next to it")
            self._trace_dir = self.store.path.parent
            # Fold shards a killed session left behind into the campaign
            # trace before this session's workers reuse the filenames.
            merge_campaign_shards(self.store.path)
        pending: deque[_Task] = deque()
        for unit in units:
            if self.store is not None and unit.key in self.store:
                if unit.key in self.store.completed:
                    report.results[unit.key] = self.store.completed[unit.key]
                else:
                    report.quarantined[unit.key] = \
                        self.store.quarantined[unit.key]
                report.skipped += 1
            else:
                pending.append(_Task(unit))

        tracker = ProgressTracker(total=len(units), skipped=report.skipped,
                                  stall_timeout=self.config.timeout)
        self._tracker = tracker
        field_name = self.config.outcome_field
        tracker.preload_breakdown([
            payload[field_name] for payload in report.results.values()
            if isinstance(payload, dict) and field_name in payload
        ])

        try:
            if self.config.parallel <= 1:
                self._run_serial(pending, report, tracker)
            else:
                self._run_parallel(pending, report, tracker)
        finally:
            report.elapsed = time.monotonic() - start
            report.snapshot = tracker.snapshot()
            if self._trace_dir is not None:
                merged = merge_campaign_shards(self.store.path)
                if merged is not None:
                    report.trace_path = merged.dest
                else:
                    existing = campaign_trace_path(self.store.path)
                    report.trace_path = existing if existing.exists() else None
        return report

    # ------------------------------------------------------------------
    # Shared completion/failure paths
    # ------------------------------------------------------------------
    def _outcome(self, payload) -> str | None:
        if isinstance(payload, dict):
            return payload.get(self.config.outcome_field)
        return None

    def _complete(self, task: _Task, payload: dict, report: EngineReport,
                  tracker: ProgressTracker, worker_id: int) -> None:
        report.results[task.unit.key] = payload
        report.executed += 1
        if self.store is not None:
            self.store.append(task.unit.key, payload)
        counter("engine.completed").inc()
        if task.leased_at:
            histogram("engine.experiment_seconds").observe(
                max(time.monotonic() - task.leased_at, 0.0))
        self.tracer.emit(EXPERIMENT_COMPLETED, key=task.unit.key,
                         outcome=self._outcome(payload))
        tracker.task_done(worker_id, self._outcome(payload))
        self._publish(tracker)

    def _fail(self, task: _Task, error: str, pending: deque[_Task],
              report: EngineReport, tracker: ProgressTracker,
              worker_id: int) -> None:
        task.attempts += 1
        task.last_error = error
        retry = task.attempts <= self.config.max_retries
        tracker.task_failed(worker_id, retried=retry)
        if retry:
            report.retries += 1
            counter("engine.retries").inc()
            task.not_before = time.monotonic() + (
                self.config.retry_backoff * (2 ** (task.attempts - 1)))
            pending.append(task)
        else:
            report.quarantined[task.unit.key] = error
            counter("engine.quarantined").inc()
            self.tracer.emit(EXPERIMENT_QUARANTINED, key=task.unit.key,
                             error=error)
            if self.store is not None:
                self.store.quarantine(task.unit.key, error, task.unit.payload)
        self._publish(tracker)

    def _publish(self, tracker: ProgressTracker) -> None:
        if self.on_progress is not None:
            self.on_progress(tracker.snapshot())

    # ------------------------------------------------------------------
    # Serial execution (parallel <= 1)
    # ------------------------------------------------------------------
    def _run_serial(self, pending: deque[_Task], report: EngineReport,
                    tracker: ProgressTracker) -> None:
        """In-process execution.  Deadlines are not enforced (a wedged
        experiment cannot be preempted without a worker process), but
        retry/quarantine/resume and flight-recorder semantics match the
        parallel path (the in-process runner records as worker 0)."""
        shard_tracer: Tracer | None = None
        capture: UnitCapture | None = None
        previous_tracer = None
        if self._trace_dir is not None:
            shard_tracer = Tracer(stream=shard_path(self._trace_dir, 0),
                                  meta={"worker": 0})
            previous_tracer = set_current_tracer(shard_tracer)
            capture = UnitCapture(shard_tracer, 0, self.config.outcome_field)
        try:
            runner = self.runner_factory()
            while pending:
                task = pending.popleft()
                wait = task.not_before - time.monotonic()
                if wait > 0:
                    time.sleep(wait)
                block = [task]
                self._extend_block(block, pending)
                if len(block) > 1:
                    self._run_serial_block(block, runner, pending, report,
                                           tracker, capture)
                    continue
                tracker.task_started(0, task.unit.key)
                task.leased_at = time.monotonic()
                if capture is not None:
                    capture.start(task.unit.key, task.unit.payload)
                try:
                    with profile_scope("engine.experiment"):
                        payload = runner(task.unit.payload)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:  # noqa: BLE001 - retry policy owns this
                    error = f"{type(exc).__name__}: {exc}"
                    if capture is not None:
                        capture.error(error)
                    self._fail(task, error, pending, report, tracker,
                               worker_id=0)
                    continue
                if capture is not None:
                    capture.done(payload)
                self._complete(task, payload, report, tracker, worker_id=0)
        finally:
            if shard_tracer is not None:
                set_current_tracer(previous_tracer)
                shard_tracer.close()

    def _extend_block(self, block: list[_Task], pending: deque[_Task],
                      now: float | None = None) -> None:
        """Grow a lease up to ``block_size`` with due, never-attempted
        units.  The lead task decides: retries (attempts > 0) always run
        solo so a poisoned unit cannot sink fresh block-mates."""
        if self.config.block_size <= 1 or block[0].attempts != 0:
            return
        now = time.monotonic() if now is None else now
        for _ in range(len(pending)):
            if len(block) >= self.config.block_size:
                break
            candidate = pending.popleft()
            if candidate.attempts == 0 and candidate.not_before <= now:
                block.append(candidate)
            else:
                pending.append(candidate)

    def _run_serial_block(self, block: list[_Task], runner, pending,
                          report, tracker, capture) -> None:
        """Run one leased block through the runner's list protocol in
        process.  Shard capture brackets each unit after the block runs
        (events emitted *during* a block are not attributable to a
        single experiment; the markers still give the merge its per-key
        dedup anchors)."""
        for task in block:
            tracker.task_started(0, task.unit.key)
            task.leased_at = time.monotonic()
        try:
            with profile_scope("engine.experiment"):
                payloads = runner([task.unit.payload for task in block])
            if not isinstance(payloads, list) or len(payloads) != len(block):
                raise RuntimeError(
                    f"block runner returned {payloads!r:.80} for "
                    f"{len(block)} units")
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 - retry policy owns this
            error = f"{type(exc).__name__}: {exc}"
            for task in block:
                if capture is not None:
                    capture.start(task.unit.key, task.unit.payload)
                    capture.error(error)
                self._fail(task, error, pending, report, tracker, worker_id=0)
            return
        for task, payload in zip(block, payloads):
            if capture is not None:
                capture.start(task.unit.key, task.unit.payload)
                capture.done(payload)
            self._complete(task, payload, report, tracker, worker_id=0)

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------
    def _make_context(self):
        methods = mp.get_all_start_methods()
        if "fork" not in methods:
            raise RuntimeError(
                "the parallel engine requires the 'fork' start method so "
                "workers can inherit the prepared campaign; this platform "
                f"offers only {methods} — run with parallel=1")
        return mp.get_context("fork")

    def _run_parallel(self, pending: deque[_Task], report: EngineReport,
                      tracker: ProgressTracker) -> None:
        ctx = self._make_context()
        result_queue = ctx.Queue()
        num_workers = max(1, min(self.config.parallel, len(pending)))
        workers: dict[int, _WorkerHandle] = {}
        next_worker_id = 0

        def spawn() -> None:
            nonlocal next_worker_id
            trace_path = (shard_path(self._trace_dir, next_worker_id)
                          if self._trace_dir is not None else None)
            handle = _WorkerHandle(next_worker_id, ctx, self.runner_factory,
                                   result_queue, trace_path=trace_path,
                                   outcome_field=self.config.outcome_field,
                                   daemon=self.config.worker_daemon)
            workers[handle.id] = handle
            next_worker_id += 1

        def respawn(handle: _WorkerHandle) -> None:
            handle.kill()
            del workers[handle.id]
            tracker.worker_restarted(handle.id)
            if pending or any(w.block is not None for w in workers.values()):
                spawn()

        for _ in range(num_workers):
            spawn()

        try:
            while pending or any(w.block is not None for w in workers.values()):
                now = time.monotonic()
                # Dispatch to idle workers (skip tasks still in backoff).
                for handle in list(workers.values()):
                    if not handle.idle or not pending:
                        continue
                    task = self._next_due(pending, now)
                    if task is None:
                        break
                    block = [task]
                    self._extend_block(block, pending, now)
                    handle.block = block
                    # Deadline scales with the lease: a block is
                    # len(block) experiments of work.
                    handle.deadline = (
                        now + self.config.timeout * len(block)
                        if self.config.timeout is not None else None)
                    for leased in block:
                        tracker.task_started(handle.id, leased.unit.key)
                        leased.leased_at = now
                    if len(block) == 1:
                        handle.queue.put((task.unit.key, task.unit.payload))
                    else:
                        handle.queue.put((
                            [leased.unit.key for leased in block],
                            [leased.unit.payload for leased in block]))

                self._drain_results(result_queue, workers, pending, report,
                                    tracker)
                self._check_deadlines_and_liveness(workers, pending, report,
                                                   tracker, respawn)

                if not workers and pending:
                    raise RuntimeError(
                        "all engine workers died during startup; last "
                        f"pending unit: {pending[0].unit.key}")
        finally:
            for handle in workers.values():
                if handle.process.is_alive():
                    try:
                        handle.queue.put(None)
                    except (ValueError, OSError):
                        pass
            for handle in workers.values():
                handle.process.join(timeout=2.0)
                if handle.process.is_alive():
                    handle.kill()
            result_queue.close()

    @staticmethod
    def _next_due(pending: deque[_Task], now: float) -> _Task | None:
        """Pop the first task whose backoff window has passed."""
        for _ in range(len(pending)):
            task = pending.popleft()
            if task.not_before <= now:
                return task
            pending.append(task)
        return None

    def _drain_results(self, result_queue, workers, pending, report,
                       tracker) -> None:
        block = True
        while True:
            try:
                if block:
                    message = result_queue.get(
                        timeout=self.config.poll_interval)
                    block = False
                else:
                    message = result_queue.get_nowait()
            except Exception:  # noqa: BLE001 - queue.Empty from any context
                return
            tag, worker_id, body = message
            handle = workers.get(worker_id)
            if handle is None:
                continue  # message from a worker we already killed
            if tag == worker_proto.READY:
                handle.ready = True
            elif tag == worker_proto.INIT_ERROR:
                handle.kill()
                del workers[worker_id]
                if not workers and pending:
                    raise RuntimeError(
                        f"engine worker failed to initialize: {body}")
            elif tag in (worker_proto.DONE, worker_proto.ERROR):
                block = handle.block
                handle.block = None
                handle.deadline = None
                if block is None:
                    continue  # late message for a lease already resolved
                key, payload = body
                if isinstance(key, list):
                    if key != [task.unit.key for task in block]:
                        continue
                    if tag == worker_proto.DONE:
                        for task, result in zip(block, payload):
                            self._complete(task, result, report, tracker,
                                           worker_id)
                    else:
                        for task in block:
                            self._fail(task, payload, pending, report,
                                       tracker, worker_id)
                    continue
                if len(block) != 1 or key != block[0].unit.key:
                    continue
                task = block[0]
                if tag == worker_proto.DONE:
                    self._complete(task, payload, report, tracker, worker_id)
                else:
                    self._fail(task, payload, pending, report, tracker,
                               worker_id)

    def _check_deadlines_and_liveness(self, workers, pending, report,
                                      tracker, respawn) -> None:
        now = time.monotonic()
        for handle in list(workers.values()):
            block = handle.block
            if block is not None and handle.deadline is not None \
                    and now > handle.deadline:
                handle.block = None
                error = f"timeout after {self.config.timeout:.1f}s"
                if len(block) > 1:
                    error += f" (block of {len(block)})"
                for task in block:
                    self._fail(task, error, pending, report, tracker,
                               handle.id)
                respawn(handle)
            elif not handle.process.is_alive():
                handle.block = None
                if block is not None:
                    for task in block:
                        self._fail(
                            task,
                            f"worker crashed (exit code "
                            f"{handle.process.exitcode})",
                            pending, report, tracker, handle.id)
                respawn(handle)
