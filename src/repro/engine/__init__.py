"""Parallel campaign-execution engine (Sec. 3.3 scale-out).

The paper's characterization required >2.9M fault-injection experiments
across fleets of accelerators; this subsystem provides the orchestration
layer that makes such campaigns practical: a :class:`CampaignEngine`
that fans seeded work units out over a forked worker pool with
per-experiment timeout/retry/quarantine, a persistent append-only
:class:`ResultStore` that makes runs resumable and mergeable, and
progress telemetry (throughput, outcome breakdown, ETA, worker health).

``Campaign``, ``InferenceCampaign`` and ``run_sweep`` submit work units
here; the engine itself is payload-agnostic.
"""

from repro.engine.monitor import (
    DIVERGENCE_OUTCOMES,
    MonitorState,
    WorkerShard,
    collect,
    evaluate_alerts,
    monitor_flat_metrics,
    render_html,
    render_markdown,
    render_text,
    snapshot_dict,
    telemetry_sample,
)
from repro.engine.scheduler import CampaignEngine, EngineConfig, EngineReport
from repro.engine.store import (
    EXPERIMENT,
    HEADER,
    QUARANTINE,
    STORE_SCHEMA_VERSION,
    ResultStore,
    StoreFormatError,
    StoreSchemaError,
    experiment_key,
    merge_stores,
    read_records,
    store_to_campaign,
)
from repro.engine.telemetry import ProgressSnapshot, ProgressTracker, WorkerHealth
from repro.engine.worker import UnitCapture, WorkUnit

__all__ = [
    "DIVERGENCE_OUTCOMES",
    "EXPERIMENT",
    "HEADER",
    "QUARANTINE",
    "STORE_SCHEMA_VERSION",
    "CampaignEngine",
    "EngineConfig",
    "EngineReport",
    "MonitorState",
    "ProgressSnapshot",
    "ProgressTracker",
    "ResultStore",
    "StoreFormatError",
    "StoreSchemaError",
    "UnitCapture",
    "WorkUnit",
    "WorkerHealth",
    "WorkerShard",
    "collect",
    "evaluate_alerts",
    "experiment_key",
    "merge_stores",
    "monitor_flat_metrics",
    "read_records",
    "render_html",
    "render_markdown",
    "render_text",
    "snapshot_dict",
    "store_to_campaign",
    "telemetry_sample",
]
