"""Persistent, append-only result store for campaign execution.

The paper's characterization rests on >2.9M fault-injection experiments
(Sec. 3.3); at that scale a campaign cannot hold results in memory or
restart from scratch after a crash.  The store is a JSONL file:

* line 1 is a **header** record carrying the schema version and campaign
  metadata (workload, kind, configuration);
* every subsequent line is one **experiment** record (a stable
  experiment key plus the serialized result payload) or one
  **quarantine** record (an experiment that repeatedly crashed or timed
  out, kept so a resume does not retry it forever).

Records are flushed per line, so a killed run loses at most the line
being written; a truncated trailing line is detected and ignored on
resume.  Keys are content hashes of ``(index, fault descriptor)``, which
makes stores idempotent under resume and mergeable across machines.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

#: Current on-disk schema version.  Bump on any incompatible change to
#: the record layout; readers reject versions they do not understand.
STORE_SCHEMA_VERSION = 1

#: Record type tags.
HEADER = "header"
EXPERIMENT = "experiment"
QUARANTINE = "quarantine"


class StoreSchemaError(ValueError):
    """Raised for stores written with an unknown or missing schema."""


class StoreFormatError(ValueError):
    """Raised for structurally invalid store files (not schema drift)."""


def experiment_key(index: int, payload: dict) -> str:
    """Stable content key for one experiment: ``index`` x descriptor.

    The index disambiguates the (astronomically unlikely but possible)
    case of the same fault being sampled twice in one campaign, so a
    resumed run re-executes exactly the missing experiments.
    """
    canon = json.dumps({"index": int(index), "desc": payload},
                       sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(canon.encode()).hexdigest()[:16]


def _check_schema(header: dict, path: Path) -> None:
    if header.get("record") != HEADER:
        raise StoreFormatError(
            f"{path}: first record is not a store header "
            f"(got {header.get('record')!r})")
    schema = header.get("schema")
    if schema != STORE_SCHEMA_VERSION:
        raise StoreSchemaError(
            f"{path}: store schema version {schema!r} is not supported "
            f"(this build reads version {STORE_SCHEMA_VERSION}); "
            f"re-run the campaign or convert the store")


class ResultStore:
    """Append-only JSONL result store with resume support.

    Open with ``resume=False`` (the default) to create a fresh store —
    refusing to clobber an existing non-empty one — or ``resume=True``
    to load completed/quarantined keys from an existing file and append
    to it.
    """

    def __init__(self, path: str | Path, kind: str = "campaign",
                 meta: dict | None = None, resume: bool = False):
        self.path = Path(path)
        self.kind = kind
        self.meta = dict(meta or {})
        #: key -> result payload for completed experiments.
        self.completed: dict[str, dict] = {}
        #: key -> error string for quarantined experiments.
        self.quarantined: dict[str, str] = {}
        #: key -> fault payload for quarantined experiments (may be None).
        self.quarantine_payloads: dict[str, dict | None] = {}
        existing = self.path.exists() and self.path.stat().st_size > 0
        if existing:
            if not resume:
                raise FileExistsError(
                    f"{self.path} already holds campaign results; pass "
                    f"resume=True (CLI: --resume) to continue it, or "
                    f"choose a new store path")
            self._load()
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write({"record": HEADER, "schema": STORE_SCHEMA_VERSION,
                         "kind": self.kind, "meta": self.meta})

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        records = read_records(self.path)
        header = records[0]
        self.kind = header.get("kind", self.kind)
        self.meta = header.get("meta", {}) or self.meta
        for record in records[1:]:
            if record["record"] == EXPERIMENT:
                self.completed[record["key"]] = record["payload"]
            elif record["record"] == QUARANTINE:
                self.quarantined[record["key"]] = record.get("error", "")
                self.quarantine_payloads[record["key"]] = record.get("payload")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, key: str, payload: dict) -> None:
        """Persist one completed experiment (idempotent per key).

        Records carry a wall-clock ``ts`` stamp (additive; absent in
        older stores) so monitors can compute session throughput."""
        if key in self.completed:
            return
        self._write({"record": EXPERIMENT, "key": key, "payload": payload,
                     "ts": time.time()})
        self.completed[key] = payload

    def quarantine(self, key: str, error: str,
                   payload: dict | None = None) -> None:
        """Persist a pathological experiment so resumes skip it."""
        if key in self.quarantined:
            return
        self._write({"record": QUARANTINE, "key": key, "error": error,
                     "payload": payload, "ts": time.time()})
        self.quarantined[key] = error
        self.quarantine_payloads[key] = payload

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self.completed or key in self.quarantined

    def __len__(self) -> int:
        return len(self.completed)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_records(path: str | Path) -> list[dict]:
    """Parse a store file, validating the header schema.

    A truncated final line (a run killed mid-write) is silently
    dropped; a malformed line anywhere else is a hard error.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise StoreFormatError(f"{path}: empty store file")
    records: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines):
                break  # partial trailing write from a killed run
            raise StoreFormatError(
                f"{path}:{lineno}: corrupt store record") from None
    if not records:
        raise StoreFormatError(f"{path}: no parseable records")
    _check_schema(records[0], path)
    return records


def merge_stores(sources: list[str | Path], dest: str | Path) -> ResultStore:
    """Merge partial stores (e.g. shards from several machines) into one.

    Records are deduplicated by experiment key; an experiment completed
    in any shard wins over a quarantine record for the same key.  All
    shards must agree on ``kind``.
    """
    if not sources:
        raise ValueError("nothing to merge")
    loaded = []
    for source in sources:
        records = read_records(source)
        loaded.append((Path(source), records))
    kinds = {records[0].get("kind") for _, records in loaded}
    if len(kinds) != 1:
        raise ValueError(f"cannot merge stores of different kinds: {sorted(kinds)}")
    merged = ResultStore(dest, kind=kinds.pop(),
                         meta=loaded[0][1][0].get("meta") or {})
    quarantines: dict[str, dict] = {}
    for _, records in loaded:
        for record in records[1:]:
            if record["record"] == EXPERIMENT:
                merged.append(record["key"], record["payload"])
            elif record["record"] == QUARANTINE:
                quarantines[record["key"]] = record
    for key, record in quarantines.items():
        if key not in merged.completed:
            merged.quarantine(key, record.get("error", ""), record.get("payload"))
    return merged


def store_to_campaign(path: str | Path):
    """Reconstruct a :class:`CampaignResult` from a campaign-kind store."""
    from repro.core.faults.campaign import CampaignResult
    from repro.core.faults.serialization import experiment_from_dict

    records = read_records(path)
    header = records[0]
    if header.get("kind") != "campaign":
        raise StoreFormatError(
            f"{path}: store kind {header.get('kind')!r} is not a campaign "
            f"store")
    experiments = [r for r in records[1:] if r["record"] == EXPERIMENT]
    experiments.sort(key=lambda r: r["payload"].get("index", 0))
    return CampaignResult(
        workload=header.get("meta", {}).get("workload", "unknown"),
        results=[experiment_from_dict(r["payload"]) for r in experiments],
    )
