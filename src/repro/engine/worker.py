"""Worker-process side of the campaign engine.

Each worker builds its runner once (for campaigns this trains/restores
the fault-free baseline — the expensive part), then executes work units
from its private task queue until it receives the ``None`` sentinel.
The parent dispatches one unit at a time, which is what makes
per-experiment deadlines and crash attribution possible: a busy worker
maps to exactly one in-flight experiment.

Workers are forked, so the runner factory may close over live objects
(e.g. an already-prepared :class:`~repro.core.faults.campaign.Campaign`
whose baseline snapshot is then inherited copy-on-write instead of
being retrained per worker).

With tracing on (``EngineConfig.trace``) each worker is a flight
recorder: it streams every event into a private shard file next to the
result store, stamped with the experiment key / worker id / attempt it
belongs to, and installs itself as the process-wide current tracer so
code deep inside the runner (the trainer, the injector, the detector)
emits into the same shard without the payload-agnostic engine threading
a tracer through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observe import (
    EXPERIMENT_FINISHED,
    EXPERIMENT_STARTED,
    Tracer,
    profile_scope,
    set_current_tracer,
)

#: Message tags on the worker -> parent result queue.
READY = "ready"
DONE = "done"
ERROR = "error"
INIT_ERROR = "init_error"


@dataclass(frozen=True)
class WorkUnit:
    """One experiment to execute: a stable key plus a JSON-safe payload."""

    key: str
    payload: dict


class UnitCapture:
    """Per-unit shard-capture bookkeeping (worker and serial paths).

    Stamps the tracer's context with ``key``/``worker``/``attempt``
    around each unit and brackets the unit's events with
    ``experiment_started`` / ``experiment_finished`` markers — the
    attribution the shard merge needs to deduplicate retried units.
    The attempt counter is shard-local (each worker writes its own
    file), which keeps attempt ids unique per (shard, key).
    """

    def __init__(self, tracer: Tracer, worker_id: int,
                 outcome_field: str = "outcome"):
        self.tracer = tracer
        self.worker_id = worker_id
        self.outcome_field = outcome_field
        self._attempts: dict[str, int] = {}

    def start(self, key: str, payload=None) -> None:
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        self.tracer.set_context(key=key, worker=self.worker_id,
                                attempt=attempt)
        # The unit payload makes the trace self-contained: replay can
        # reconstruct the exact fault descriptor from this event alone.
        if payload is not None:
            self.tracer.emit(EXPERIMENT_STARTED, unit=payload)
        else:
            self.tracer.emit(EXPERIMENT_STARTED)

    def done(self, result) -> None:
        outcome = (result.get(self.outcome_field)
                   if isinstance(result, dict) else None)
        arena = (result.get("arena_sha256")
                 if isinstance(result, dict) else None)
        if arena is not None:
            self.tracer.emit(EXPERIMENT_FINISHED, status="done",
                             outcome=outcome, arena_sha256=arena)
        else:
            self.tracer.emit(EXPERIMENT_FINISHED, status="done",
                             outcome=outcome)
        self.tracer.clear_context()

    def error(self, error: str) -> None:
        self.tracer.emit(EXPERIMENT_FINISHED, status="error", error=error)
        self.tracer.clear_context()


def _run_block(runner, keys: list, payloads: list, worker_id: int,
               result_queue, capture: UnitCapture | None) -> None:
    """Execute one E-sized block lease (``keys`` is a list, the block
    protocol marker).  The runner gets every payload at once and must
    return an equal-length result list; success reports ``DONE`` with
    ``(keys, results)``, any failure fails the whole block (the parent
    retries each unit solo).  Shard capture brackets each unit after the
    block: events emitted while the block runs are interleaved across
    its experiments and are not attributed to a single one."""
    try:
        with profile_scope("engine.experiment"):
            results = runner(payloads)
        if not isinstance(results, list) or len(results) != len(keys):
            raise RuntimeError(
                f"block runner returned {results!r:.80} for "
                f"{len(keys)} units")
        if capture is not None:
            for key, payload, result in zip(keys, payloads, results):
                capture.start(key, payload)
                capture.done(result)
        result_queue.put((DONE, worker_id, (keys, results)))
    except BaseException as exc:  # noqa: BLE001 - one bad block must not kill the pool
        error = f"{type(exc).__name__}: {exc}"
        if capture is not None:
            for key, payload in zip(keys, payloads):
                capture.start(key, payload)
                capture.error(error)
        result_queue.put((ERROR, worker_id, (keys, error)))


def worker_main(worker_id: int, runner_factory, task_queue, result_queue,
                trace_path=None, outcome_field: str = "outcome") -> None:
    """Worker process entry point (see module docstring).

    ``trace_path``, when given, turns on flight recording: a streaming
    shard tracer is opened there and installed process-wide for the
    worker's lifetime.
    """
    tracer: Tracer | None = None
    capture: UnitCapture | None = None
    if trace_path is not None:
        tracer = Tracer(stream=trace_path, meta={"worker": worker_id})
        set_current_tracer(tracer)
        capture = UnitCapture(tracer, worker_id, outcome_field)
    try:
        runner = runner_factory()
    except BaseException as exc:  # noqa: BLE001 - report, never hang the parent
        result_queue.put((INIT_ERROR, worker_id, f"{type(exc).__name__}: {exc}"))
        if tracer is not None:
            tracer.close()
        return
    result_queue.put((READY, worker_id, None))
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            key, payload = task
            if isinstance(key, list):
                _run_block(runner, key, payload, worker_id, result_queue,
                           capture)
                continue
            if capture is not None:
                capture.start(key, payload)
            try:
                with profile_scope("engine.experiment"):
                    result = runner(payload)
                if capture is not None:
                    capture.done(result)
                result_queue.put((DONE, worker_id, (key, result)))
            except BaseException as exc:  # noqa: BLE001 - one bad unit must not kill the pool
                error = f"{type(exc).__name__}: {exc}"
                if capture is not None:
                    capture.error(error)
                result_queue.put((ERROR, worker_id, (key, error)))
    finally:
        # The shard must be closed (and the process-wide tracer reset)
        # even if the task queue itself raises — e.g. the parent died
        # and the queue pipe broke — so the flight-recorder shard stays
        # readable up to the last completed unit.
        if tracer is not None:
            set_current_tracer(None)
            tracer.close()
