"""Worker-process side of the campaign engine.

Each worker builds its runner once (for campaigns this trains/restores
the fault-free baseline — the expensive part), then executes work units
from its private task queue until it receives the ``None`` sentinel.
The parent dispatches one unit at a time, which is what makes
per-experiment deadlines and crash attribution possible: a busy worker
maps to exactly one in-flight experiment.

Workers are forked, so the runner factory may close over live objects
(e.g. an already-prepared :class:`~repro.core.faults.campaign.Campaign`
whose baseline snapshot is then inherited copy-on-write instead of
being retrained per worker).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observe import profile_scope

#: Message tags on the worker -> parent result queue.
READY = "ready"
DONE = "done"
ERROR = "error"
INIT_ERROR = "init_error"


@dataclass(frozen=True)
class WorkUnit:
    """One experiment to execute: a stable key plus a JSON-safe payload."""

    key: str
    payload: dict


def worker_main(worker_id: int, runner_factory, task_queue, result_queue) -> None:
    """Worker process entry point (see module docstring)."""
    try:
        runner = runner_factory()
    except BaseException as exc:  # noqa: BLE001 - report, never hang the parent
        result_queue.put((INIT_ERROR, worker_id, f"{type(exc).__name__}: {exc}"))
        return
    result_queue.put((READY, worker_id, None))
    while True:
        task = task_queue.get()
        if task is None:
            break
        key, payload = task
        try:
            with profile_scope("engine.experiment"):
                result = runner(payload)
            result_queue.put((DONE, worker_id, (key, result)))
        except BaseException as exc:  # noqa: BLE001 - one bad unit must not kill the pool
            result_queue.put((ERROR, worker_id,
                              (key, f"{type(exc).__name__}: {exc}")))
