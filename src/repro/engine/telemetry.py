"""Progress and health telemetry for campaign execution.

A paper-scale campaign runs for days; the operator needs a live view of
throughput (experiments/sec), the outcome breakdown so far, an ETA, and
per-worker health (a wedged or crash-looping worker shows up here long
before the run finishes).  The tracker is pure bookkeeping — the engine
feeds it events and periodically publishes a :class:`ProgressSnapshot`
through the caller's ``on_progress`` callback.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field


@dataclass
class WorkerHealth:
    """Per-worker counters, keyed by worker id in the snapshot."""

    completed: int = 0
    failures: int = 0
    restarts: int = 0
    #: Key of the experiment currently executing (None when idle).
    busy_key: str | None = None
    #: Monotonic time the current experiment started (None when idle).
    busy_since: float | None = None
    #: Seconds the current experiment has been running, filled at
    #: snapshot time (0.0 when idle) so consumers need no clock.
    busy_elapsed_s: float = 0.0

    def busy_elapsed(self, now: float) -> float:
        return 0.0 if self.busy_since is None else now - self.busy_since


@dataclass
class ProgressSnapshot:
    """One observation of campaign progress."""

    total: int
    done: int
    skipped: int
    quarantined: int
    retries: int
    elapsed: float
    #: Completed experiments per second this session (excludes skipped).
    throughput: float
    #: Estimated seconds to completion (None before the first completion).
    eta: float | None
    #: Outcome label -> count over everything completed so far.
    breakdown: dict[str, int]
    workers: dict[int, WorkerHealth] = field(default_factory=dict)
    #: Busy time beyond which a worker counts as stalled (typically the
    #: engine's per-experiment timeout); None disables stall flagging.
    stall_timeout: float | None = None

    @property
    def remaining(self) -> int:
        return max(self.total - self.done - self.quarantined, 0)

    def stalled_workers(self) -> list[int]:
        """Ids of workers whose current experiment exceeds the stall
        timeout — a wedged experiment the engine has not yet preempted."""
        if self.stall_timeout is None:
            return []
        return sorted(wid for wid, w in self.workers.items()
                      if w.busy_key is not None
                      and w.busy_elapsed_s > self.stall_timeout)

    def render(self) -> str:
        """One status line, suitable for streaming to a terminal."""
        parts = [f"{self.done}/{self.total} done"]
        if self.skipped:
            parts.append(f"{self.skipped} resumed")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        if self.retries:
            parts.append(f"{self.retries} retries")
        parts.append(f"{self.throughput:.2f} exp/s")
        if self.eta is not None:
            parts.append(f"eta {self.eta:.0f}s")
        if self.breakdown:
            top = sorted(self.breakdown.items(), key=lambda kv: -kv[1])[:3]
            parts.append(" ".join(f"{k}:{v}" for k, v in top))
        if self.workers:
            alive = len(self.workers)
            restarts = sum(w.restarts for w in self.workers.values())
            busy = sum(w.busy_key is not None for w in self.workers.values())
            detail = f"workers {busy}/{alive} busy"
            if restarts:
                detail += f", {restarts} restarts"
            stalled = self.stalled_workers()
            if stalled:
                detail += (", STALLED: "
                           + ",".join(f"w{wid}" for wid in stalled))
            parts.append(detail)
        return "[engine] " + " | ".join(parts)


class ProgressTracker:
    """Accumulates engine events into :class:`ProgressSnapshot` values.

    ``done`` counts completed experiments including ones resumed from the
    store (so the fraction reflects campaign completion); throughput and
    ETA are computed from this session's completions only.
    """

    def __init__(self, total: int, skipped: int = 0,
                 clock=time.monotonic, stall_timeout: float | None = None):
        self.total = int(total)
        self.skipped = int(skipped)
        self.stall_timeout = stall_timeout
        self._clock = clock
        self._start = clock()
        self.session_done = 0
        self.quarantined = 0
        self.retries = 0
        self.breakdown: Counter[str] = Counter()
        self.workers: dict[int, WorkerHealth] = {}

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _worker(self, worker_id: int) -> WorkerHealth:
        return self.workers.setdefault(worker_id, WorkerHealth())

    def task_started(self, worker_id: int, key: str) -> None:
        health = self._worker(worker_id)
        health.busy_key = key
        health.busy_since = self._clock()

    def task_done(self, worker_id: int, outcome: str | None) -> None:
        health = self._worker(worker_id)
        health.completed += 1
        health.busy_key = None
        health.busy_since = None
        self.session_done += 1
        if outcome is not None:
            self.breakdown[outcome] += 1

    def task_failed(self, worker_id: int, retried: bool) -> None:
        health = self._worker(worker_id)
        health.failures += 1
        health.busy_key = None
        health.busy_since = None
        if retried:
            self.retries += 1
        else:
            self.quarantined += 1

    def worker_restarted(self, worker_id: int) -> None:
        self._worker(worker_id).restarts += 1

    def preload_breakdown(self, outcomes: list[str]) -> None:
        """Fold outcomes resumed from the store into the breakdown."""
        self.breakdown.update(outcomes)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def snapshot(self) -> ProgressSnapshot:
        now = self._clock()
        elapsed = now - self._start
        throughput = self.session_done / elapsed if elapsed > 0 else 0.0
        done = self.skipped + self.session_done
        remaining = max(self.total - done - self.quarantined, 0)
        eta = remaining / throughput if throughput > 0 else None
        workers = {}
        # list() copies: the telemetry sampler snapshots from its own
        # thread while the engine mutates these dicts.
        for wid, w in list(self.workers.items()):
            copy = WorkerHealth(**vars(w))
            copy.busy_elapsed_s = w.busy_elapsed(now)
            workers[wid] = copy
        return ProgressSnapshot(
            total=self.total,
            done=done,
            skipped=self.skipped,
            quarantined=self.quarantined,
            retries=self.retries,
            elapsed=elapsed,
            throughput=throughput,
            eta=eta,
            breakdown=dict(self.breakdown),
            workers=workers,
            stall_timeout=self.stall_timeout,
        )
