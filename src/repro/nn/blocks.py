"""Composite building blocks: residual, dense, squeeze-excite, NF blocks.

These provide the architectural ingredients of the paper's workload zoo
(Table 2): ResNet (residual + BatchNorm), DenseNet (dense connectivity),
EfficientNet (squeeze-excite), and NFNet (normalizer-free residual).  Each
block implements its own explicit backward so every internal operation
remains an injectable op site.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU, ScaledReLU, Sigmoid, SiLU
from repro.nn.conv import Conv2D, GlobalAvgPool2D
from repro.nn.linear import Dense
from repro.nn.module import Module, Sequential
from repro.nn.normalization import BatchNorm


class ResidualBlock(Module):
    """Basic ResNet block: conv-(BN)-ReLU-conv-(BN) + shortcut, then ReLU.

    ``use_bn=False`` gives the paper's Resnet_NoBN configuration, the one
    where SharpSlowDegrade becomes reachable (Sec. 4.2.3: it "can only
    occur if normalization layers are not present").
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        stride: int = 1,
        use_bn: bool = True,
        bn_momentum: float = 0.9,
    ):
        super().__init__()
        self.use_bn = bool(use_bn)
        self.add_module(
            "conv1",
            Conv2D(in_channels, out_channels, 3, rng, stride=stride, use_bias=not use_bn),
        )
        self.add_module(
            "conv2", Conv2D(out_channels, out_channels, 3, rng, use_bias=not use_bn)
        )
        if use_bn:
            self.add_module("bn1", BatchNorm(out_channels, momentum=bn_momentum))
            self.add_module("bn2", BatchNorm(out_channels, momentum=bn_momentum))
        self.add_module("relu1", ReLU())
        self.add_module("relu_out", ReLU())
        self.has_projection = stride != 1 or in_channels != out_channels
        if self.has_projection:
            self.add_module(
                "proj",
                Conv2D(in_channels, out_channels, 1, rng, stride=stride, padding=0,
                       use_bias=not use_bn),
            )
            if use_bn:
                self.add_module("proj_bn", BatchNorm(out_channels, momentum=bn_momentum))

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.conv1.forward(x)
        if self.use_bn:
            h = self.bn1.forward(h)
        h = self.relu1.forward(h)
        h = self.conv2.forward(h)
        if self.use_bn:
            h = self.bn2.forward(h)
        if self.has_projection:
            shortcut = self.proj.forward(x)
            if self.use_bn:
                shortcut = self.proj_bn.forward(shortcut)
        else:
            shortcut = x
        with np.errstate(over="ignore", invalid="ignore"):
            out = (h + shortcut).astype(np.float32)
        return self.relu_out.forward(out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.relu_out.backward(grad)
        g_main = grad
        g_short = grad
        if self.use_bn:
            g_main = self.bn2.backward(g_main)
        g_main = self.conv2.backward(g_main)
        g_main = self.relu1.backward(g_main)
        if self.use_bn:
            g_main = self.bn1.backward(g_main)
        g_main = self.conv1.backward(g_main)
        if self.has_projection:
            if self.use_bn:
                g_short = self.proj_bn.backward(g_short)
            g_short = self.proj.backward(g_short)
        with np.errstate(over="ignore", invalid="ignore"):
            return (g_main + g_short).astype(np.float32)


class DenseLayer(Module):
    """One DenseNet layer: BN-ReLU-conv producing ``growth_rate`` channels."""

    def __init__(self, in_channels: int, growth_rate: int, rng: np.random.Generator,
                 bn_momentum: float = 0.9):
        super().__init__()
        self.add_module("bn", BatchNorm(in_channels, momentum=bn_momentum))
        self.add_module("relu", ReLU())
        self.add_module("conv", Conv2D(in_channels, growth_rate, 3, rng, use_bias=False))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.conv.forward(self.relu.forward(self.bn.forward(x)))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.bn.backward(self.relu.backward(self.conv.backward(grad)))


class DenseBlock(Module):
    """DenseNet block: each layer consumes the concatenation of all
    previous feature maps and contributes ``growth_rate`` new channels."""

    def __init__(self, in_channels: int, growth_rate: int, num_layers: int,
                 rng: np.random.Generator, bn_momentum: float = 0.9):
        super().__init__()
        self.growth_rate = int(growth_rate)
        self.num_layers = int(num_layers)
        self.dense_layers: list[DenseLayer] = []
        channels = in_channels
        for i in range(num_layers):
            layer = DenseLayer(channels, growth_rate, rng, bn_momentum=bn_momentum)
            self.add_module(f"layer{i}", layer)
            self.dense_layers.append(layer)
            channels += growth_rate
        self.out_channels = channels
        self._widths: list[int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        features = x
        self._widths = [x.shape[1]]
        for layer in self.dense_layers:
            new = layer.forward(features)
            self._widths.append(new.shape[1])
            features = np.concatenate([features, new], axis=1)
        return features

    def backward(self, grad: np.ndarray) -> np.ndarray:
        # Walk layers in reverse: split off the channels each layer
        # contributed, backprop through the layer, and fold its input
        # gradient back into the accumulated gradient of the concatenation.
        for i in range(self.num_layers - 1, -1, -1):
            width = self._widths[i + 1]
            g_new = grad[:, -width:]
            grad = grad[:, :-width].copy()
            g_input = self.dense_layers[i].backward(g_new)
            with np.errstate(over="ignore", invalid="ignore"):
                grad += g_input
        return grad.astype(np.float32)


class TransitionLayer(Module):
    """DenseNet transition: BN-ReLU-1x1conv then 2x2 average pooling."""

    def __init__(self, in_channels: int, out_channels: int, rng: np.random.Generator,
                 bn_momentum: float = 0.9):
        super().__init__()
        from repro.nn.conv import AvgPool2D

        self.add_module("bn", BatchNorm(in_channels, momentum=bn_momentum))
        self.add_module("relu", ReLU())
        self.add_module("conv", Conv2D(in_channels, out_channels, 1, rng, padding=0,
                                       use_bias=False))
        self.add_module("pool", AvgPool2D(2))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.pool.forward(
            self.conv.forward(self.relu.forward(self.bn.forward(x)))
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.bn.backward(
            self.relu.backward(self.conv.backward(self.pool.backward(grad)))
        )


class SqueezeExcite(Module):
    """Squeeze-and-excitation channel gating (EfficientNet ingredient)."""

    def __init__(self, channels: int, rng: np.random.Generator, reduction: int = 4):
        super().__init__()
        hidden = max(channels // reduction, 1)
        self.add_module("pool", GlobalAvgPool2D())
        self.add_module("fc1", Dense(channels, hidden, rng))
        self.add_module("act", SiLU())
        self.add_module("fc2", Dense(hidden, channels, rng))
        self.add_module("gate", Sigmoid())
        self._x: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        squeezed = self.pool.forward(x)
        scale = self.gate.forward(self.fc2.forward(self.act.forward(self.fc1.forward(squeezed))))
        self._scale = scale
        with np.errstate(over="ignore", invalid="ignore"):
            return (x * scale[:, :, None, None]).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore", invalid="ignore"):
            d_scale = (grad * self._x).sum(axis=(2, 3)).astype(np.float32)
            dx_direct = (grad * self._scale[:, :, None, None]).astype(np.float32)
        d_squeezed = self.fc1.backward(
            self.act.backward(self.fc2.backward(self.gate.backward(d_scale)))
        )
        dx_pool = self.pool.backward(d_squeezed)
        with np.errstate(over="ignore", invalid="ignore"):
            return (dx_direct + dx_pool).astype(np.float32)


class MBConvBlock(Module):
    """Simplified EfficientNet MBConv: expand-conv, SE gate, project, skip."""

    def __init__(self, in_channels: int, out_channels: int, rng: np.random.Generator,
                 expansion: int = 2, stride: int = 1, bn_momentum: float = 0.9):
        super().__init__()
        hidden = in_channels * expansion
        self.add_module("expand", Conv2D(in_channels, hidden, 1, rng, padding=0,
                                         use_bias=False))
        self.add_module("bn1", BatchNorm(hidden, momentum=bn_momentum))
        self.add_module("act1", SiLU())
        self.add_module("conv", Conv2D(hidden, hidden, 3, rng, stride=stride,
                                       use_bias=False))
        self.add_module("bn2", BatchNorm(hidden, momentum=bn_momentum))
        self.add_module("act2", SiLU())
        self.add_module("se", SqueezeExcite(hidden, rng))
        self.add_module("project", Conv2D(hidden, out_channels, 1, rng, padding=0,
                                          use_bias=False))
        self.add_module("bn3", BatchNorm(out_channels, momentum=bn_momentum))
        self.has_skip = stride == 1 and in_channels == out_channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.act1.forward(self.bn1.forward(self.expand.forward(x)))
        h = self.act2.forward(self.bn2.forward(self.conv.forward(h)))
        h = self.se.forward(h)
        h = self.bn3.forward(self.project.forward(h))
        if self.has_skip:
            with np.errstate(over="ignore", invalid="ignore"):
                h = (h + x).astype(np.float32)
        return h

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.project.backward(self.bn3.backward(grad))
        g = self.se.backward(g)
        g = self.conv.backward(self.bn2.backward(self.act2.backward(g)))
        g = self.expand.backward(self.bn1.backward(self.act1.backward(g)))
        if self.has_skip:
            with np.errstate(over="ignore", invalid="ignore"):
                g = (g + grad).astype(np.float32)
        return g


class NFBlock(Module):
    """Normalizer-free residual block (NFNet ingredient).

    ``out = x + alpha * branch(x / beta)`` with variance-preserving scaled
    ReLU activations instead of BatchNorm.  Because there are no moving
    statistics, latent outcomes in NFNet come solely from optimizer history
    values — matching the paper's observation that SharpSlowDegrade occurs
    for NFNet and Resnet_NoBN.
    """

    def __init__(self, channels: int, rng: np.random.Generator,
                 alpha: float = 0.2, beta: float = 1.0):
        super().__init__()
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.add_module("act1", ScaledReLU())
        self.add_module("conv1", Conv2D(channels, channels, 3, rng))
        self.add_module("act2", ScaledReLU())
        self.add_module("conv2", Conv2D(channels, channels, 3, rng))

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.act1.forward(x / self.beta)
        h = self.conv1.forward(h)
        h = self.act2.forward(h)
        h = self.conv2.forward(h)
        with np.errstate(over="ignore", invalid="ignore"):
            return (x + self.alpha * h).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = (self.alpha * grad).astype(np.float32)
        g = self.conv2.backward(g)
        g = self.act2.backward(g)
        g = self.conv1.backward(g)
        g = self.act1.backward(g) / self.beta
        with np.errstate(over="ignore", invalid="ignore"):
            return (grad + g).astype(np.float32)


class InceptionBlock(Module):
    """GoogLeNet-style inception block (parallel 1x1 / 3x3 / 5x5 / pool
    branches, channel-concatenated).

    GoogleNet is one of the five models the paper validates its software
    fault models on (Sec. 3.2.3); the branching dataflow also exercises
    fault propagation through parallel paths that re-merge.
    """

    def __init__(self, in_channels: int, branch_channels: int,
                 rng: np.random.Generator, bn_momentum: float = 0.9):
        super().__init__()
        from repro.nn.conv import AvgPool2D

        self.add_module("b1", Conv2D(in_channels, branch_channels, 1, rng,
                                     padding=0, use_bias=False))
        self.add_module("b3", Conv2D(in_channels, branch_channels, 3, rng,
                                     use_bias=False))
        self.add_module("b5", Conv2D(in_channels, branch_channels, 5, rng,
                                     use_bias=False))
        self.add_module("bp", Conv2D(in_channels, branch_channels, 1, rng,
                                     padding=0, use_bias=False))
        self.add_module("bn", BatchNorm(4 * branch_channels, momentum=bn_momentum))
        self.add_module("relu", ReLU())
        self.out_channels = 4 * branch_channels
        self._branch_widths: list[int] | None = None
        self._pool_cache: np.ndarray | None = None

    def _pool(self, x: np.ndarray) -> np.ndarray:
        # 3x3 average pooling, stride 1, zero "same" padding (count
        # includes padding, so the adjoint is a plain scatter).
        padded = np.pad(x, [(0, 0), (0, 0), (1, 1), (1, 1)])
        out = np.zeros_like(x)
        for dy in range(3):
            for dx in range(3):
                out += padded[:, :, dy : dy + x.shape[2], dx : dx + x.shape[3]]
        return (out / 9.0).astype(np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        pooled = self._pool(x)
        branches = [
            self.b1.forward(x),
            self.b3.forward(x),
            self.b5.forward(x),
            self.bp.forward(pooled),
        ]
        self._branch_widths = [b.shape[1] for b in branches]
        merged = np.concatenate(branches, axis=1)
        return self.relu.forward(self.bn.forward(merged))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.bn.backward(self.relu.backward(grad))
        lo = 0
        branch_grads = []
        for width in self._branch_widths:
            branch_grads.append(grad[:, lo : lo + width])
            lo += width
        g1 = self.b1.backward(np.ascontiguousarray(branch_grads[0]))
        g3 = self.b3.backward(np.ascontiguousarray(branch_grads[1]))
        g5 = self.b5.backward(np.ascontiguousarray(branch_grads[2]))
        gp_pooled = self.bp.backward(np.ascontiguousarray(branch_grads[3]))
        # Adjoint of the stride-1 3x3 zero-padded average pool: scatter
        # each output gradient over its 3x3 window, then crop the padding.
        n, c, h, w = self._x_shape
        padded = np.zeros((n, c, h + 2, w + 2), dtype=np.float32)
        for dy in range(3):
            for dx in range(3):
                padded[:, :, dy : dy + h, dx : dx + w] += gp_pooled / 9.0
        gp = padded[:, :, 1 : 1 + h, 1 : 1 + w]
        with np.errstate(over="ignore", invalid="ignore"):
            return (g1 + g3 + g5 + gp).astype(np.float32)


def conv_bn_act(
    in_channels: int,
    out_channels: int,
    rng: np.random.Generator,
    stride: int = 1,
    use_bn: bool = True,
    bn_momentum: float = 0.9,
) -> Sequential:
    """Convenience stem: Conv2D [+ BatchNorm] + ReLU."""
    layers: list[Module] = [
        Conv2D(in_channels, out_channels, 3, rng, stride=stride, use_bias=not use_bn)
    ]
    if use_bn:
        layers.append(BatchNorm(out_channels, momentum=bn_momentum))
    layers.append(ReLU())
    return Sequential(*layers)
