"""Loss functions with explicit gradients.

Softmax-cross-entropy is the loss Algorithm 1's bound derivation assumes
(Property 3): its input gradient is ``(p_i - y_i) / m``, which is bounded
by ``1/m`` in magnitude — the anchor of the gradient-history bound.
"""

from __future__ import annotations

import numpy as np


class Loss:
    """Base class: ``forward`` returns a scalar loss, ``backward`` the
    gradient with respect to the forward inputs."""

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax; overflow-tolerant for faulty inputs."""
    with np.errstate(over="ignore", invalid="ignore"):
        shifted = logits - np.max(logits, axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return (exp / exp.sum(axis=axis, keepdims=True)).astype(np.float32)


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy over integer class labels.

    The gradient ``(p - y) / m`` is exactly the Step-1 quantity bounded in
    Algorithm 1: every element lies in ``[-1/m, 1/m]`` where ``m`` is the
    mini-batch size.
    """

    def __init__(self, eps: float = 1e-12):
        self.eps = float(eps)
        self._probs: np.ndarray | None = None
        self._target: np.ndarray | None = None

    def forward(self, logits: np.ndarray, target: np.ndarray) -> float:
        probs = softmax(logits)
        self._probs = probs
        self._target = target
        n = logits.shape[0]
        with np.errstate(divide="ignore", invalid="ignore"):
            picked = probs[np.arange(n), target]
            loss = -np.log(picked + self.eps).mean()
        return float(loss)

    def backward(self) -> np.ndarray:
        probs, target = self._probs, self._target
        n = probs.shape[0]
        grad = probs.copy()
        grad[np.arange(n), target] -= 1.0
        return (grad / n).astype(np.float32)


class SequenceCrossEntropy(Loss):
    """Per-token softmax cross-entropy for (N, T, V) logits.

    Positions whose target equals ``pad_id`` are excluded from the loss and
    receive zero gradient (standard practice for translation training).
    """

    def __init__(self, pad_id: int = -1, eps: float = 1e-12):
        self.pad_id = int(pad_id)
        self.eps = float(eps)
        self._probs: np.ndarray | None = None
        self._target: np.ndarray | None = None
        self._mask: np.ndarray | None = None

    def forward(self, logits: np.ndarray, target: np.ndarray) -> float:
        n, t, v = logits.shape
        probs = softmax(logits, axis=-1)
        mask = target != self.pad_id
        self._probs, self._target, self._mask = probs, target, mask
        safe_target = np.where(mask, target, 0)
        picked = probs[np.arange(n)[:, None], np.arange(t)[None, :], safe_target]
        with np.errstate(divide="ignore", invalid="ignore"):
            token_loss = -np.log(picked + self.eps) * mask
        denom = max(int(mask.sum()), 1)
        return float(token_loss.sum() / denom)

    def backward(self) -> np.ndarray:
        probs, target, mask = self._probs, self._target, self._mask
        n, t, v = probs.shape
        grad = probs.copy()
        safe_target = np.where(mask, target, 0)
        grad[np.arange(n)[:, None], np.arange(t)[None, :], safe_target] -= 1.0
        grad *= mask[:, :, None]
        denom = max(int(mask.sum()), 1)
        return (grad / denom).astype(np.float32)


class MSELoss(Loss):
    """Mean squared error (used by the multigrid-memory regression head)."""

    def __init__(self):
        self._diff: np.ndarray | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        with np.errstate(over="ignore", invalid="ignore"):
            self._diff = (prediction - target).astype(np.float32)
            return float(np.mean(self._diff.astype(np.float64) ** 2))

    def backward(self) -> np.ndarray:
        n = self._diff.size
        return (2.0 * self._diff / n).astype(np.float32)


class DetectionLoss(Loss):
    """Simplified single-scale YOLO-style detection loss.

    Predictions have shape (N, A*(5+K), S, S): per grid cell and anchor, a
    box (tx, ty, tw, th), an objectness logit, and K class logits.  Targets
    are dense tensors of the same grid layout produced by
    :mod:`repro.data.detection`.  The loss combines:

    * squared error on box coordinates for object cells,
    * binary cross-entropy on objectness everywhere,
    * softmax cross-entropy on classes for object cells.
    """

    def __init__(self, num_classes: int, num_anchors: int = 1,
                 box_weight: float = 5.0, noobj_weight: float = 0.5):
        self.num_classes = int(num_classes)
        self.num_anchors = int(num_anchors)
        self.box_weight = float(box_weight)
        self.noobj_weight = float(noobj_weight)
        self._cache: tuple | None = None

    def _split(self, pred: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n, _, s, _ = pred.shape
        a, k = self.num_anchors, self.num_classes
        grid = pred.reshape(n, a, 5 + k, s, s)
        return grid[:, :, 0:4], grid[:, :, 4], grid[:, :, 5:]

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        boxes, obj_logit, cls_logit = self._split(prediction)
        t_boxes, t_obj, t_cls = self._split(target)
        obj_mask = t_obj > 0.5
        with np.errstate(over="ignore", invalid="ignore"):
            obj_prob = 1.0 / (1.0 + np.exp(-np.clip(obj_logit, -60, 60)))
            box_err = (boxes - t_boxes) ** 2 * obj_mask[:, :, None]
            box_loss = self.box_weight * box_err.sum()
            obj_bce = -(
                t_obj * np.log(obj_prob + 1e-9)
                + (1.0 - t_obj) * np.log(1.0 - obj_prob + 1e-9)
            )
            obj_loss = np.where(obj_mask, obj_bce, self.noobj_weight * obj_bce).sum()
            cls_prob = softmax(cls_logit, axis=2)
            cls_ce = -(t_cls * np.log(cls_prob + 1e-9)).sum(axis=2) * obj_mask
            cls_loss = cls_ce.sum()
        n = prediction.shape[0]
        self._cache = (prediction.shape, boxes, t_boxes, obj_prob, t_obj,
                       obj_mask, cls_prob, t_cls, n)
        return float((box_loss + obj_loss + cls_loss) / n)

    def backward(self) -> np.ndarray:
        (shape, boxes, t_boxes, obj_prob, t_obj, obj_mask,
         cls_prob, t_cls, n) = self._cache
        with np.errstate(over="ignore", invalid="ignore"):
            d_boxes = 2.0 * self.box_weight * (boxes - t_boxes) * obj_mask[:, :, None]
            d_obj = obj_prob - t_obj
            d_obj = np.where(obj_mask, d_obj, self.noobj_weight * d_obj)
            d_cls = (cls_prob - t_cls) * obj_mask[:, :, None]
        a, k = self.num_anchors, self.num_classes
        s = shape[2]
        grad = np.concatenate(
            [d_boxes, d_obj[:, :, None], d_cls], axis=2
        ).reshape(n, a * (5 + k), s, s)
        return (grad / n).astype(np.float32)


def accuracy(logits: np.ndarray, target: np.ndarray) -> float:
    """Top-1 classification accuracy; NaN logits never count as correct."""
    pred = np.argmax(np.nan_to_num(logits, nan=-np.inf), axis=-1)
    return float(np.mean(pred == target))


def sequence_accuracy(logits: np.ndarray, target: np.ndarray, pad_id: int = -1) -> float:
    """Per-token accuracy over non-padding positions."""
    pred = np.argmax(np.nan_to_num(logits, nan=-np.inf), axis=-1)
    mask = target != pad_id
    denom = max(int(mask.sum()), 1)
    return float(((pred == target) & mask).sum() / denom)
