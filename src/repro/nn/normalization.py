"""Normalization layers.

BatchNorm's *moving variance* (``mvar``) is one of the two history terms at
the heart of the paper: ``mvar_{t} = decay * mvar_{t-1} + (1 - decay) *
input_variance`` (Sec. 4.2.2).  Large absolute mvar values are the
necessary condition for the SharpDegrade, LowTestAccuracy, and short-term
INFs/NaNs outcomes (Table 4), and the detection technique bounds them
(Algorithm 1, part II).

The moving statistics here are first-class inspectable state:
:meth:`BatchNorm.history_magnitude` returns the largest absolute moving
statistic, which the detector and the propagation tracer both read.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import ones, zeros
from repro.nn.module import Module


class BatchNorm(Module):
    """Batch normalization over (N, C) or (N, C, H, W) inputs.

    Parameters
    ----------
    num_features:
        Channel count ``C``.
    momentum:
        The *decay factor* applied to the moving statistics.  The paper's
        workloads use 0.9 except Resnet_LargeDecay which uses 0.99 — the
        configuration whose slow mvar correction produces LowTestAccuracy.
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.add_param("gamma", ones((num_features,)))
        self.add_param("beta", zeros((num_features,)))
        self.moving_mean = np.zeros(num_features, dtype=np.float32)
        self.moving_var = np.ones(num_features, dtype=np.float32)
        self._cache: tuple | None = None

    # ------------------------------------------------------------------
    # Persistent state
    # ------------------------------------------------------------------
    def extra_state(self) -> dict[str, np.ndarray]:
        return {"moving_mean": self.moving_mean, "moving_var": self.moving_var}

    def load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        self.moving_mean = np.asarray(state["moving_mean"], dtype=np.float32).copy()
        self.moving_var = np.asarray(state["moving_var"], dtype=np.float32).copy()

    def history_magnitude(self) -> float:
        """Largest absolute moving statistic (the detector's |mvar| probe)."""
        mags = [np.abs(self.moving_var).max(), np.abs(self.moving_mean).max()]
        finite = [float(m) for m in mags if np.isfinite(m)]
        if len(finite) < len(mags):
            return float("inf")
        return max(finite)

    # ------------------------------------------------------------------
    # Shape plumbing: reduce over every axis except the channel axis (1
    # for 4D NCHW, 1 for 2D NC).
    # ------------------------------------------------------------------
    @staticmethod
    def _axes(x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError(f"BatchNorm expects 2D or 4D input, got {x.ndim}D")

    @staticmethod
    def _reshape_stats(stat: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 2:
            return stat
        return stat.reshape(1, -1, 1, 1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes = self._axes(x)
        ndim = x.ndim
        if self.training:
            with np.errstate(over="ignore", invalid="ignore"):
                mean = x.mean(axis=axes, dtype=np.float32)
                var = x.var(axis=axes, dtype=np.float32)
                # Moving statistics update: the history-term recurrence of
                # Sec. 4.2.2.  Computed in float32 so faulty magnitudes
                # overflow to inf exactly as they would on the accelerator.
                self.moving_mean = (
                    self.momentum * self.moving_mean + (1.0 - self.momentum) * mean
                ).astype(np.float32)
                self.moving_var = (
                    self.momentum * self.moving_var + (1.0 - self.momentum) * var
                ).astype(np.float32)
        else:
            mean = self.moving_mean
            var = self.moving_var
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            inv_std = 1.0 / np.sqrt(var + self.eps)
            xhat = (x - self._reshape_stats(mean, ndim)) * self._reshape_stats(inv_std, ndim)
            out = (
                self._reshape_stats(self.gamma.data, ndim) * xhat
                + self._reshape_stats(self.beta.data, ndim)
            ).astype(np.float32)
        if self.training:
            self._cache = (xhat, inv_std, axes, x.shape)
        return self.apply_fault_hook("forward", out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        xhat, inv_std, axes, shape = self._cache
        ndim = len(shape)
        m = float(np.prod([shape[a] for a in axes]))
        dgamma = (grad * xhat).sum(axis=axes).astype(np.float32)
        dbeta = grad.sum(axis=axes).astype(np.float32)
        dgamma = self.apply_fault_hook("weight_grad", dgamma, param="gamma")
        self.gamma.grad += dgamma
        self.beta.grad += dbeta
        gamma = self._reshape_stats(self.gamma.data, ndim)
        inv = self._reshape_stats(inv_std, ndim)
        dxhat = grad * gamma
        with np.errstate(over="ignore", invalid="ignore"):
            dx = (
                inv
                / m
                * (
                    m * dxhat
                    - dxhat.sum(axis=axes, keepdims=True)
                    - xhat * (dxhat * xhat).sum(axis=axes, keepdims=True)
                )
            ).astype(np.float32)
        return self.apply_fault_hook("input_grad", dx)


class LayerNorm(Module):
    """Layer normalization over the last dimension (Transformer blocks).

    LayerNorm carries no moving statistics, so the mvar necessary condition
    cannot fire in a pure-LayerNorm workload — which is why the Transformer
    workload's latent outcomes in the paper all come from optimizer history
    values.
    """

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.add_param("gamma", ones((num_features,)))
        self.add_param("beta", zeros((num_features,)))
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            mean = x.mean(axis=-1, keepdims=True, dtype=np.float32)
            var = x.var(axis=-1, keepdims=True, dtype=np.float32)
            inv_std = 1.0 / np.sqrt(var + self.eps)
            xhat = (x - mean) * inv_std
            out = (self.gamma.data * xhat + self.beta.data).astype(np.float32)
        self._cache = (xhat, inv_std)
        return self.apply_fault_hook("forward", out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        xhat, inv_std = self._cache
        m = float(xhat.shape[-1])
        reduce_axes = tuple(range(xhat.ndim - 1))
        dgamma = (grad * xhat).sum(axis=reduce_axes).astype(np.float32)
        dbeta = grad.sum(axis=reduce_axes).astype(np.float32)
        dgamma = self.apply_fault_hook("weight_grad", dgamma, param="gamma")
        self.gamma.grad += dgamma
        self.beta.grad += dbeta
        dxhat = grad * self.gamma.data
        with np.errstate(over="ignore", invalid="ignore"):
            dx = (
                inv_std
                / m
                * (
                    m * dxhat
                    - dxhat.sum(axis=-1, keepdims=True)
                    - xhat * (dxhat * xhat).sum(axis=-1, keepdims=True)
                )
            ).astype(np.float32)
        return self.apply_fault_hook("input_grad", dx)


def batchnorm_layers(model: Module) -> list[BatchNorm]:
    """All BatchNorm layers in a model, in traversal order."""
    return [m for m in model.modules() if isinstance(m, BatchNorm)]


def max_moving_variance(model: Module) -> float:
    """The largest |moving statistic| across all BatchNorm layers.

    This is the quantity the detection technique compares against the
    Algorithm 1 part-II bound each iteration.  Returns 0.0 for models with
    no BatchNorm layers (e.g. Resnet_NoBN, NFNet), for which the mvar
    necessary condition is structurally impossible.
    """
    layers = batchnorm_layers(model)
    if not layers:
        return 0.0
    return max(layer.history_magnitude() for layer in layers)
