"""Activation layers with explicit backward passes.

Activations participate in the paper's masking analysis (Sec. 2): ReLU can
mask a faulty negative value by setting it to zero, while unbounded
activations propagate large faulty magnitudes unchanged — which is why
range-restriction baselines (Ranger) clamp activations.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit: max(0, x)."""

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        out = np.where(self._mask, x, 0.0).astype(np.float32)
        return self.apply_fault_hook("forward", out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = np.where(self._mask, grad, 0.0).astype(np.float32)
        return self.apply_fault_hook("input_grad", out)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope (YOLO uses 0.1)."""

    def __init__(self, negative_slope: float = 0.1):
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        out = np.where(self._mask, x, self.negative_slope * x).astype(np.float32)
        return self.apply_fault_hook("forward", out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = np.where(self._mask, grad, self.negative_slope * grad).astype(np.float32)
        return self.apply_fault_hook("input_grad", out)


class Sigmoid(Module):
    """Logistic sigmoid; saturates, so it can mask large faulty values."""

    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise formulation.
        out = np.empty_like(x, dtype=np.float32)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out
        return self.apply_fault_hook("forward", out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = (grad * self._out * (1.0 - self._out)).astype(np.float32)
        return self.apply_fault_hook("input_grad", out)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x).astype(np.float32)
        return self.apply_fault_hook("forward", self._out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = (grad * (1.0 - self._out**2)).astype(np.float32)
        return self.apply_fault_hook("input_grad", out)


class GELU(Module):
    """Gaussian error linear unit (tanh approximation), used by Transformer."""

    _C = np.float32(np.sqrt(2.0 / np.pi))

    def __init__(self):
        super().__init__()
        self._x: np.ndarray | None = None
        self._tanh: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        inner = self._C * (x + 0.044715 * x**3)
        self._tanh = np.tanh(inner)
        out = (0.5 * x * (1.0 + self._tanh)).astype(np.float32)
        return self.apply_fault_hook("forward", out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x, t = self._x, self._tanh
        d_inner = self._C * (1.0 + 3 * 0.044715 * x**2)
        d = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * d_inner
        out = (grad * d).astype(np.float32)
        return self.apply_fault_hook("input_grad", out)


class SiLU(Module):
    """Sigmoid linear unit (swish), used by EfficientNet."""

    def __init__(self):
        super().__init__()
        self._x: np.ndarray | None = None
        self._sig: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        sig = np.empty_like(x, dtype=np.float32)
        pos = x >= 0
        sig[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        sig[~pos] = ex / (1.0 + ex)
        self._sig = sig
        out = (x * sig).astype(np.float32)
        return self.apply_fault_hook("forward", out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        s = self._sig
        d = s + self._x * s * (1.0 - s)
        out = (grad * d).astype(np.float32)
        return self.apply_fault_hook("input_grad", out)


class ScaledReLU(Module):
    """Variance-preserving ReLU used by normalizer-free networks (NFNet).

    Multiplies the ReLU output by ``sqrt(2 / (1 - 1/pi))`` so the output
    variance matches the input variance, replacing BatchNorm's variance
    control — this is what makes NFNet a "no normalization layers" workload
    in the paper's taxonomy (its mvar necessary condition cannot fire).
    """

    GAMMA = np.float32(np.sqrt(2.0 / (1.0 - 1.0 / np.pi)))

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        out = (np.where(self._mask, x, 0.0) * self.GAMMA).astype(np.float32)
        return self.apply_fault_hook("forward", out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = (np.where(self._mask, grad, 0.0) * self.GAMMA).astype(np.float32)
        return self.apply_fault_hook("input_grad", out)
