"""Recurrent layers (LSTM) with full backpropagation through time.

Used by the multigrid-neural-memory stand-in workload (Table 2): the
recurrent state is itself a history term that carries fault effects across
*time steps* within an iteration, complementing the optimizer- and
normalization-history terms that carry effects across *iterations*.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import orthogonal, zeros
from repro.nn.module import Module


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float32)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class LSTM(Module):
    """Single-layer LSTM over (N, T, D) sequences, returning (N, T, H).

    Gate order in the packed kernel is [input, forget, cell, output].
    The forget-gate bias is initialized to 1.0 (standard practice).
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        scale = 1.0 / np.sqrt(input_dim)
        self.add_param(
            "w_x",
            rng.uniform(-scale, scale, size=(input_dim, 4 * hidden_dim)).astype(np.float32),
        )
        self.add_param("w_h", np.concatenate(
            [orthogonal(rng, (hidden_dim, hidden_dim)) for _ in range(4)], axis=1
        ))
        bias = zeros((4 * hidden_dim,))
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget gate
        self.add_param("bias", bias)
        self._cache: list[tuple] | None = None
        self._x_shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, t, _ = x.shape
        hd = self.hidden_dim
        h = np.zeros((n, hd), dtype=np.float32)
        c = np.zeros((n, hd), dtype=np.float32)
        self._cache = []
        self._x_shape = x.shape
        outputs = np.empty((n, t, hd), dtype=np.float32)
        with np.errstate(over="ignore", invalid="ignore"):
            for step in range(t):
                xt = x[:, step]
                gates = xt @ self.w_x.data + h @ self.w_h.data + self.bias.data
                i = _sigmoid(gates[:, :hd])
                f = _sigmoid(gates[:, hd : 2 * hd])
                g = np.tanh(gates[:, 2 * hd : 3 * hd])
                o = _sigmoid(gates[:, 3 * hd :])
                c_prev = c
                c = (f * c_prev + i * g).astype(np.float32)
                tanh_c = np.tanh(c)
                h = (o * tanh_c).astype(np.float32)
                outputs[:, step] = h
                self._cache.append((xt, i, f, g, o, c_prev, c, tanh_c, h))
        return self.apply_fault_hook("forward", outputs)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, t, _ = self._x_shape
        hd = self.hidden_dim
        dx = np.zeros(self._x_shape, dtype=np.float32)
        dw_x = np.zeros_like(self.w_x.data)
        dw_h = np.zeros_like(self.w_h.data)
        db = np.zeros_like(self.bias.data)
        dh_next = np.zeros((n, hd), dtype=np.float32)
        dc_next = np.zeros((n, hd), dtype=np.float32)
        with np.errstate(over="ignore", invalid="ignore"):
            for step in range(t - 1, -1, -1):
                xt, i, f, g, o, c_prev, c, tanh_c, h = self._cache[step]
                h_prev = self._cache[step - 1][8] if step > 0 else np.zeros((n, hd), np.float32)
                dh = grad[:, step] + dh_next
                do = dh * tanh_c
                dc = dh * o * (1.0 - tanh_c**2) + dc_next
                di = dc * g
                df = dc * c_prev
                dg = dc * i
                dc_next = dc * f
                d_gates = np.concatenate(
                    [
                        di * i * (1.0 - i),
                        df * f * (1.0 - f),
                        dg * (1.0 - g**2),
                        do * o * (1.0 - o),
                    ],
                    axis=1,
                ).astype(np.float32)
                dw_x += xt.T @ d_gates
                dw_h += h_prev.T @ d_gates
                db += d_gates.sum(axis=0)
                dx[:, step] = d_gates @ self.w_x.data.T
                dh_next = (d_gates @ self.w_h.data.T).astype(np.float32)
        dw_x = self.apply_fault_hook("weight_grad", dw_x, param="w_x")
        self.w_x.grad += dw_x
        self.w_h.grad += dw_h
        self.bias.grad += db
        return self.apply_fault_hook("input_grad", dx)


class LastStep(Module):
    """Select the last time step of an (N, T, H) sequence."""

    def __init__(self):
        super().__init__()
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return np.ascontiguousarray(x[:, -1])

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = np.zeros(self._shape, dtype=np.float32)
        out[:, -1] = grad
        return out
