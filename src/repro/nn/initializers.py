"""Weight initializers.

Algorithm 1 in the paper assumes He-style initialization properties
(zero-mean layer outputs, ``Var[w] = 1/N_l`` where ``N_l`` is the number of
partial sums per output neuron), so He initialization is the default for
all conv/dense layers in the workloads.
"""

from __future__ import annotations

import numpy as np


def he_normal(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """He-normal initialization: N(0, 2 / fan_in).

    The variance-preservation argument behind Algorithm 1's mvar bound uses
    ``Var[w] = 1 / N_l``; He init uses ``2 / fan_in`` to compensate for ReLU
    halving the variance — both satisfy the bound's assumptions.
    """
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def glorot_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform initialization: U(-limit, limit)."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def orthogonal(rng: np.random.Generator, shape: tuple[int, int]) -> np.ndarray:
    """Orthogonal initialization for recurrent kernels."""
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return q[:rows, :cols].astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
