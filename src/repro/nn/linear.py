"""Dense (fully-connected) layer and shape utilities."""

from __future__ import annotations

import numpy as np

from repro.nn import config
from repro.nn.initializers import he_normal, zeros
from repro.nn.module import Module


class Dense(Module):
    """Fully-connected layer: ``y = x @ W + b``.

    The matmul goes through :func:`repro.nn.config.matmul`, so it follows
    the accelerator's MAC precision (bfloat16 inputs, FP32 accumulate) when
    mixed precision is enabled.

    Fault-injection op sites: the forward output, the weight gradient
    (``dW = x^T @ dy``), and the input gradient (``dx = dy @ W^T``) — the
    three operation classes of Table 1 (Layer_Output, and the two
    Layer_Input roles in the backward pass).
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 use_bias: bool = True):
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(use_bias)
        self.add_param("weight", he_normal(rng, (in_features, out_features), fan_in=in_features))
        if use_bias:
            self.add_param("bias", zeros((out_features,)))
        self._x: np.ndarray | None = None
        self._out: np.ndarray | None = None

    @property
    def fan_in(self) -> int:
        """Number of partial sums per output neuron (``N_l`` in Algorithm 1)."""
        return self.in_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = config.matmul(x, self.weight.data)
        if self.use_bias:
            out = out + self.bias.data
        out = out.astype(np.float32)
        out = self.apply_fault_hook("forward", out)
        # Cached post-hook so integrity checkers (ABFT) see what the
        # accelerator actually produced, faults included.
        self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._x
        # Flatten any leading batch dimensions for the weight gradient.
        x2 = x.reshape(-1, self.in_features)
        g2 = grad.reshape(-1, self.out_features)
        dw = config.matmul(x2.T, g2).astype(np.float32)
        dw = self.apply_fault_hook("weight_grad", dw, param="weight")
        self.weight.grad += dw
        if self.use_bias:
            db = g2.sum(axis=0).astype(np.float32)
            self.bias.grad += db
        dx = config.matmul(grad, self.weight.data.T).astype(np.float32)
        return self.apply_fault_hook("input_grad", dx)


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def __init__(self):
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout.  Draws its mask from a per-layer seeded generator.

    The recovery technique (Sec. 5.2) requires re-execution to reproduce
    random draws: "recording the seeds used to initialize random variables
    ... and applying them during re-execution".  :meth:`reseed` restores the
    generator so a replayed iteration draws identical masks.
    """

    def __init__(self, rate: float, seed=0):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1): {rate}")
        self.rate = float(rate)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def reseed(self, seed) -> None:
        """Reset the mask generator (used when replaying an iteration).

        ``seed`` may be an int or a tuple of ints (NumPy SeedSequence
        entropy), letting callers derive per-(iteration, device) seeds.
        """
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return (x * self._mask).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return (grad * self._mask).astype(np.float32)
