"""Mini deep-learning framework with explicit per-layer backward passes.

Every layer exposes three fault-injectable op sites (forward output,
weight gradient, input gradient) — see :mod:`repro.nn.module`.
"""

from repro.nn.activations import GELU, LeakyReLU, ReLU, ScaledReLU, Sigmoid, SiLU, Tanh
from repro.nn.attention import (
    Embedding,
    MultiHeadSelfAttention,
    PositionalEncoding,
    TransformerEncoderLayer,
)
from repro.nn.blocks import (
    DenseBlock,
    DenseLayer,
    InceptionBlock,
    MBConvBlock,
    NFBlock,
    ResidualBlock,
    SqueezeExcite,
    TransitionLayer,
    conv_bn_act,
)
from repro.nn.config import compute_precision, get_compute_precision, set_compute_precision
from repro.nn.conv import AvgPool2D, Conv2D, GlobalAvgPool2D, MaxPool2D, col2im, im2col
from repro.nn.linear import Dense, Dropout, Flatten
from repro.nn.losses import (
    DetectionLoss,
    Loss,
    MSELoss,
    SequenceCrossEntropy,
    SoftmaxCrossEntropy,
    accuracy,
    sequence_accuracy,
    softmax,
)
from repro.nn.module import HOOK_KINDS, Module, Parameter, Sequential
from repro.nn.normalization import BatchNorm, LayerNorm, batchnorm_layers, max_moving_variance
from repro.nn.recurrent import LSTM, LastStep

__all__ = [
    "GELU",
    "HOOK_KINDS",
    "LSTM",
    "AvgPool2D",
    "BatchNorm",
    "Conv2D",
    "Dense",
    "DenseBlock",
    "DenseLayer",
    "DetectionLoss",
    "Dropout",
    "Embedding",
    "Flatten",
    "GlobalAvgPool2D",
    "InceptionBlock",
    "LastStep",
    "LayerNorm",
    "LeakyReLU",
    "Loss",
    "MBConvBlock",
    "MSELoss",
    "MaxPool2D",
    "Module",
    "MultiHeadSelfAttention",
    "NFBlock",
    "Parameter",
    "PositionalEncoding",
    "ReLU",
    "ResidualBlock",
    "ScaledReLU",
    "Sequential",
    "SequenceCrossEntropy",
    "Sigmoid",
    "SiLU",
    "SoftmaxCrossEntropy",
    "SqueezeExcite",
    "Tanh",
    "TransformerEncoderLayer",
    "TransitionLayer",
    "accuracy",
    "batchnorm_layers",
    "col2im",
    "compute_precision",
    "conv_bn_act",
    "get_compute_precision",
    "im2col",
    "max_moving_variance",
    "sequence_accuracy",
    "set_compute_precision",
    "softmax",
]
