"""Global compute-precision configuration for the mini DL framework.

The accelerator modeled by the paper performs MAC operations in bfloat16
and element-wise operations in FP32 (Sec. 3.1).  Layers that perform MAC
work (Dense, Conv2D, attention projections) consult this module to decide
whether to quantize their matmul inputs.

Mixed precision defaults to *off* so numerical gradient checks are exact;
workloads that model the accelerator faithfully enable it via
:func:`set_compute_precision` or the :func:`compute_precision` context
manager.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.tensor.dtypes import Precision, quantized_matmul

_COMPUTE_PRECISION: str = Precision.FP32


def get_compute_precision() -> str:
    """Return the active MAC-input precision mode."""
    return _COMPUTE_PRECISION


def set_compute_precision(mode: str) -> None:
    """Set the MAC-input precision mode for subsequently executed layers."""
    if mode not in Precision.modes():
        raise ValueError(f"unknown precision mode: {mode!r}")
    global _COMPUTE_PRECISION
    _COMPUTE_PRECISION = mode


@contextmanager
def compute_precision(mode: str):
    """Temporarily switch the MAC-input precision mode."""
    previous = get_compute_precision()
    set_compute_precision(mode)
    try:
        yield
    finally:
        set_compute_precision(previous)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix multiply under the active precision mode.

    FP32 mode is a plain ``a @ b``; other modes quantize the inputs first
    and accumulate in FP32, mirroring the accelerator datapath.
    """
    if _COMPUTE_PRECISION == Precision.FP32:
        return a @ b
    return quantized_matmul(a, b, input_precision=_COMPUTE_PRECISION)
