"""Module base class for the mini DL framework.

The paper's artifact manually implements the backward pass of every
workload so that faults can be injected into backward-pass operations and
their effects propagated correctly (Appendix A.1).  We follow the same
design: every :class:`Module` implements an explicit ``forward`` and
``backward`` instead of relying on a taped autograd engine.  This makes
each operation (forward output, weight-gradient, input-gradient) an
addressable *op site* for fault injection.

Fault hooks
-----------
Each module carries three hook slots, one per op site kind:

``"forward"``
    applied to the module's forward output tensor,
``"weight_grad"``
    applied to every weight-gradient tensor the module produces,
``"input_grad"``
    applied to the input-gradient tensor returned by ``backward``.

A hook is a callable ``hook(tensor, site_info) -> tensor``.  The injection
engine (:mod:`repro.core.faults.injector`) installs one-shot hooks at the
chosen training iteration; in fault-free operation all slots are ``None``
and the hot path pays a single attribute check.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

HOOK_KINDS = ("forward", "weight_grad", "input_grad")

HookFn = Callable[[np.ndarray, dict], np.ndarray]


class Parameter:
    """A trainable tensor with its gradient.

    Gradients are accumulated by ``backward`` calls and consumed by the
    optimizer.  ``data`` and ``grad`` are always float32 arrays.
    """

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name}, shape={self.data.shape})"


class Module:
    """Base class for all layers and composite blocks.

    Subclasses register parameters with :meth:`add_param` and children with
    :meth:`add_module`, implement :meth:`forward` (caching whatever the
    backward pass needs) and :meth:`backward` (consuming the cache,
    accumulating parameter gradients, and returning the input gradient).
    """

    def __init__(self):
        self._params: dict[str, Parameter] = {}
        self._modules: dict[str, Module] = {}
        self._fault_hooks: dict[str, HookFn | None] = {k: None for k in HOOK_KINDS}
        self.name = type(self).__name__
        self.training = True

    # ------------------------------------------------------------------
    # Registration and traversal
    # ------------------------------------------------------------------
    def add_param(self, name: str, data: np.ndarray) -> Parameter:
        param = Parameter(data, name=f"{self.name}.{name}")
        self._params[name] = param
        setattr(self, name, param)
        return param

    def add_module(self, name: str, module: "Module") -> "Module":
        module.name = f"{self.name}.{name}"
        self._modules[name] = module
        setattr(self, name, module)
        return module

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its descendants."""
        yield from self._params.values()
        for child in self._modules.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._params.items():
            yield (f"{prefix}{name}", param)
        for cname, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{cname}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for cname, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{cname}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------
    # State snapshot / restore (used by recovery and campaigns)
    # ------------------------------------------------------------------
    def extra_state(self) -> dict[str, np.ndarray]:
        """Non-parameter persistent state (e.g. BatchNorm moving stats)."""
        return {}

    def load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`extra_state`."""

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat snapshot of all parameters and extra state, copied."""
        out: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            out[f"param:{name}"] = param.data.copy()
        for mod_name, module in self.named_modules():
            for key, value in module.extra_state().items():
                out[f"state:{mod_name}:{key}"] = np.array(value, copy=True)
        return out

    def load_state_dict(
        self, state: dict[str, np.ndarray], allow_partial: bool = False
    ) -> None:
        """Restore a :meth:`state_dict` snapshot, in place.

        The state dict must cover every parameter and every extra-state
        leaf; missing or unexpected keys raise ``KeyError`` (a partial
        load would silently leave the remaining state stale).  Pass
        ``allow_partial=True`` to load a subset deliberately.  Parameter
        values are written into the existing arrays, so arena views (see
        :mod:`repro.state`) survive a load.
        """
        params = dict(self.named_parameters())
        modules = dict(self.named_modules())
        expected = {f"param:{name}" for name in params}
        for mod_name, module in modules.items():
            for state_key in module.extra_state():
                expected.add(f"state:{mod_name}:{state_key}")
        unexpected = sorted(set(state) - expected)
        if unexpected:
            raise KeyError(
                f"unexpected state keys (not in this model): {unexpected[:5]}"
            )
        missing = sorted(expected - set(state))
        if missing and not allow_partial:
            raise KeyError(
                f"state dict is missing {len(missing)} keys (e.g. "
                f"{missing[:5]}); pass allow_partial=True to load anyway"
            )
        extra: dict[str, dict[str, np.ndarray]] = {}
        for key, value in state.items():
            kind, _, rest = key.partition(":")
            if kind == "param":
                param = params[rest]
                value = np.asarray(value)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: state has {value.shape}, "
                        f"parameter has {param.data.shape}"
                    )
                param.data[...] = value
            else:
                mod_name, _, state_key = rest.partition(":")
                extra.setdefault(mod_name, {})[state_key] = value
        for mod_name, mod_state in extra.items():
            modules[mod_name].load_extra_state(
                {k: np.array(v, copy=True) for k, v in mod_state.items()}
            )

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def set_fault_hook(self, kind: str, hook: HookFn | None) -> None:
        if kind not in HOOK_KINDS:
            raise ValueError(f"unknown hook kind {kind!r}; expected one of {HOOK_KINDS}")
        self._fault_hooks[kind] = hook

    def clear_fault_hooks(self) -> None:
        for kind in HOOK_KINDS:
            self._fault_hooks[kind] = None

    def apply_fault_hook(self, kind: str, tensor: np.ndarray, **site_info) -> np.ndarray:
        """Apply a hook (if any) to ``tensor``; called by layer internals."""
        hook = self._fault_hooks[kind]
        if hook is None:
            return tensor
        info = dict(site_info)
        info.setdefault("module", self)
        info.setdefault("kind", kind)
        return hook(tensor, info)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Chain of modules applied in order; backward runs in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: list[Module] = []
        for idx, layer in enumerate(layers):
            self.add_module(str(idx), layer)
            self.layers.append(layer)

    def append(self, layer: Module) -> "Sequential":
        self.add_module(str(len(self.layers)), layer)
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)
