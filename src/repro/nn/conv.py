"""2D convolution and pooling layers (NCHW layout) via im2col.

Convolution is the dominant MAC workload on the modeled accelerator; the
im2col + matmul formulation mirrors how the NVDLA-like dataflow streams
input-channel slices into the MAC array.  The matmul goes through
:func:`repro.nn.config.matmul`, so mixed precision applies here too.
"""

from __future__ import annotations

import numpy as np

from repro.nn import config
from repro.nn.initializers import he_normal, zeros
from repro.nn.module import Module


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Unfold NCHW input into a (N*OH*OW, C*KH*KW) patch matrix."""
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    img = np.pad(x, [(0, 0), (0, 0), (padding, padding), (padding, padding)])
    col = np.empty((n, c, kh, kw, oh, ow), dtype=np.float32)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            col[:, :, i, j, :, :] = img[:, :, i:i_max:stride, j:j_max:stride]
    return col.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, -1)


def col2im(
    col: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a patch matrix back into NCHW, accumulating overlaps."""
    n, c, h, w = input_shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    col6 = col.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    img = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=np.float32)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            img[:, :, i:i_max:stride, j:j_max:stride] += col6[:, :, i, j, :, :]
    if padding == 0:
        return img
    return img[:, :, padding : padding + h, padding : padding + w]


class Conv2D(Module):
    """2D convolution with explicit backward.

    ``N_l`` (Algorithm 1's partial-sum count per output neuron) is
    ``in_channels * kh * kw``, exposed as :attr:`fan_in`.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int | None = None,
        use_bias: bool = True,
    ):
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding) if padding is not None else kernel_size // 2
        self.use_bias = bool(use_bias)
        k = self.kernel_size
        fan_in = in_channels * k * k
        self.add_param("weight", he_normal(rng, (out_channels, in_channels, k, k), fan_in=fan_in))
        if use_bias:
            self.add_param("bias", zeros((out_channels,)))
        self._col: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None
        self._out: np.ndarray | None = None

    @property
    def fan_in(self) -> int:
        return self.in_channels * self.kernel_size * self.kernel_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"{self.name}: expected {self.in_channels} channels, got {c}")
        k, s, p = self.kernel_size, self.stride, self.padding
        oh, ow = conv_output_size(h, k, s, p), conv_output_size(w, k, s, p)
        col = im2col(x, k, k, s, p)
        self._col = col
        self._input_shape = x.shape
        self._out_hw = (oh, ow)
        w_row = self.weight.data.reshape(self.out_channels, -1)
        out = config.matmul(col, w_row.T)
        if self.use_bias:
            out = out + self.bias.data
        out = out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        out = np.ascontiguousarray(out, dtype=np.float32)
        out = self.apply_fault_hook("forward", out)
        # Cached post-hook so integrity checkers (ABFT) see what the
        # accelerator actually produced, faults included.
        self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n = self._input_shape[0]
        oh, ow = self._out_hw
        g2 = grad.transpose(0, 2, 3, 1).reshape(n * oh * ow, self.out_channels)
        dw = config.matmul(self._col.T, g2).astype(np.float32)  # (C*k*k, Cout)
        dw = dw.T.reshape(self.weight.data.shape)
        dw = self.apply_fault_hook("weight_grad", dw, param="weight")
        self.weight.grad += dw
        if self.use_bias:
            self.bias.grad += g2.sum(axis=0).astype(np.float32)
        w_row = self.weight.data.reshape(self.out_channels, -1)
        dcol = config.matmul(g2, w_row).astype(np.float32)
        dx = col2im(dcol, self._input_shape, self.kernel_size, self.kernel_size,
                    self.stride, self.padding)
        return self.apply_fault_hook("input_grad", dx)


class MaxPool2D(Module):
    """Max pooling with cached argmax for the backward pass."""

    def __init__(self, pool_size: int = 2, stride: int | None = None):
        super().__init__()
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else self.pool_size
        self._argmax: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.pool_size, self.stride
        oh, ow = conv_output_size(h, k, s, 0), conv_output_size(w, k, s, 0)
        col = im2col(x.reshape(n * c, 1, h, w), k, k, s, 0)  # (N*C*oh*ow, k*k)
        self._argmax = col.argmax(axis=1)
        self._input_shape = x.shape
        out = col.max(axis=1).reshape(n, c, oh, ow)
        return np.ascontiguousarray(out, dtype=np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._input_shape
        k, s = self.pool_size, self.stride
        flat = grad.reshape(-1)
        dcol = np.zeros((flat.size, k * k), dtype=np.float32)
        dcol[np.arange(flat.size), self._argmax] = flat
        dx = col2im(dcol, (n * c, 1, h, w), k, k, s, 0)
        return dx.reshape(n, c, h, w)


class AvgPool2D(Module):
    """Average pooling."""

    def __init__(self, pool_size: int = 2, stride: int | None = None):
        super().__init__()
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else self.pool_size
        self._input_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.pool_size, self.stride
        oh, ow = conv_output_size(h, k, s, 0), conv_output_size(w, k, s, 0)
        col = im2col(x.reshape(n * c, 1, h, w), k, k, s, 0)
        self._input_shape = x.shape
        out = col.mean(axis=1).reshape(n, c, oh, ow)
        return np.ascontiguousarray(out, dtype=np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._input_shape
        k, s = self.pool_size, self.stride
        flat = grad.reshape(-1)
        dcol = np.repeat(flat[:, None] / (k * k), k * k, axis=1).astype(np.float32)
        dx = col2im(dcol, (n * c, 1, h, w), k, k, s, 0)
        return dx.reshape(n, c, h, w)


class GlobalAvgPool2D(Module):
    """Global average pooling: NCHW -> NC."""

    def __init__(self):
        super().__init__()
        self._input_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.mean(axis=(2, 3)).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._input_shape
        scale = 1.0 / (h * w)
        return (np.broadcast_to(grad[:, :, None, None], (n, c, h, w)) * scale).astype(np.float32)
