"""Embedding, positional encoding, multi-head attention, Transformer layer.

These implement the Transformer workload of Table 2.  The Transformer is
the one workload in the paper whose SlowDegrade runs eventually recovered
within the doubled training budget (Sec. 4.2.3) — with LayerNorm instead
of BatchNorm there are no moving statistics, so all latent outcomes flow
through the optimizer's gradient-history values.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import GELU
from repro.nn.linear import Dense
from repro.nn.losses import softmax
from repro.nn.module import Module
from repro.nn.normalization import LayerNorm


class Embedding(Module):
    """Token embedding lookup with accumulating backward."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.vocab_size = int(vocab_size)
        self.dim = int(dim)
        self.add_param(
            "weight", rng.normal(0.0, 0.02, size=(vocab_size, dim)).astype(np.float32)
        )
        self._tokens: np.ndarray | None = None

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        self._tokens = tokens
        out = self.weight.data[tokens].astype(np.float32)
        return self.apply_fault_hook("forward", out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        dw = np.zeros_like(self.weight.data)
        np.add.at(dw, self._tokens, grad)
        dw = self.apply_fault_hook("weight_grad", dw, param="weight")
        self.weight.grad += dw
        # Tokens are integers: nothing upstream to propagate to.
        return np.zeros_like(grad)


class PositionalEncoding(Module):
    """Sinusoidal positional encoding added to (N, T, D) embeddings."""

    def __init__(self, dim: int, max_len: int = 512):
        super().__init__()
        position = np.arange(max_len)[:, None].astype(np.float64)
        div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
        table = np.zeros((max_len, dim), dtype=np.float32)
        table[:, 0::2] = np.sin(position * div)
        table[:, 1::2] = np.cos(position * div[: table[:, 1::2].shape[1]])
        self.table = table

    def forward(self, x: np.ndarray) -> np.ndarray:
        t = x.shape[1]
        with np.errstate(over="ignore", invalid="ignore"):
            return (x + self.table[None, :t]).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with explicit backward.

    Supports an optional causal mask (decoder-style), which the toy
    translation workload uses for its autoregressive half.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 causal: bool = False):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = int(dim)
        self.num_heads = int(num_heads)
        self.head_dim = dim // num_heads
        self.causal = bool(causal)
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.add_module("wq", Dense(dim, dim, rng))
        self.add_module("wk", Dense(dim, dim, rng))
        self.add_module("wv", Dense(dim, dim, rng))
        self.add_module("wo", Dense(dim, dim, rng))
        self._cache: tuple | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        n, t, _ = x.shape
        return x.reshape(n, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        n, h, t, d = x.shape
        return np.ascontiguousarray(x.transpose(0, 2, 1, 3)).reshape(n, t, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, t, _ = x.shape
        q = self._split_heads(self.wq.forward(x))
        k = self._split_heads(self.wk.forward(x))
        v = self._split_heads(self.wv.forward(x))
        with np.errstate(over="ignore", invalid="ignore"):
            scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale
            if self.causal:
                mask = np.triu(np.ones((t, t), dtype=bool), k=1)
                scores = np.where(mask, np.float32(-1e30), scores)
            attn = softmax(scores, axis=-1)
            context = attn @ v
        self._cache = (q, k, v, attn)
        merged = self._merge_heads(context)
        out = self.wo.forward(merged)
        return self.apply_fault_hook("forward", out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        q, k, v, attn = self._cache
        d_merged = self.wo.backward(grad)
        d_context = self._split_heads(d_merged)
        with np.errstate(over="ignore", invalid="ignore"):
            d_attn = d_context @ v.transpose(0, 1, 3, 2)
            d_v = attn.transpose(0, 1, 3, 2) @ d_context
            # Softmax Jacobian-vector product.
            d_scores = attn * (d_attn - (d_attn * attn).sum(axis=-1, keepdims=True))
            d_scores = d_scores * self.scale
            d_q = d_scores @ k
            d_k = d_scores.transpose(0, 1, 3, 2) @ q
        dx_q = self.wq.backward(self._merge_heads(d_q))
        dx_k = self.wk.backward(self._merge_heads(d_k))
        dx_v = self.wv.backward(self._merge_heads(d_v))
        with np.errstate(over="ignore", invalid="ignore"):
            dx = (dx_q + dx_k + dx_v).astype(np.float32)
        return self.apply_fault_hook("input_grad", dx)


class TransformerEncoderLayer(Module):
    """Pre-LN Transformer block: LN → MHA → residual, LN → FFN → residual."""

    def __init__(self, dim: int, num_heads: int, ff_dim: int,
                 rng: np.random.Generator, causal: bool = False):
        super().__init__()
        self.add_module("ln1", LayerNorm(dim))
        self.add_module("attn", MultiHeadSelfAttention(dim, num_heads, rng, causal=causal))
        self.add_module("ln2", LayerNorm(dim))
        self.add_module("ff1", Dense(dim, ff_dim, rng))
        self.add_module("act", GELU())
        self.add_module("ff2", Dense(ff_dim, dim, rng))

    def forward(self, x: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore", invalid="ignore"):
            h = x + self.attn.forward(self.ln1.forward(x))
            out = h + self.ff2.forward(self.act.forward(self.ff1.forward(self.ln2.forward(h))))
        return out.astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g_ff = self.ln2.backward(
            self.ff1.backward(self.act.backward(self.ff2.backward(grad)))
        )
        with np.errstate(over="ignore", invalid="ignore"):
            g_h = (grad + g_ff).astype(np.float32)
        g_attn = self.ln1.backward(self.attn.backward(g_h))
        with np.errstate(over="ignore", invalid="ignore"):
            return (g_h + g_attn).astype(np.float32)
