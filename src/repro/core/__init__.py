"""The paper's contribution: fault injection, analysis, and mitigation."""

from repro.core import analysis, faults, mitigation

__all__ = ["analysis", "faults", "mitigation"]
