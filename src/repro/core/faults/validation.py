"""Software-fault-model validation against micro-RTL injection
(Sec. 3.2.3 of the paper, in miniature).

The paper ran 40K RTL FI experiments on five layers from five DNNs and
confirmed that for every non-masked fault, the faulty output elements
matched the corresponding software fault model's prediction.  Here we
replay the same methodology on the micro-RTL MAC array:

for each experiment, inject a bit flip on a named RTL FF at a random
micro-cycle, diff the output against the golden run, and compare the
faulty element positions against the geometry the software fault model
predicts for the same architectural cycle.  Masked faults (no output
difference) are tallied separately, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accelerator.config import DEFAULT_CONFIG, AcceleratorConfig
from repro.accelerator.dataflow import DataflowMap
from repro.accelerator.rtl import MACArraySimulator, RTLFault


@dataclass
class ValidationCase:
    """One RTL experiment and its software-model comparison."""

    fault: RTLFault
    masked: bool
    #: Flat output positions that differ in the RTL run.
    rtl_positions: np.ndarray
    #: Positions the software fault model predicts can be faulty.
    predicted_positions: np.ndarray
    matches: bool


@dataclass
class ValidationSummary:
    total: int = 0
    masked: int = 0
    matched: int = 0
    mismatched: int = 0
    cases: list[ValidationCase] = field(default_factory=list)

    @property
    def match_rate(self) -> float:
        checked = self.matched + self.mismatched
        return self.matched / checked if checked else 1.0


def _arch_cycle_positions(flow: DataflowMap, arch_cycle: int, n_cycles: int) -> np.ndarray:
    coords = flow.elements_for_cycles(arch_cycle, n_cycles)
    return np.sort(flow.flat_indices(coords))


def predicted_positions_for(
    fault: RTLFault,
    sim: MACArraySimulator,
    m: int,
    k: int,
    f: int,
    config: AcceleratorConfig = DEFAULT_CONFIG,
) -> np.ndarray:
    """The element positions the matching software fault model allows.

    The output of the RTL matmul is (M, F); its canonical dataflow view is
    (1, F, 1, M), whose flat order is feature-major — matching
    ``out.T.reshape(-1)``.  This helper returns positions in the *original*
    (M, F) flat order for direct comparison with the RTL diff.
    """
    flow = DataflowMap((m, f), config)
    arch = sim.micro_to_arch_cycle(fault.cycle, m, k, f)
    chunks = (k + sim.k_chunk - 1) // sim.k_chunk
    # A stuck fault spanning several micro-cycles can touch the next
    # architectural cycles too.
    last_arch = sim.micro_to_arch_cycle(fault.cycle + fault.duration - 1, m, k, f)
    n_arch = max(last_arch - arch + 1, 1)
    if fault.ff == "acc":
        coords = flow.lane_element_for_cycles(arch, n_arch, fault.index % sim.lanes)
    elif fault.ff in ("a_reg", "out_valid", "in_valid", "cfg_precision"):
        coords = flow.elements_for_cycles(arch, n_arch)
    elif fault.ff == "out_addr":
        # Wrong address: both the intended elements (left stale) and the
        # aliased destination row can differ.
        tile, row = divmod(arch, m)
        alias_row = row ^ (1 << fault.bit)
        coords = flow.elements_for_cycles(arch, n_arch)
        if 0 <= alias_row < m:
            alias_cycle = tile * m + alias_row
            alias = flow.elements_for_cycles(alias_cycle, 1)
            coords = tuple(np.concatenate([a, b]) for a, b in zip(coords, alias))
    else:  # pragma: no cover - FF_NAMES is exhaustive
        raise ValueError(f"unhandled FF {fault.ff!r}")
    canonical_flat = flow.flat_indices(coords)
    # Canonical (1, F, 1, M) flat index = feature * M + row; convert to
    # the RTL buffer's (M, F) flat order = row * F + feature.
    feature, row = np.divmod(canonical_flat, flow.view_shape[3])
    return np.sort(np.unique(row * f + feature))


def run_validation(
    num_experiments: int = 200,
    m: int = 12,
    k: int = 96,
    f: int = 24,
    seed: int = 0,
    config: AcceleratorConfig = DEFAULT_CONFIG,
) -> ValidationSummary:
    """Run the Sec. 3.2.3 validation campaign on a random matmul."""
    rng = np.random.default_rng(seed)
    sim = MACArraySimulator(config)
    x = rng.normal(0.0, 1.0, size=(m, k)).astype(np.float32)
    w = rng.normal(0.0, 1.0 / np.sqrt(k), size=(k, f)).astype(np.float32)
    golden = sim.run(x, w)
    total_micro = sim.num_micro_cycles(m, k, f)
    summary = ValidationSummary()

    ff_choices = ("acc", "a_reg", "out_valid", "out_addr", "in_valid")
    for _ in range(int(num_experiments)):
        ff = ff_choices[int(rng.integers(0, len(ff_choices)))]
        if ff in ("out_valid", "in_valid"):
            bit = int(rng.integers(0, 2))
        elif ff == "a_reg":
            bit = int(rng.integers(0, 16))
        elif ff == "out_addr":
            bit = int(rng.integers(0, 4))
        else:  # acc: any bit of the FP32 accumulator
            bit = int(rng.integers(0, 32))
        fault = RTLFault(
            ff=ff,
            cycle=int(rng.integers(0, total_micro)),
            index=int(rng.integers(0, sim.lanes if ff == "acc" else sim.k_chunk)),
            bit=bit,
            duration=1,
        )
        faulty = sim.run(x, w, fault)
        positions = sim.diff_positions(golden, faulty)
        predicted = predicted_positions_for(fault, sim, m, k, f, config)
        masked = positions.size == 0
        matches = masked or bool(np.isin(positions, predicted).all())
        summary.total += 1
        if masked:
            summary.masked += 1
        elif matches:
            summary.matched += 1
        else:
            summary.mismatched += 1
        summary.cases.append(
            ValidationCase(fault, masked, positions, predicted, matches)
        )
    return summary
