"""JSON serialization for fault descriptors and campaign results.

Campaigns at paper scale run for node-years; results must be stored and
merged across machines.  This module round-trips
:class:`HardwareFault` / :class:`ExperimentResult` / :class:`CampaignResult`
through plain JSON (no pickle — results may be exchanged between
untrusted machines).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.accelerator.ffs import FFDescriptor
from repro.core.analysis.classify import Outcome, OutcomeReport
from repro.core.faults.campaign import CampaignResult, ExperimentResult
from repro.core.faults.hardware import HardwareFault, OpSite


#: Schema version written into serialized campaign documents.  Bump on
#: any incompatible change; readers reject versions they do not know.
CAMPAIGN_SCHEMA_VERSION = 1


def _json_safe(value):
    """Map inf/NaN to strings (JSON has no literals for them)."""
    if isinstance(value, float):
        if np.isnan(value):
            return "nan"
        if np.isinf(value):
            return "inf" if value > 0 else "-inf"
    return value


def _from_json_number(value):
    """Inverse of :func:`_json_safe`.

    Only the three sentinel strings the writer emits are accepted; any
    other string means the document was hand-edited or written by an
    incompatible serializer, and silently coercing it (the old
    ``float(value)`` fallback) would misparse e.g. ``"NaN"`` or ``"1e3"``
    written by another tool.
    """
    if isinstance(value, str):
        if value == "nan":
            return float("nan")
        if value == "inf":
            return float("inf")
        if value == "-inf":
            return float("-inf")
        raise ValueError(
            f"unrecognized serialized number {value!r}; expected 'nan', "
            f"'inf', '-inf', or a JSON number")
    return float(value)


# ----------------------------------------------------------------------
# Fault descriptors
# ----------------------------------------------------------------------
def fault_to_dict(fault: HardwareFault) -> dict:
    return {
        "ff": {
            "category": fault.ff.category,
            "group": fault.ff.group,
            "bit": fault.ff.bit,
            "has_feedback": fault.ff.has_feedback,
        },
        "site": {"module_name": fault.site.module_name, "kind": fault.site.kind},
        "iteration": fault.iteration,
        "device": fault.device,
        "seed": fault.seed,
    }


def fault_from_dict(data: dict) -> HardwareFault:
    ff = FFDescriptor(
        category=data["ff"]["category"],
        group=data["ff"]["group"],
        bit=data["ff"]["bit"],
        has_feedback=bool(data["ff"]["has_feedback"]),
    )
    site = OpSite(data["site"]["module_name"], data["site"]["kind"])
    return HardwareFault(ff=ff, site=site, iteration=int(data["iteration"]),
                         device=int(data["device"]), seed=int(data["seed"]))


# ----------------------------------------------------------------------
# Experiment and campaign results
# ----------------------------------------------------------------------
def experiment_to_dict(result: ExperimentResult) -> dict:
    out = {
        "fault": fault_to_dict(result.fault),
        "outcome": result.outcome.value,
        "final_train_delta": _json_safe(result.report.final_train_delta),
        "final_test_delta": _json_safe(result.report.final_test_delta),
        "sharp_drop": result.report.sharp_drop_at_injection,
        "num_faulty_elements": result.num_faulty_elements,
        "max_abs_faulty": _json_safe(result.max_abs_faulty),
        "condition_window": {k: _json_safe(v)
                             for k, v in result.condition_window.items()},
    }
    # Additive (schema stays v1): pre-replay records simply lack it.
    if result.arena_sha256 is not None:
        out["arena_sha256"] = result.arena_sha256
    return out


def experiment_from_dict(data: dict) -> ExperimentResult:
    report = OutcomeReport(
        outcome=Outcome(data["outcome"]),
        injection_iteration=int(data["fault"]["iteration"]),
        final_train_delta=_from_json_number(data["final_train_delta"]),
        final_test_delta=_from_json_number(data["final_test_delta"]),
        sharp_drop_at_injection=bool(data["sharp_drop"]),
        details={},
    )
    return ExperimentResult(
        fault=fault_from_dict(data["fault"]),
        report=report,
        num_faulty_elements=int(data["num_faulty_elements"]),
        max_abs_faulty=_from_json_number(data["max_abs_faulty"]),
        condition_window={k: _from_json_number(v)
                          for k, v in data["condition_window"].items()},
        arena_sha256=data.get("arena_sha256"),
    )


def campaign_to_dict(result: CampaignResult) -> dict:
    return {
        "schema": CAMPAIGN_SCHEMA_VERSION,
        "workload": result.workload,
        "results": [experiment_to_dict(r) for r in result.results],
    }


def campaign_from_dict(data: dict) -> CampaignResult:
    schema = data.get("schema")
    # ``None`` is accepted for documents written before versioning.
    if schema is not None and schema != CAMPAIGN_SCHEMA_VERSION:
        raise ValueError(
            f"campaign document schema version {schema!r} is not supported "
            f"(this build reads version {CAMPAIGN_SCHEMA_VERSION})")
    return CampaignResult(
        workload=data["workload"],
        results=[experiment_from_dict(r) for r in data["results"]],
    )


def save_campaign(result: CampaignResult, path: str | Path) -> None:
    Path(path).write_text(json.dumps(campaign_to_dict(result), indent=1))


def load_campaign(path: str | Path) -> CampaignResult:
    return campaign_from_dict(json.loads(Path(path).read_text()))


def merge_campaigns(results: list[CampaignResult]) -> CampaignResult:
    """Merge same-workload campaign shards (distributed execution)."""
    if not results:
        raise ValueError("nothing to merge")
    workloads = {r.workload for r in results}
    if len(workloads) != 1:
        raise ValueError(f"cannot merge different workloads: {sorted(workloads)}")
    merged = CampaignResult(workload=results[0].workload)
    for result in results:
        merged.results.extend(result.results)
    return merged
