"""Link faults: perturbing the in-flight reduced gradient.

Extends the fault-site addressing from tensors held *inside* a device
(forward activations, weight/input gradients, optimizer updates) to the
communication fabric between devices — the interconnect links that
Table 1 of the paper counts among the hardware components whose faults
reach training state.  A link fault manifests as corrupted bits in data
that was correct when it left the sender: here, the all-reduced mean
gradient, perturbed exactly once, after the reduction and before any
consumer (hooks, optimizer) sees it.

Both execution backends expose the identical injection point
(:meth:`repro.backend.base.ExecutionBackend.set_comm_fault_hook` —
the in-process simulator applies it after its central-server average,
the multi-process runtime inside ``all_reduce_mean``), so a comm fault
propagates bit-identically under either backend: the corrupted mean is
applied by the master optimizer and broadcast to *every* replica, the
defining difference from single-device faults, which are diluted by
``1/num_devices`` at the same point.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import DEFAULT_CONFIG, AcceleratorConfig
from repro.core.faults.hardware import HardwareFault
from repro.core.faults.injector import _emit_injection
from repro.core.faults.software_models import FaultRecord, model_for_ff

#: The site kind used by comm faults (mirrors ``core.faults.hardware``'s
#: forward/weight_grad/input_grad vocabulary).
COMM = "comm"

#: The conventional module name for link faults: there is one logical
#: reduction link in the simulated topology, not a per-layer site.
LINK_SITE = "link"


class CommFaultInjector:
    """One-shot bit corruption of the reduced gradient at one iteration.

    A trainer hook, like :class:`~repro.core.faults.injector.FaultInjector`:
    arms the backend's comm-fault site at the target iteration, fires
    exactly once, disarms afterwards, and keeps the
    :class:`~repro.core.faults.software_models.FaultRecord` for analysis.
    ``fault.device`` is recorded but does not select a replica — the
    corrupted mean reaches all of them.
    """

    def __init__(self, fault: HardwareFault, config: AcceleratorConfig = DEFAULT_CONFIG):
        self.fault = fault
        self.config = config
        self.record: FaultRecord | None = None
        self._rng = np.random.default_rng(fault.seed)
        self.fired = False
        self._emitted = False
        self._armed = False

    # ------------------------------------------------------------------
    # The hook the backend applies to the reduced buffer
    # ------------------------------------------------------------------
    def _comm_hook(self, reduced: np.ndarray) -> np.ndarray:
        if self.fired:
            return reduced
        self.fired = True
        model = model_for_ff(self.fault.ff, self.config)
        faulty, record = model.apply(reduced, self._rng, self.fault.ff)
        self.record = record
        return faulty

    # ------------------------------------------------------------------
    # Trainer hook interface
    # ------------------------------------------------------------------
    def before_iteration(self, trainer, iteration: int) -> None:
        if iteration != self.fault.iteration:
            return
        if trainer.master_arena is None:
            raise ValueError(
                "comm faults need the fused reduction path (state arenas); "
                "this model cannot be laid out as one")
        trainer.backend.set_comm_fault_hook(self._comm_hook)
        self._armed = True

    def after_iteration(self, trainer, iteration: int, loss: float, acc: float) -> None:
        if self._armed:
            trainer.backend.set_comm_fault_hook(None)
            self._armed = False
        if self.fired and not self._emitted:
            self._emitted = True
            _emit_injection(trainer, self.fault, self.record, op="comm")
