"""Structured fault-injection sweeps.

Statistical campaigns (:mod:`repro.core.faults.campaign`) sample the
experiment space uniformly; sweeps walk it systematically — one axis at a
time — which is how the paper's per-factor analyses are produced
(injection iteration for the "late faults recover" claim, op site for
the per-layer trends, FF group for Table 1's behavioural census).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.accelerator.ffs import FFDescriptor
from repro.core.faults.campaign import Campaign, ExperimentResult
from repro.core.faults.hardware import HardwareFault, OpSite


@dataclass
class SweepAxis:
    """One swept dimension: a name plus its values."""

    name: str
    values: list

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")


@dataclass
class SweepResult:
    """Grid of experiment results, indexed by axis-value tuples."""

    axes: list[SweepAxis]
    cells: dict[tuple, ExperimentResult] = field(default_factory=dict)

    def marginal(self, axis_name: str, reducer) -> dict:
        """Reduce over all other axes: value -> reducer([results])."""
        index = [a.name for a in self.axes].index(axis_name)
        buckets: dict = {}
        for key, result in self.cells.items():
            buckets.setdefault(key[index], []).append(result)
        return {value: reducer(results) for value, results in buckets.items()}

    def unexpected_rate_by(self, axis_name: str) -> dict:
        return self.marginal(
            axis_name,
            lambda results: sum(r.report.is_unexpected for r in results) / len(results),
        )


def _cell_fault(campaign: Campaign, names: list[str], combo: tuple,
                base_seed: int) -> HardwareFault:
    """Build the fully specified fault for one grid cell."""
    settings = dict(zip(names, combo))
    if "bit" in settings:
        ff = FFDescriptor("datapath", bit=int(settings["bit"]))
    else:
        ff = FFDescriptor("global_control",
                          group=int(settings.get("group", 1)),
                          has_feedback=True)
    site = settings.get("site", ("1.conv1", "weight_grad"))
    if not isinstance(site, OpSite):
        site = OpSite(*site)
    return HardwareFault(
        ff=ff,
        site=site,
        iteration=int(settings.get("iteration",
                                   campaign.warmup_iterations)),
        device=int(settings.get("device", 0)),
        seed=int(settings.get("seed", base_seed)),
    )


def run_sweep(
    campaign: Campaign,
    axes: list[SweepAxis],
    base_seed: int = 0,
    *,
    parallel: int = 1,
    store=None,
    resume: bool = False,
    timeout: float | None = None,
    max_retries: int = 2,
    on_progress=None,
) -> SweepResult:
    """Run one experiment per grid cell.

    Recognized axis names (others are ignored with their values recorded
    in the cell key only):

    * ``"iteration"`` — injection iteration (absolute);
    * ``"site"`` — ``(module_name, kind)`` tuples or ``OpSite`` values;
    * ``"group"`` — global-control fault group (1-10);
    * ``"bit"`` — datapath bit position (overrides ``group``);
    * ``"device"`` — target device index;
    * ``"seed"`` — fault RNG seed.

    Execution is delegated to :class:`repro.engine.CampaignEngine`; the
    engine keywords (``parallel``, ``store``, ``resume``, ``timeout``,
    ``max_retries``, ``on_progress``) behave as in
    :meth:`~repro.core.faults.campaign.Campaign.run`.  Cells whose
    experiment was quarantined are absent from :attr:`SweepResult.cells`.
    """
    from repro.core.faults.serialization import (
        experiment_from_dict,
        fault_to_dict,
    )
    from repro.engine import (
        CampaignEngine,
        EngineConfig,
        ResultStore,
        WorkUnit,
        experiment_key,
    )

    # Prepare in the parent: serial runs need it anyway, and forked
    # workers then inherit the trained baseline snapshot.
    campaign.prepare()
    result = SweepResult(axes=axes)
    names = [a.name for a in axes]
    combos = list(product(*(a.values for a in axes)))
    units = []
    keys: dict[tuple, str] = {}
    for index, combo in enumerate(combos):
        desc = fault_to_dict(_cell_fault(campaign, names, combo, base_seed))
        key = experiment_key(index, desc)
        keys[combo] = key
        units.append(WorkUnit(key=key, payload={"index": index, "fault": desc}))

    owns_store = store is not None and not isinstance(store, ResultStore)
    store_obj = store
    if owns_store:
        store_obj = ResultStore(
            store, kind="sweep",
            meta={"workload": campaign.spec.name,
                  "axes": {a.name: len(a.values) for a in axes},
                  "base_seed": int(base_seed)},
            resume=resume)
    engine = CampaignEngine(
        campaign._engine_runner,
        EngineConfig(parallel=int(parallel), timeout=timeout,
                     max_retries=int(max_retries),
                     worker_daemon=(campaign.backend == "inprocess")),
        store=store_obj, on_progress=on_progress)
    try:
        report = engine.run(units)
    finally:
        if owns_store:
            store_obj.close()
    for combo in combos:
        payload = report.results.get(keys[combo])
        if payload is not None:
            result.cells[combo] = experiment_from_dict(payload)
    return result
