"""Fault injection engine: attaches a software fault to one op site of
one device's replica at one training iteration.

The injector is a trainer hook (see
:class:`repro.distributed.sync.SyncDataParallelTrainer`): it arms the
target module's fault hook at the start of the chosen iteration, the hook
fires exactly once (first matching op execution on the chosen device),
and everything is disarmed at the end of the iteration.  The resulting
:class:`~repro.core.faults.software_models.FaultRecord` is kept for
analysis (faulty element counts/positions/values — Table 4's ranges).

Stable arena addressing
-----------------------
Injection targets can be named two ways:

* by qualified **module** path (``"1.conv1"``) — the historical form; or
* by stable **arena name** (``"1.conv1.weight"``), a key of the trainer's
  :class:`~repro.state.StateArena` index.  The injector resolves the
  owning module from the arena layout, and
  :class:`UpdateFaultInjector` targets exactly that parameter's update
  slot instead of sampling one.  Because arena names survive model-code
  refactors as long as the registered leaves keep their names,
  propagation reports keyed this way stay comparable across versions.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import DEFAULT_CONFIG, AcceleratorConfig
from repro.core.faults.hardware import HardwareFault
from repro.core.faults.software_models import (
    FaultRecord,
    Group7ZeroInput1,
    model_for_ff,
)
from repro.observe import FAULT_INJECTED
from repro.state import StateArena


def _emit_injection(trainer, fault, record: FaultRecord | None,
                    op: str) -> None:
    """Publish a ``fault_injected`` event through the trainer's tracer."""
    tracer = getattr(trainer, "tracer", None)
    if tracer is None or not tracer.enabled or record is None:
        return
    tracer.emit(
        FAULT_INJECTED, iteration=fault.iteration, device=fault.device,
        site=fault.site.module_name, kind=fault.site.kind, op=op,
        ff_category=fault.ff.category, model=record.model,
        num_faulty=record.num_faulty,
        max_abs_faulty=record.max_abs_faulty())


def resolve_site_module(trainer, replica, module_name: str):
    """Resolve an injection target to a module of ``replica``.

    Accepts either a qualified module path or a stable arena name (a
    parameter name from the trainer's fused state index), in which case
    the parameter's owning module is returned.
    """
    modules = dict(replica.named_modules())
    try:
        return modules[module_name]
    except KeyError:
        pass
    arena = getattr(trainer, "master_arena", None)
    if arena is not None and module_name in arena.index:
        owner = StateArena.owner_module(module_name)
        if owner in modules:
            return modules[owner]
    raise KeyError(
        f"op site {module_name!r} not found in model (neither a module "
        f"path nor an arena name); available modules: "
        f"{sorted(modules)[:10]}..."
    )


class FaultInjector:
    """One-shot fault injection at a specific (iteration, device, site)."""

    def __init__(self, fault: HardwareFault, config: AcceleratorConfig = DEFAULT_CONFIG):
        self.fault = fault
        self.config = config
        self.record: FaultRecord | None = None
        self._rng = np.random.default_rng(fault.seed)
        self._armed_module = None
        self.fired = False
        self._emitted = False

    # ------------------------------------------------------------------
    # The hook that perturbs the tensor
    # ------------------------------------------------------------------
    def _fault_hook(self, tensor: np.ndarray, info: dict) -> np.ndarray:
        if self.fired:
            return tensor
        self.fired = True
        model = model_for_ff(self.fault.ff, self.config)
        if isinstance(model, Group7ZeroInput1):
            fan_in = getattr(info.get("module"), "fan_in", None)
            faulty, record = model.apply(tensor, self._rng, self.fault.ff, fan_in=fan_in)
        else:
            faulty, record = model.apply(tensor, self._rng, self.fault.ff)
        self.record = record
        return faulty

    # ------------------------------------------------------------------
    # Arming (shared by the trainer-hook path and the backend's
    # replica-process path)
    # ------------------------------------------------------------------
    def arm(self, trainer, replica) -> None:
        """Arm the fault hook on ``replica``'s target module."""
        module = resolve_site_module(trainer, replica, self.fault.site.module_name)
        module.set_fault_hook(self.fault.site.kind, self._fault_hook)
        self._armed_module = module

    def disarm(self) -> None:
        if self._armed_module is not None:
            self._armed_module.set_fault_hook(self.fault.site.kind, None)
            self._armed_module = None

    # ------------------------------------------------------------------
    # Crossing a process boundary (multi-process backend)
    # ------------------------------------------------------------------
    def export_device_fault(self, iteration: int):
        """Export this injection as a serializable plan, or ``None``.

        Called by backends whose device work runs in another process: a
        fresh injector built from ``(fault, config)`` over there draws
        the identical perturbation (the rng is seeded from the fault).
        """
        if iteration != self.fault.iteration or self.fired:
            return None
        return (self.fault.device, self.fault, self.config)

    def absorb_device_fault(self, fired: bool, record) -> None:
        """Take back the replica-side execution result, so ``fired`` /
        ``record`` state and trace emission match the in-process path."""
        if fired:
            self.fired = True
            self.record = record

    # ------------------------------------------------------------------
    # Trainer hook interface
    # ------------------------------------------------------------------
    def before_iteration(self, trainer, iteration: int) -> None:
        """Trainer hook: arm the fault hook at the target iteration."""
        if iteration != self.fault.iteration:
            return
        if self.fault.device >= trainer.num_devices:
            raise ValueError(
                f"fault targets device {self.fault.device} but trainer has "
                f"{trainer.num_devices} devices"
            )
        backend = getattr(trainer, "backend", None)
        if backend is not None and not getattr(backend, "local_device_work", True):
            # Device work runs in a replica process; the backend ships
            # this injection there as a DeviceFaultPlan (see
            # export_device_fault) instead of arming a parent-side
            # module that never computes.
            return
        self.arm(trainer, trainer.replicas[self.fault.device])

    def after_iteration(self, trainer, iteration: int, loss: float, acc: float) -> None:
        """Trainer hook: disarm after the iteration completes."""
        self.disarm()
        # Emit once per actual injection: a recovery rewind re-arms
        # this hook for the re-executed iteration, but the transient
        # fault does not recur (self.fired stays set).
        if self.fired and not self._emitted:
            self._emitted = True
            _emit_injection(trainer, self.fault, self.record, op="site")


class UpdateFaultInjector:
    """Injects a fault into the optimizer's weight-update operation.

    Models the Sec. 4.2.2 case: with SGD, large faulty weights can only be
    created "if a fault occurs during the weight update operation (i.e.,
    the operation that adds gradients to current weight values)".  The
    hook perturbs one parameter's update tensor with the sampled fault
    model, once.
    """

    def __init__(self, fault: HardwareFault, config: AcceleratorConfig = DEFAULT_CONFIG):
        self.fault = fault
        self.config = config
        self.record: FaultRecord | None = None
        self._rng = np.random.default_rng(fault.seed)
        self.fired = False
        self._target_index: int | None = None

    def _update_hook(self, update: np.ndarray, info: dict) -> np.ndarray:
        if self.fired or info["index"] != self._target_index:
            return update
        self.fired = True
        model = model_for_ff(self.fault.ff, self.config)
        faulty, record = model.apply(update, self._rng, self.fault.ff)
        self.record = record
        return faulty

    def before_iteration(self, trainer, iteration: int) -> None:
        if iteration == self.fault.iteration:
            self._target_index = self._resolve_target(trainer)
            trainer.optimizer.set_update_hook(self._update_hook)

    def _resolve_target(self, trainer) -> int:
        """The parameter index whose update is perturbed.

        If the fault site names a parameter in the trainer's fused state
        index, target it deterministically (stable across model
        refactors); otherwise sample one, as before.
        """
        arena = getattr(trainer, "master_arena", None)
        site_name = self.fault.site.module_name
        if arena is not None and site_name in arena.index:
            return arena.index_of(site_name)
        return int(self._rng.integers(0, len(trainer.optimizer.params)))

    def after_iteration(self, trainer, iteration: int, loss: float, acc: float) -> None:
        if iteration == self.fault.iteration:
            trainer.optimizer.set_update_hook(None)
            if self.fired:
                _emit_injection(trainer, self.fault, self.record,
                                op="weight_update")
