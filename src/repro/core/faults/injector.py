"""Fault injection engine: attaches a software fault to one op site of
one device's replica at one training iteration.

The injector is a trainer hook (see
:class:`repro.distributed.sync.SyncDataParallelTrainer`): it arms the
target module's fault hook at the start of the chosen iteration, the hook
fires exactly once (first matching op execution on the chosen device),
and everything is disarmed at the end of the iteration.  The resulting
:class:`~repro.core.faults.software_models.FaultRecord` is kept for
analysis (faulty element counts/positions/values — Table 4's ranges).
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import DEFAULT_CONFIG, AcceleratorConfig
from repro.core.faults.hardware import HardwareFault
from repro.core.faults.software_models import (
    FaultRecord,
    Group7ZeroInput1,
    model_for_ff,
)


class FaultInjector:
    """One-shot fault injection at a specific (iteration, device, site)."""

    def __init__(self, fault: HardwareFault, config: AcceleratorConfig = DEFAULT_CONFIG):
        self.fault = fault
        self.config = config
        self.record: FaultRecord | None = None
        self._rng = np.random.default_rng(fault.seed)
        self._armed_module = None
        self.fired = False

    # ------------------------------------------------------------------
    # The hook that perturbs the tensor
    # ------------------------------------------------------------------
    def _fault_hook(self, tensor: np.ndarray, info: dict) -> np.ndarray:
        if self.fired:
            return tensor
        self.fired = True
        model = model_for_ff(self.fault.ff, self.config)
        if isinstance(model, Group7ZeroInput1):
            fan_in = getattr(info.get("module"), "fan_in", None)
            faulty, record = model.apply(tensor, self._rng, self.fault.ff, fan_in=fan_in)
        else:
            faulty, record = model.apply(tensor, self._rng, self.fault.ff)
        self.record = record
        return faulty

    # ------------------------------------------------------------------
    # Trainer hook interface
    # ------------------------------------------------------------------
    def before_iteration(self, trainer, iteration: int) -> None:
        """Trainer hook: arm the fault hook at the target iteration."""
        if iteration != self.fault.iteration:
            return
        if self.fault.device >= trainer.num_devices:
            raise ValueError(
                f"fault targets device {self.fault.device} but trainer has "
                f"{trainer.num_devices} devices"
            )
        replica = trainer.replicas[self.fault.device]
        modules = dict(replica.named_modules())
        try:
            module = modules[self.fault.site.module_name]
        except KeyError:
            raise KeyError(
                f"op site {self.fault.site.module_name!r} not found in model; "
                f"available: {sorted(modules)[:10]}..."
            ) from None
        module.set_fault_hook(self.fault.site.kind, self._fault_hook)
        self._armed_module = module

    def after_iteration(self, trainer, iteration: int, loss: float, acc: float) -> None:
        """Trainer hook: disarm after the iteration completes."""
        if self._armed_module is not None:
            self._armed_module.set_fault_hook(self.fault.site.kind, None)
            self._armed_module = None


class UpdateFaultInjector:
    """Injects a fault into the optimizer's weight-update operation.

    Models the Sec. 4.2.2 case: with SGD, large faulty weights can only be
    created "if a fault occurs during the weight update operation (i.e.,
    the operation that adds gradients to current weight values)".  The
    hook perturbs one parameter's update tensor with the sampled fault
    model, once.
    """

    def __init__(self, fault: HardwareFault, config: AcceleratorConfig = DEFAULT_CONFIG):
        self.fault = fault
        self.config = config
        self.record: FaultRecord | None = None
        self._rng = np.random.default_rng(fault.seed)
        self.fired = False
        self._target_index: int | None = None

    def _update_hook(self, update: np.ndarray, info: dict) -> np.ndarray:
        if self.fired or info["index"] != self._target_index:
            return update
        self.fired = True
        model = model_for_ff(self.fault.ff, self.config)
        faulty, record = model.apply(update, self._rng, self.fault.ff)
        self.record = record
        return faulty

    def before_iteration(self, trainer, iteration: int) -> None:
        if iteration == self.fault.iteration:
            self._target_index = int(self._rng.integers(0, len(trainer.optimizer.params)))
            trainer.optimizer.set_update_hook(self._update_hook)

    def after_iteration(self, trainer, iteration: int, loss: float, acc: float) -> None:
        if iteration == self.fault.iteration:
            trainer.optimizer.set_update_hook(None)
