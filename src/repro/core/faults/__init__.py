"""Fault injection framework: the paper's primary contribution."""

from repro.core.faults.campaign import (
    Campaign,
    CampaignResult,
    ExperimentResult,
    InferenceCampaign,
)
from repro.core.faults.comm import COMM, LINK_SITE, CommFaultInjector
from repro.core.faults.hardware import (
    FORWARD,
    INPUT_GRAD,
    SITE_KINDS,
    WEIGHT_GRAD,
    HardwareFault,
    OpSite,
    enumerate_sites,
    sample_fault,
)
from repro.core.faults.injector import FaultInjector, UpdateFaultInjector
from repro.core.faults.multi import (
    MultiFaultInjector,
    expected_faults_per_run,
    sample_spread_faults,
)
from repro.core.faults.software_models import (
    GLOBAL_GROUP_MODELS,
    DatapathBitFlip,
    FaultRecord,
    LocalControlFault,
    PrecisionConfigFault,
    SoftwareFaultModel,
    all_model_names,
    model_for_ff,
)
from repro.core.faults.sweep import SweepAxis, SweepResult, run_sweep
from repro.core.faults.validation import ValidationSummary, run_validation

__all__ = [
    "COMM",
    "FORWARD",
    "GLOBAL_GROUP_MODELS",
    "INPUT_GRAD",
    "LINK_SITE",
    "SITE_KINDS",
    "WEIGHT_GRAD",
    "Campaign",
    "CampaignResult",
    "CommFaultInjector",
    "DatapathBitFlip",
    "ExperimentResult",
    "FaultInjector",
    "FaultRecord",
    "HardwareFault",
    "InferenceCampaign",
    "LocalControlFault",
    "MultiFaultInjector",
    "OpSite",
    "PrecisionConfigFault",
    "SoftwareFaultModel",
    "SweepAxis",
    "SweepResult",
    "UpdateFaultInjector",
    "ValidationSummary",
    "all_model_names",
    "enumerate_sites",
    "expected_faults_per_run",
    "model_for_ff",
    "run_sweep",
    "run_validation",
    "sample_spread_faults",
    "sample_fault",
]
