"""Statistical fault-injection campaigns (Sec. 3.3 / Sec. 4 of the paper).

A :class:`Campaign` reproduces the paper's experiment protocol at reduced
scale:

1. train the workload fault-free to a warm-up point once and snapshot it
   (the paper's per-epoch checkpoints);
2. for each experiment, restore the snapshot, sample a random fault
   (FF x cycle x op-site x device x iteration), inject it, and continue
   training "until either an error message [INFs/NaNs] is encountered, or
   until a predefined number of training iterations are completed";
3. classify the outcome against the fault-free reference run and collect
   the necessary-condition magnitudes (Table 4).

An :class:`InferenceCampaign` applies the same faults to inference only,
for the training-vs-inference comparison of Table 5.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.accelerator.ffs import FFInventory
from repro.core.analysis.classify import (
    ClassifierThresholds,
    InferenceOutcome,
    Outcome,
    OutcomeReport,
    classify_inference_experiment,
    classify_outcome,
    classify_outcomes,
    inference_breakdown,
    outcome_breakdown,
)
from repro.core.analysis.propagation import PropagationTracer
from repro.core.analysis.stats import ProportionEstimate, wilson_interval
from repro.core.faults.comm import COMM, CommFaultInjector
from repro.core.faults.hardware import SITE_KINDS, HardwareFault, sample_fault
from repro.core.faults.injector import FaultInjector
from repro.distributed.sync import SyncDataParallelTrainer
from repro.state import training_state_digest
from repro.training.checkpoints import Checkpoint
from repro.training.metrics import ConvergenceRecord
from repro.workloads.base import WorkloadSpec


@dataclass
class ExperimentResult:
    """One fault-injection experiment's full outcome."""

    fault: HardwareFault
    report: OutcomeReport
    #: Number of elements the software fault model perturbed.
    num_faulty_elements: int
    #: Largest absolute faulty value written by the fault model.
    max_abs_faulty: float
    #: Necessary-condition magnitudes within 2 iterations of the fault.
    condition_window: dict[str, float]
    record: ConvergenceRecord | None = None
    #: Digest of the final training state (params + optimizer slots +
    #: per-replica extra state), the replay gate's byte-identity anchor.
    arena_sha256: str | None = None

    @property
    def outcome(self) -> Outcome:
        """The classified outcome (Table 3 taxonomy)."""
        return self.report.outcome


@dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    workload: str
    results: list[ExperimentResult] = field(default_factory=list)
    #: The :class:`repro.engine.EngineReport` of the run that produced
    #: this result, when it was executed through the engine.
    engine_report: object = field(default=None, repr=False, compare=False)

    @property
    def num_experiments(self) -> int:
        """Number of experiments aggregated in this result."""
        return len(self.results)

    def breakdown(self) -> dict[str, float]:
        """Outcome fractions normalized to total experiments (Fig. 3)."""
        return outcome_breakdown([r.report for r in self.results])

    def unexpected_fraction(self) -> float:
        """Fraction of experiments with unexpected outcomes."""
        if not self.results:
            return 0.0
        return sum(r.report.is_unexpected for r in self.results) / len(self.results)

    def unexpected_interval(self, confidence: float = 0.99) -> ProportionEstimate:
        """Wilson interval for the unexpected-outcome fraction."""
        hits = sum(r.report.is_unexpected for r in self.results)
        return wilson_interval(hits, max(len(self.results), 1), confidence)

    def by_ff_category(self) -> dict[str, dict[str, float]]:
        """Unexpected-outcome contribution per FF class (Sec. 4.3.1).

        Categories: "critical_control" (global groups 1 and 3 plus local
        control FFs), "upper_exponent" (datapath flips in the top two
        exponent bits), and "other".
        """
        def category(result: ExperimentResult) -> str:
            ff = result.fault.ff
            if ff.category == "local_control" or (
                ff.category == "global_control" and ff.group in (1, 3)
            ):
                return "critical_control"
            if ff.category == "datapath" and ff.is_upper_exponent():
                return "upper_exponent"
            return "other"

        stats: dict[str, dict[str, float]] = {}
        total_unexpected = sum(r.report.is_unexpected for r in self.results)
        for name in ("critical_control", "upper_exponent", "other"):
            members = [r for r in self.results if category(r) == name]
            unexpected = sum(r.report.is_unexpected for r in members)
            stats[name] = {
                "population_fraction": len(members) / max(len(self.results), 1),
                "unexpected_share": unexpected / max(total_unexpected, 1),
                "unexpected_rate": unexpected / max(len(members), 1),
            }
        return stats

    def condition_ranges(self) -> dict[str, tuple[float, float]]:
        """Observed [min, max] necessary-condition magnitudes per latent
        outcome (the paper's Table 4)."""
        ranges: dict[str, tuple[float, float]] = {}
        for result in self.results:
            outcome = result.outcome
            if not (outcome.is_latent or outcome == Outcome.SHORT_TERM_INF_NAN):
                continue
            if outcome in (Outcome.SLOW_DEGRADE, Outcome.SHARP_SLOW_DEGRADE):
                value = result.condition_window.get("max_history", 0.0)
            else:
                value = result.condition_window.get("max_mvar", 0.0)
            if value <= 0.0:
                continue
            lo, hi = ranges.get(outcome.value, (value, value))
            ranges[outcome.value] = (min(lo, value), max(hi, value))
        return ranges


class Campaign:
    """Statistical FI campaign over one workload."""

    def __init__(
        self,
        spec: WorkloadSpec,
        num_devices: int = 8,
        seed: int = 0,
        warmup_iterations: int | None = None,
        horizon: int | None = None,
        inject_window: int | None = None,
        test_every: int = 10,
        thresholds: ClassifierThresholds | None = None,
        inventory: FFInventory | None = None,
        site_kinds: tuple[str, ...] = SITE_KINDS,
        keep_records: bool = False,
        detect: bool = False,
        backend: str = "inprocess",
        experiment_batch: int = 1,
    ):
        self.spec = spec
        self.num_devices = int(num_devices)
        self.seed = int(seed)
        #: Execution backend name for every trainer the campaign builds
        #: (see :mod:`repro.backend`); experiment outcomes are
        #: bit-identical under every backend, so stored results stay
        #: comparable.
        self.backend = backend
        #: Experiments stepped together per batched program (the ``E``
        #: of :mod:`repro.backend.batched`).  Only meaningful with
        #: ``backend="batched"``.
        self.experiment_batch = max(int(experiment_batch), 1)
        if self.experiment_batch > 1 and backend != "batched":
            raise ValueError(
                "experiment_batch > 1 requires backend='batched' "
                f"(got backend={backend!r})")
        self.warmup_iterations = (
            spec.iterations // 3 if warmup_iterations is None else int(warmup_iterations)
        )
        self.horizon = spec.iterations if horizon is None else int(horizon)
        self.inject_window = (
            max(self.horizon // 4, 1) if inject_window is None else int(inject_window)
        )
        self.test_every = int(test_every)
        self.thresholds = thresholds or ClassifierThresholds()
        self.inventory = inventory or FFInventory()
        self.site_kinds = site_kinds
        self.keep_records = bool(keep_records)
        #: Attach a Sec. 5.1 :class:`HardwareFailureDetector` to every
        #: experiment.  The detector only *reads* trainer state, so
        #: outcomes are unchanged; with tracing on, its firings land in
        #: the campaign trace as ``detector_fired`` events.
        self.detect = bool(detect)
        self._snapshot: Checkpoint | None = None
        self._warmup_record: ConvergenceRecord | None = None
        self._site_model = None
        self.reference: ConvergenceRecord | None = None

    # ------------------------------------------------------------------
    # Config round-trip (replay)
    # ------------------------------------------------------------------
    def config_dict(self) -> dict:
        """Everything needed to rebuild this campaign bit-for-bit.

        Stored in the :class:`~repro.engine.store.ResultStore` header
        (and hence in the merged campaign trace), so ``repro replay`` can
        reconstruct the identical warm-up snapshot, reference run, and
        classifier from the trace alone.
        """
        return {
            "workload": self.spec.name,
            "size": self.spec.extra.get("size", "small"),
            "workload_seed": int(self.spec.extra.get("seed", 0)),
            "num_devices": self.num_devices,
            "seed": self.seed,
            "warmup_iterations": self.warmup_iterations,
            "horizon": self.horizon,
            "inject_window": self.inject_window,
            "test_every": self.test_every,
            "thresholds": asdict(self.thresholds),
            "site_kinds": list(self.site_kinds),
            "detect": self.detect,
            "backend": self.backend,
            "experiment_batch": self.experiment_batch,
        }

    @classmethod
    def from_config(cls, config: dict, *, backend: str | None = None,
                    experiment_batch: int | None = None) -> "Campaign":
        """Rebuild a campaign from a :meth:`config_dict` record.

        ``backend`` overrides the recorded execution backend (outcomes
        are bit-identical across backends, so replays stay valid); the
        batch size is clamped to 1 unless the resolved backend is
        ``"batched"``.
        """
        from repro.workloads import build_workload

        spec = build_workload(
            config["workload"],
            size=config.get("size", "small"),
            seed=int(config.get("workload_seed", 0)),
        )
        resolved_backend = config.get("backend", "inprocess") if backend is None \
            else backend
        batch = int(config.get("experiment_batch", 1)) \
            if experiment_batch is None else int(experiment_batch)
        if resolved_backend != "batched":
            batch = 1
        thresholds = None
        if config.get("thresholds"):
            thresholds = ClassifierThresholds(**config["thresholds"])
        return cls(
            spec,
            num_devices=int(config.get("num_devices", 8)),
            seed=int(config.get("seed", 0)),
            warmup_iterations=int(config["warmup_iterations"]),
            horizon=int(config["horizon"]),
            inject_window=int(config["inject_window"]),
            test_every=int(config.get("test_every", 10)),
            thresholds=thresholds,
            site_kinds=tuple(config.get("site_kinds", SITE_KINDS)),
            detect=bool(config.get("detect", False)),
            backend=resolved_backend,
            experiment_batch=batch,
        )

    # ------------------------------------------------------------------
    # Baseline preparation
    # ------------------------------------------------------------------
    def _new_trainer(self, eval_device: int = 0, tracer=None,
                     backend=None) -> SyncDataParallelTrainer:
        return SyncDataParallelTrainer(
            self.spec,
            num_devices=self.num_devices,
            seed=self.seed,
            test_every=self.test_every,
            eval_device=eval_device,
            tracer=tracer,
            backend=self.backend if backend is None else backend,
        )

    def _ensure_site_model(self) -> None:
        """Build the op-site enumeration model (much cheaper than
        :meth:`prepare`, so faults can be sampled without training)."""
        if self._site_model is None:
            self._site_model = self.spec.build_model(self.seed)

    def prepare(self) -> None:
        """Train the fault-free baseline and reference (idempotent)."""
        if self._snapshot is not None:
            return
        self._ensure_site_model()
        trainer = self._new_trainer()
        try:
            trainer.train(self.warmup_iterations)
            self._snapshot = Checkpoint.capture(trainer)
            self._warmup_record = trainer.record
            # Fault-free reference continuation over the full horizon.
            trainer.train(self.horizon)
            self.reference = trainer.record
        finally:
            # Release the backend now: for the multiprocess backend this
            # stops the baseline's replica processes before the engine
            # forks its workers.
            trainer.close()

    # ------------------------------------------------------------------
    # One experiment
    # ------------------------------------------------------------------
    def sample_experiment(self, rng: np.random.Generator) -> HardwareFault:
        """Sample a fault whose injection falls inside the campaign's
        injection window (post-warmup)."""
        self._ensure_site_model()
        fault = sample_fault(
            self._site_model, rng,
            max_iteration=self.inject_window,
            num_devices=self.num_devices,
            inventory=self.inventory,
            kinds=self.site_kinds,
        )
        fault.iteration += self.warmup_iterations
        return fault

    @staticmethod
    def _injector_for(fault: HardwareFault):
        """The injector hook matching a fault's site kind: link faults
        corrupt the reduced gradient, everything else a device tensor."""
        if fault.site.kind == COMM:
            return CommFaultInjector(fault)
        return FaultInjector(fault)

    def run_experiment(self, fault: HardwareFault,
                       tracer=None) -> ExperimentResult:
        """Restore the baseline, inject, train to the horizon, classify.

        ``tracer`` is the experiment's event sink; when omitted, the
        process-wide :func:`~repro.observe.current_tracer` is used — that
        is how engine workers capture every experiment into their shard
        without the payload-agnostic engine threading a tracer through.
        """
        from repro.core.mitigation.detector import HardwareFailureDetector
        from repro.observe import current_tracer, histogram

        self.prepare()
        if tracer is None:
            tracer = current_tracer()
        trainer = self._new_trainer(eval_device=fault.device, tracer=tracer)
        self._snapshot.restore(trainer)
        injector = self._injector_for(fault)
        ptracer = PropagationTracer()
        trainer.add_hook(injector)
        trainer.add_hook(ptracer)
        detector = None
        if self.detect:
            detector = HardwareFailureDetector()
            trainer.add_hook(detector)
        remaining = self.warmup_iterations + self.horizon - trainer.iteration
        arena_sha256 = None
        try:
            trainer.train(remaining)
            # Digest before close(): the multiprocess backend unlinks its
            # shared-memory segments when the trainer is released.
            arena_sha256 = training_state_digest(trainer)
        finally:
            trainer.close()
        if detector is not None:
            latency = detector.detection_latency(fault.iteration)
            if latency is not None:
                histogram("detector.latency_iterations").observe(
                    float(latency))
        report = classify_outcome(
            trainer.record, self.reference, fault.iteration, self.thresholds
        )
        record = injector.record
        return ExperimentResult(
            fault=fault,
            report=report,
            num_faulty_elements=record.num_faulty if record else 0,
            max_abs_faulty=record.max_abs_faulty() if record else 0.0,
            condition_window=ptracer.condition_magnitude_in_window(fault.iteration),
            record=trainer.record if self.keep_records else None,
            arena_sha256=arena_sha256,
        )

    def run_experiment_batch(self, faults: list[HardwareFault],
                             tracer=None) -> list[ExperimentResult]:
        """Run E experiments concurrently through one batched program.

        Every experiment gets its own trainer, injector hooks, records,
        and classification — exactly as :meth:`run_experiment` — but all
        E trainers share one :class:`~repro.backend.batched.LaneGroup`
        and advance in lockstep, so the NumPy work is E-wide vectorized
        ops.  Per-experiment results are bit-identical to solo runs
        (masked injection and rollback isolation are pinned by tests).
        """
        from repro.backend.batched import BatchedBackend, LaneGroup, run_lockstep
        from repro.core.mitigation.detector import HardwareFailureDetector
        from repro.observe import current_tracer

        if len(faults) == 1:
            return [self.run_experiment(faults[0], tracer=tracer)]
        self.prepare()
        if tracer is None:
            tracer = current_tracer()
        group = LaneGroup(capacity=len(faults))
        trainers: list[SyncDataParallelTrainer] = []
        injectors: list[FaultInjector] = []
        ptracers: list[PropagationTracer] = []
        for fault in faults:
            trainer = self._new_trainer(
                eval_device=fault.device, tracer=tracer,
                backend=BatchedBackend(group=group))
            self._snapshot.restore(trainer)
            injector = self._injector_for(fault)
            ptracer = PropagationTracer()
            trainer.add_hook(injector)
            trainer.add_hook(ptracer)
            if self.detect:
                trainer.add_hook(HardwareFailureDetector())
            trainers.append(trainer)
            injectors.append(injector)
            ptracers.append(ptracer)
        budgets = [self.warmup_iterations + self.horizon - t.iteration
                   for t in trainers]
        try:
            run_lockstep(group, trainers, budgets)
            digests = [training_state_digest(t) for t in trainers]
        finally:
            for trainer in trainers:
                trainer.close()
        reports = classify_outcomes(
            [t.record for t in trainers], self.reference,
            [f.iteration for f in faults], self.thresholds)
        results = []
        for fault, trainer, injector, ptracer, report, digest in zip(
                faults, trainers, injectors, ptracers, reports, digests):
            record = injector.record
            results.append(ExperimentResult(
                fault=fault,
                report=report,
                num_faulty_elements=record.num_faulty if record else 0,
                max_abs_faulty=record.max_abs_faulty() if record else 0.0,
                condition_window=ptracer.condition_magnitude_in_window(
                    fault.iteration),
                record=trainer.record if self.keep_records else None,
                arena_sha256=digest,
            ))
        return results

    # ------------------------------------------------------------------
    # Full campaign (thin front-end over repro.engine)
    # ------------------------------------------------------------------
    def sample_faults(self, num_experiments: int, seed: int = 1234) -> list[HardwareFault]:
        """Sample the campaign's full experiment list up-front.

        Sampling is decoupled from execution so the seeded fault list —
        and therefore every experiment key — is identical regardless of
        worker count or resume point."""
        rng = np.random.default_rng(seed)
        return [self.sample_experiment(rng) for _ in range(int(num_experiments))]

    def _work_units(self, faults: list[HardwareFault]) -> list:
        from repro.core.faults.serialization import fault_to_dict
        from repro.engine import WorkUnit, experiment_key

        units = []
        for index, fault in enumerate(faults):
            desc = fault_to_dict(fault)
            units.append(WorkUnit(key=experiment_key(index, desc),
                                  payload={"index": index, "fault": desc}))
        return units

    def _engine_runner(self):
        """Runner factory for the engine (invoked once per worker)."""
        from repro.core.faults.serialization import (
            experiment_to_dict,
            fault_from_dict,
        )

        self.prepare()

        def run_unit(payload):
            # A list payload is an E-sized block leased by the engine's
            # block scheduler: run it through one batched program and
            # return the per-unit results in order.
            if isinstance(payload, list):
                results = self.run_experiment_batch(
                    [fault_from_dict(p["fault"]) for p in payload])
                outs = []
                for p, result in zip(payload, results):
                    out = experiment_to_dict(result)
                    out["index"] = p["index"]
                    outs.append(out)
                return outs
            result = self.run_experiment(fault_from_dict(payload["fault"]))
            out = experiment_to_dict(result)
            out["index"] = payload["index"]
            return out

        return run_unit

    def run(self, num_experiments: int, seed: int = 1234, *,
            parallel: int = 1, store=None, resume: bool = False,
            timeout: float | None = None, max_retries: int = 2,
            on_progress=None, tracer=None, on_engine=None,
            trace: bool = False) -> CampaignResult:
        """Run ``num_experiments`` seeded experiments and aggregate.

        Execution is delegated to :class:`repro.engine.CampaignEngine`:
        ``parallel`` fans experiments out over that many forked workers,
        ``store`` streams results into a persistent
        :class:`~repro.engine.store.ResultStore` (a path or an open
        store), and ``resume=True`` skips experiments the store already
        holds.  ``trace=True`` turns on the flight recorder: every
        worker streams its experiments' events into a shard next to the
        store, merged into one campaign trace at the end of the run
        (``EngineReport.trace_path``).  ``on_engine`` receives the
        engine right before execution starts — the telemetry service
        hooks it to read live progress snapshots.  Experiments are fully
        seeded, so the aggregate outcome breakdown is identical at any
        worker count.
        """
        from repro.core.faults.serialization import experiment_from_dict
        from repro.engine import CampaignEngine, EngineConfig, ResultStore

        faults = self.sample_faults(num_experiments, seed)
        if self.keep_records:
            if parallel > 1 or store is not None:
                raise ValueError(
                    "keep_records campaigns retain full convergence records, "
                    "which the engine does not serialize; run with "
                    "parallel=1 and no store")
            result = CampaignResult(workload=self.spec.name)
            step = self.experiment_batch
            for start in range(0, len(faults), step):
                block = faults[start:start + step]
                if len(block) == 1:
                    result.results.append(self.run_experiment(block[0]))
                else:
                    result.results.extend(self.run_experiment_batch(block))
            return result

        if parallel > 1:
            # Prepare in the parent so forked workers inherit the trained
            # baseline snapshot instead of each retraining it.
            self.prepare()
        owns_store = store is not None and not isinstance(store, ResultStore)
        store_obj = store
        if owns_store:
            store_obj = ResultStore(
                store, kind="campaign",
                meta={"workload": self.spec.name, "seed": int(seed),
                      "num_experiments": int(num_experiments),
                      # Full reconstruction record: repro replay rebuilds
                      # the campaign from this (via the merged trace).
                      "config": self.config_dict()},
                resume=resume)
        engine = CampaignEngine(
            self._engine_runner,
            EngineConfig(parallel=int(parallel), timeout=timeout,
                         max_retries=int(max_retries), trace=trace,
                         block_size=self.experiment_batch,
                         # Multiprocess-backend experiments spawn replica
                         # processes, which daemonic workers may not do.
                         worker_daemon=(self.backend != "multiprocess")),
            store=store_obj, on_progress=on_progress, tracer=tracer)
        if on_engine is not None:
            on_engine(engine)
        try:
            report = engine.run(self._work_units(faults))
        finally:
            if owns_store:
                store_obj.close()
        payloads = sorted(report.results.values(), key=lambda p: p["index"])
        result = CampaignResult(
            workload=self.spec.name,
            results=[experiment_from_dict(p) for p in payloads])
        result.engine_report = report
        return result


class InferenceCampaign:
    """Fault injection into *inference* of a trained model (Table 5).

    Each experiment injects one fault into one forward-pass op site during
    a batched prediction and reports whether any prediction changed (an
    SDC).  Contrasts with training: here there is no recovery mechanism,
    so control faults that flip many outputs almost always change the
    prediction.
    """

    def __init__(self, spec: WorkloadSpec, seed: int = 0, train_iterations: int | None = None,
                 num_devices: int = 4):
        self.spec = spec
        self.seed = int(seed)
        trainer = SyncDataParallelTrainer(spec, num_devices=num_devices, seed=seed,
                                          test_every=0)
        try:
            trainer.train(train_iterations or spec.iterations)
        finally:
            trainer.close()
        self.model = trainer.master
        self.inventory = FFInventory()

    def _engine_runner(self):
        """Runner factory: one forward-pass injection per work unit."""
        from repro.core.faults.serialization import fault_from_dict

        def run_unit(payload: dict) -> dict:
            fault = fault_from_dict(payload["fault"])
            injector = FaultInjector(fault)
            modules = dict(self.model.named_modules())
            module = modules[fault.site.module_name]
            module.set_fault_hook("forward", injector._fault_hook)
            try:
                with np.errstate(over="ignore", invalid="ignore",
                                 divide="ignore"):
                    faulty = self.model.forward(self._inputs)
            finally:
                module.set_fault_hook("forward", None)
            nonfinite = not bool(np.all(np.isfinite(faulty)))
            pred = np.argmax(np.nan_to_num(faulty, nan=-np.inf), axis=-1)
            sdc = bool(np.any(pred != self._golden_pred))
            outcome = classify_inference_experiment(sdc=sdc, nonfinite=nonfinite)
            return {"index": payload["index"], "fault": payload["fault"],
                    "sdc": sdc, "nonfinite": nonfinite,
                    "outcome": outcome.value}

        return run_unit

    def run(self, num_experiments: int, seed: int = 99, batch: int = 32, *,
            parallel: int = 1, store=None, resume: bool = False,
            timeout: float | None = None, max_retries: int = 2,
            on_progress=None) -> dict[str, float]:
        """Inject ``num_experiments`` forward-pass faults and report SDC
        rates; engine keywords behave as in :meth:`Campaign.run`."""
        from repro.core.faults.serialization import fault_to_dict
        from repro.engine import (
            CampaignEngine,
            EngineConfig,
            ResultStore,
            WorkUnit,
            experiment_key,
        )

        rng = np.random.default_rng(seed)
        faults = [
            sample_fault(self.model, rng, max_iteration=1, num_devices=1,
                         inventory=self.inventory, kinds=("forward",))
            for _ in range(int(num_experiments))
        ]
        self._inputs = self.spec.test_data.inputs[:batch]
        self.model.eval()
        try:
            with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
                golden = self.model.forward(self._inputs)
            self._golden_pred = np.argmax(
                np.nan_to_num(golden, nan=-np.inf), axis=-1)
            units = []
            for index, fault in enumerate(faults):
                desc = fault_to_dict(fault)
                units.append(WorkUnit(key=experiment_key(index, desc),
                                      payload={"index": index, "fault": desc}))
            owns_store = store is not None and not isinstance(store, ResultStore)
            store_obj = store
            if owns_store:
                store_obj = ResultStore(
                    store, kind="inference",
                    meta={"workload": self.spec.name, "seed": int(seed),
                          "num_experiments": int(num_experiments)},
                    resume=resume)
            engine = CampaignEngine(
                self._engine_runner,
                EngineConfig(parallel=int(parallel), timeout=timeout,
                             max_retries=int(max_retries)),
                store=store_obj, on_progress=on_progress)
            try:
                report = engine.run(units)
            finally:
                if owns_store:
                    store_obj.close()
        finally:
            self.model.train()
        n = max(int(num_experiments), 1)
        payloads = list(report.results.values())
        breakdown = inference_breakdown(
            [p.get("outcome") or classify_inference_experiment(
                sdc=bool(p["sdc"]), nonfinite=bool(p["nonfinite"])).value
             for p in payloads])
        return {"sdc_rate": sum(p["sdc"] for p in payloads) / n,
                "nonfinite_rate": sum(p["nonfinite"] for p in payloads) / n,
                "masked_rate": breakdown[InferenceOutcome.MASKED.value] / n,
                "breakdown": breakdown,
                "num_experiments": len(payloads)}
