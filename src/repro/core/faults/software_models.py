"""Software fault models (Table 1 of the paper).

Each model maps a hardware bit flip in one FF category onto its
software-visible effect: *which* elements of the op-site tensor become
faulty (geometry from the accelerator dataflow) and *what* their faulty
values are.  The ten global-control groups follow Table 1 verbatim;
datapath and local-control models follow the FIdelity formulation the
paper reuses for those categories.

All models operate on the *canonical accelerator view* of the tensor
(see :mod:`repro.accelerator.dataflow`) and restore the original layout,
so they apply uniformly to conv activations, dense outputs, sequence
tensors, and weight-gradient tensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accelerator.config import DEFAULT_CONFIG, AcceleratorConfig
from repro.accelerator.dataflow import DataflowMap, from_canonical, to_canonical
from repro.accelerator.ffs import FFDescriptor
from repro.tensor.bits import flip_float32_bit, random_float32_pattern


@dataclass
class FaultRecord:
    """What a fault model actually did to a tensor (for analysis)."""

    model: str
    ff: FFDescriptor | None
    start_cycle: int
    n_cycles: int
    #: Flat indices (canonical layout) of the perturbed elements.
    positions: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    original_values: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.float32))
    faulty_values: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.float32))

    @property
    def num_faulty(self) -> int:
        return int(self.positions.size)

    def max_abs_faulty(self) -> float:
        if self.faulty_values.size == 0:
            return 0.0
        with np.errstate(invalid="ignore"):
            m = np.abs(self.faulty_values).max()
        return float(m) if np.isfinite(m) else float("inf")


class SoftwareFaultModel:
    """Base class: perturb a tensor per one Table 1 row."""

    #: Human-readable model name (Table 1 group or FF category).
    name = "base"

    def __init__(self, config: AcceleratorConfig = DEFAULT_CONFIG):
        self.config = config

    # ------------------------------------------------------------------
    # Helpers shared by all models
    # ------------------------------------------------------------------
    def _duration(self, rng: np.random.Generator, has_feedback: bool) -> int:
        """Table 1's ``n``: 1, or uniform in [1, max loop] with feedback."""
        if not has_feedback:
            return 1
        return int(rng.integers(1, self.config.max_feedback_loop + 1))

    def _begin(self, tensor: np.ndarray, rng: np.random.Generator,
               has_feedback: bool) -> tuple[np.ndarray, DataflowMap, int, int]:
        # order="C" is load-bearing: np.array's default order="K" preserves
        # the layout of non-contiguous inputs (e.g. a conv weight gradient
        # produced by dw.T.reshape(...)), and a non-contiguous canonical
        # array would make reshape(-1) in _set_positions a silent copy.
        canonical = to_canonical(np.array(tensor, dtype=np.float32, copy=True, order="C"))
        flow = DataflowMap(tensor.shape, self.config)
        cycle = flow.random_cycle(rng)
        n = self._duration(rng, has_feedback)
        return canonical, flow, cycle, n

    def _finish(self, canonical: np.ndarray, original_shape: tuple[int, ...],
                record: FaultRecord) -> tuple[np.ndarray, FaultRecord]:
        return from_canonical(canonical, original_shape), record

    def apply(self, tensor: np.ndarray, rng: np.random.Generator,
              ff: FFDescriptor | None = None) -> tuple[np.ndarray, FaultRecord]:
        raise NotImplementedError


def _set_positions(canonical: np.ndarray, flat_idx: np.ndarray,
                   values: np.ndarray, record: FaultRecord) -> None:
    """Write faulty values into the canonical tensor, filling the record."""
    if not canonical.flags["C_CONTIGUOUS"]:
        raise ValueError("canonical tensor must be C-contiguous for in-place writes")
    flat = canonical.reshape(-1)
    record.positions = flat_idx
    record.original_values = flat[flat_idx].copy()
    record.faulty_values = np.asarray(values, dtype=np.float32)
    flat[flat_idx] = record.faulty_values


class DatapathBitFlip(SoftwareFaultModel):
    """Bit flip in a datapath register: one faulty output element whose
    value is the original with one bit of its FP32 encoding flipped.

    Sec. 4.3.1: flips in the upper two exponent bits are the datapath
    faults most likely to create the huge magnitudes behind unexpected
    outcomes.
    """

    name = "datapath"

    def apply(self, tensor, rng, ff=None):
        bit = ff.bit if (ff is not None and ff.bit is not None) else int(rng.integers(0, 32))
        has_feedback = bool(ff.has_feedback) if ff is not None else False
        canonical, flow, cycle, n = self._begin(tensor, rng, has_feedback)
        lane = int(rng.integers(0, self.config.mac_lanes))
        coords = flow.lane_element_for_cycles(cycle, 1, lane)
        record = FaultRecord(self.name, ff, cycle, n)
        if coords[0].size:
            flat_idx = flow.flat_indices(coords)
            flipped = flip_float32_bit(canonical.reshape(-1)[flat_idx], bit)
            _set_positions(canonical, flat_idx, flipped, record)
        return self._finish(canonical, tensor.shape, record)


class LocalControlFault(SoftwareFaultModel):
    """Bit flip in a local control FF (controls one datapath register):
    the controlled register captures an arbitrary value, so one output
    element per cycle takes a random value spanning the dynamic range,
    for ``n`` consecutive cycles."""

    name = "local_control"

    def apply(self, tensor, rng, ff=None):
        has_feedback = bool(ff.has_feedback) if ff is not None else False
        canonical, flow, cycle, n = self._begin(tensor, rng, has_feedback)
        lane = int(rng.integers(0, self.config.mac_lanes))
        coords = flow.lane_element_for_cycles(cycle, n, lane)
        record = FaultRecord(self.name, ff, cycle, n)
        if coords[0].size:
            flat_idx = flow.flat_indices(coords)
            values = random_float32_pattern(rng, flat_idx.size)
            _set_positions(canonical, flat_idx, values, record)
        return self._finish(canonical, tensor.shape, record)


class Group1RandomOutputs(SoftwareFaultModel):
    """Table 1 group 1: a config FF or output-valid signal flips
    invalid->valid; all Layer_Outputs of each affected cycle take random
    values spanning the entire dynamic range, for ``n`` cycles."""

    name = "group1"

    def apply(self, tensor, rng, ff=None):
        has_feedback = bool(ff.has_feedback) if ff is not None else True
        canonical, flow, cycle, n = self._begin(tensor, rng, has_feedback)
        coords = flow.elements_for_cycles(cycle, n)
        flat_idx = flow.flat_indices(coords)
        record = FaultRecord(self.name, ff, cycle, n)
        values = random_float32_pattern(rng, flat_idx.size)
        _set_positions(canonical, flat_idx, values, record)
        return self._finish(canonical, tensor.shape, record)


class Group2ZeroOutputs(SoftwareFaultModel):
    """Table 1 group 2: output-valid flips valid->invalid; all
    Layer_Outputs of each affected cycle are set to 0, for ``n`` cycles."""

    name = "group2"

    def apply(self, tensor, rng, ff=None):
        has_feedback = bool(ff.has_feedback) if ff is not None else True
        canonical, flow, cycle, n = self._begin(tensor, rng, has_feedback)
        coords = flow.elements_for_cycles(cycle, n)
        flat_idx = flow.flat_indices(coords)
        record = FaultRecord(self.name, ff, cycle, n)
        _set_positions(canonical, flat_idx, np.zeros(flat_idx.size, np.float32), record)
        return self._finish(canonical, tensor.shape, record)


class Group3SingleLaneRandom(SoftwareFaultModel):
    """Table 1 group 3: like group 1 but only one MAC unit is affected —
    one randomly chosen Layer_Output element per cycle takes a random
    value, for ``n`` consecutive cycles."""

    name = "group3"

    def apply(self, tensor, rng, ff=None):
        has_feedback = bool(ff.has_feedback) if ff is not None else True
        canonical, flow, cycle, n = self._begin(tensor, rng, has_feedback)
        lane = int(rng.integers(0, self.config.mac_lanes))
        coords = flow.lane_element_for_cycles(cycle, n, lane)
        record = FaultRecord(self.name, ff, cycle, n)
        if coords[0].size:
            flat_idx = flow.flat_indices(coords)
            values = random_float32_pattern(rng, flat_idx.size)
            _set_positions(canonical, flat_idx, values, record)
        return self._finish(canonical, tensor.shape, record)


class Group4WrongOutputAddress(SoftwareFaultModel):
    """Table 1 group 4: output-address FFs corrupted; all Layer_Outputs of
    the affected cycles are written to incorrect, randomly chosen memory
    locations while maintaining their relative positions.  The intended
    locations are never written (they retain the buffer's prior contents,
    modeled as zeros), and the wrong locations are overwritten."""

    name = "group4"

    def apply(self, tensor, rng, ff=None):
        has_feedback = bool(ff.has_feedback) if ff is not None else True
        canonical, flow, cycle, n = self._begin(tensor, rng, has_feedback)
        coords = flow.elements_for_cycles(cycle, n)
        flat_idx = flow.flat_indices(coords)
        size = canonical.size
        # A 1-element tensor has nowhere else to write: fully masked.
        offset = int(rng.integers(1, size)) if size > 1 else 0
        wrong_idx = (flat_idx + offset) % size
        flat = canonical.reshape(-1)
        moved_values = flat[flat_idx].copy()
        record = FaultRecord(self.name, ff, cycle, n)
        # Record both the zeroed holes and the overwritten destinations.
        all_idx = np.concatenate([flat_idx, wrong_idx])
        record.positions = all_idx
        record.original_values = flat[all_idx].copy()
        flat[flat_idx] = 0.0
        flat[wrong_idx] = moved_values
        record.faulty_values = flat[all_idx].copy()
        return self._finish(canonical, tensor.shape, record)


class _InputFaultBase(SoftwareFaultModel):
    """Shared machinery for input-side faults (groups 5-10).

    A fault on Layer_Input_1 / Layer_Input_2 corrupts the *outputs
    computed from those inputs* — the same cycle geometry as output
    faults.  Input role 1 vs 2 (feature map vs weights, or the two
    gradient operands in the backward pass) changes which FFs are hit but
    not the output geometry, so the models differ only in population
    weight (see :mod:`repro.accelerator.ffs`).
    """

    #: Cycles affected when the faulty read is from DRAM ("n consecutive
    #: cycles") vs on-chip buffers ("one cycle") — Table 1 rows 5-10.
    dram_read_probability = 0.5

    def _input_duration(self, rng: np.random.Generator, has_feedback: bool) -> int:
        if rng.random() < self.dram_read_probability:
            # DRAM read: the faulty transfer spans n consecutive cycles.
            return int(rng.integers(1, self.config.max_feedback_loop + 1))
        return 1  # On-chip buffer read: a single cycle.


class Group5WrongInput1Address(_InputFaultBase):
    """Table 1 groups 5/6: input-address FFs corrupted; the affected
    outputs are computed from a contiguous *wrong* region of the input.
    Modeled by replacing the affected outputs with the outputs of a
    shifted block (values from elsewhere, relative positions kept)."""

    name = "group5"

    def apply(self, tensor, rng, ff=None):
        has_feedback = bool(ff.has_feedback) if ff is not None else True
        canonical, flow, cycle, _ = self._begin(tensor, rng, has_feedback)
        n = self._input_duration(rng, has_feedback)
        coords = flow.elements_for_cycles(cycle, n)
        flat_idx = flow.flat_indices(coords)
        size = canonical.size
        # A 1-element tensor has no wrong region to read: fully masked.
        offset = int(rng.integers(1, size)) if size > 1 else 0
        source_idx = (flat_idx + offset) % size
        flat = canonical.reshape(-1)
        record = FaultRecord(self.name, ff, cycle, n)
        _set_positions(canonical, flat_idx, flat[source_idx].copy(), record)
        return self._finish(canonical, tensor.shape, record)


class Group6WrongInput2Address(Group5WrongInput1Address):
    name = "group6"


class Group7ZeroInput1(_InputFaultBase):
    """Table 1 groups 7/8: an input-valid signal flips invalid->valid and
    the affected reads return zeros; the outputs computed in those cycles
    lose the corresponding partial sums.  Modeled as attenuation by the
    fraction of partial sums lost (``64 * n / fan_in``), clipped to full
    loss when the layer's fan-in is unknown or small."""

    name = "group7"

    def apply(self, tensor, rng, ff=None, fan_in: int | None = None):
        has_feedback = bool(ff.has_feedback) if ff is not None else True
        canonical, flow, cycle, _ = self._begin(tensor, rng, has_feedback)
        n = self._input_duration(rng, has_feedback)
        coords = flow.elements_for_cycles(cycle, n)
        flat_idx = flow.flat_indices(coords)
        lost = self.config.input_channels_per_cycle * n
        if fan_in is not None and fan_in > 0:
            factor = max(0.0, 1.0 - lost / float(fan_in))
        else:
            factor = 0.0
        flat = canonical.reshape(-1)
        record = FaultRecord(self.name, ff, cycle, n)
        _set_positions(canonical, flat_idx, (flat[flat_idx] * factor).astype(np.float32),
                       record)
        return self._finish(canonical, tensor.shape, record)


class Group8ZeroInput2(Group7ZeroInput1):
    name = "group8"


class Group9StaleInput1(_InputFaultBase):
    """Table 1 groups 9/10: an input-valid signal flips valid->invalid and
    the datapath reuses stale register contents — the affected outputs
    are computed from a random prior set of input values.  Modeled by
    gathering the affected outputs' values from random positions of the
    tensor (wrong but in-distribution values)."""

    name = "group9"

    def apply(self, tensor, rng, ff=None):
        has_feedback = bool(ff.has_feedback) if ff is not None else True
        canonical, flow, cycle, _ = self._begin(tensor, rng, has_feedback)
        n = self._input_duration(rng, has_feedback)
        coords = flow.elements_for_cycles(cycle, n)
        flat_idx = flow.flat_indices(coords)
        flat = canonical.reshape(-1)
        source_idx = rng.integers(0, canonical.size, size=flat_idx.size)
        record = FaultRecord(self.name, ff, cycle, n)
        _set_positions(canonical, flat_idx, flat[source_idx].copy(), record)
        return self._finish(canonical, tensor.shape, record)


class Group10StaleInput2(Group9StaleInput1):
    name = "group10"


class PrecisionConfigFault(SoftwareFaultModel):
    """Data-precision misconfiguration (Sec. 4.2.1, immediate INFs/NaNs
    source 2): a fault in a configuration FF makes the MAC array perform
    int16 operations instead of bfloat16, so "the results may overflow
    when they are converted to FP32 to undergo element-wise operations".

    Modeled on the output tensor: the elements produced while the config
    FF is corrupted are re-quantized through a saturating int16 datapath
    with a fixed-point scale, which distorts small values to integers and
    drives pre-scaled large values to the +-32767 rails; the subsequent
    FP32 rescale then amplifies them by the inverse scale.
    """

    name = "precision_config"

    #: Fixed-point scale a bfloat16->int16 misinterpretation implies
    #: (the exponent bits read as magnitude): 2^8.
    SCALE = 256.0

    def apply(self, tensor, rng, ff=None):
        from repro.tensor.dtypes import to_int16_saturating

        has_feedback = bool(ff.has_feedback) if ff is not None else True
        canonical, flow, cycle, n = self._begin(tensor, rng, has_feedback)
        coords = flow.elements_for_cycles(cycle, n)
        flat_idx = flow.flat_indices(coords)
        flat = canonical.reshape(-1)
        with np.errstate(over="ignore", invalid="ignore"):
            requantized = to_int16_saturating(flat[flat_idx] * self.SCALE) * self.SCALE
        record = FaultRecord(self.name, ff, cycle, n)
        _set_positions(canonical, flat_idx, requantized.astype(np.float32), record)
        return self._finish(canonical, tensor.shape, record)


#: Global-control group number -> model class (Table 1).
GLOBAL_GROUP_MODELS: dict[int, type[SoftwareFaultModel]] = {
    1: Group1RandomOutputs,
    2: Group2ZeroOutputs,
    3: Group3SingleLaneRandom,
    4: Group4WrongOutputAddress,
    5: Group5WrongInput1Address,
    6: Group6WrongInput2Address,
    7: Group7ZeroInput1,
    8: Group8ZeroInput2,
    9: Group9StaleInput1,
    10: Group10StaleInput2,
}


def model_for_ff(ff: FFDescriptor, config: AcceleratorConfig = DEFAULT_CONFIG) -> SoftwareFaultModel:
    """Instantiate the software fault model matching a sampled FF."""
    if ff.category == "datapath":
        return DatapathBitFlip(config)
    if ff.category == "local_control":
        return LocalControlFault(config)
    if ff.category == "global_control":
        if ff.group not in GLOBAL_GROUP_MODELS:
            raise ValueError(f"unknown global control group: {ff.group}")
        return GLOBAL_GROUP_MODELS[ff.group](config)
    raise ValueError(f"unknown FF category: {ff.category}")


def all_model_names() -> list[str]:
    """Every fault-model name in the framework (for reports/tests)."""
    return ["datapath", "local_control"] + [f"group{g}" for g in sorted(GLOBAL_GROUP_MODELS)]
