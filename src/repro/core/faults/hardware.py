"""Hardware fault model: single-cycle, single-FF bit flips (Sec. 3.2.1).

Each fault-injection experiment follows the paper's protocol (Sec. 3.3):

1. randomly select an FF and a cycle — here: sample an
   :class:`~repro.accelerator.ffs.FFDescriptor` from the inventory, a
   training iteration, a device, and an *op site* (a layer operation in
   the forward or backward pass);
2-3. use the matching software fault model to compute the faulty output
   elements and their values;
4. continue training and observe the outcome.

This module defines the experiment descriptor (:class:`HardwareFault`)
and op-site enumeration over a model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.ffs import FFDescriptor, FFInventory
from repro.nn import (
    LSTM,
    BatchNorm,
    Conv2D,
    Dense,
    Embedding,
    LayerNorm,
    Module,
    MultiHeadSelfAttention,
)

#: Module types whose operations are injectable op sites.  These are the
#: layers that occupy the accelerator's MAC and element-wise datapaths.
INJECTABLE_TYPES = (Conv2D, Dense, BatchNorm, LayerNorm, Embedding, LSTM,
                    MultiHeadSelfAttention)

#: Op-site kinds: the forward output and the two backward-pass products
#: (Table 1's Layer_Output roles across the two passes).
FORWARD = "forward"
WEIGHT_GRAD = "weight_grad"
INPUT_GRAD = "input_grad"
SITE_KINDS = (FORWARD, WEIGHT_GRAD, INPUT_GRAD)


@dataclass(frozen=True)
class OpSite:
    """One injectable operation: a module (by qualified name) and a kind."""

    module_name: str
    kind: str

    @property
    def in_backward_pass(self) -> bool:
        """True for weight-gradient and input-gradient op sites."""
        return self.kind != FORWARD


@dataclass
class HardwareFault:
    """A fully specified fault-injection experiment."""

    ff: FFDescriptor
    site: OpSite
    iteration: int
    device: int
    seed: int

    def describe(self) -> dict:
        """Flat summary of the experiment (for logs and reports)."""
        return {
            "ff_category": self.ff.category,
            "ff_group": self.ff.group,
            "ff_bit": self.ff.bit,
            "site": f"{self.site.module_name}:{self.site.kind}",
            "iteration": self.iteration,
            "device": self.device,
            "seed": self.seed,
        }


def enumerate_sites(model: Module, kinds: tuple[str, ...] = SITE_KINDS) -> list[OpSite]:
    """All injectable op sites of a model.

    ``weight_grad`` sites are only listed for modules with parameters;
    ``input_grad`` is skipped for Embedding (tokens have no gradient).
    """
    sites: list[OpSite] = []
    for name, module in model.named_modules():
        if not isinstance(module, INJECTABLE_TYPES):
            continue
        for kind in kinds:
            if kind == WEIGHT_GRAD and not any(True for _ in module._params):
                continue
            if kind == INPUT_GRAD and isinstance(module, Embedding):
                continue
            sites.append(OpSite(name, kind))
    if not sites:
        raise ValueError("model has no injectable op sites")
    return sites


def sample_fault(
    model: Module,
    rng: np.random.Generator,
    max_iteration: int,
    num_devices: int,
    inventory: FFInventory | None = None,
    kinds: tuple[str, ...] = SITE_KINDS,
) -> HardwareFault:
    """Draw one random experiment per the paper's step (1)."""
    inventory = inventory or FFInventory()
    sites = enumerate_sites(model, kinds)
    site = sites[int(rng.integers(0, len(sites)))]
    return HardwareFault(
        ff=inventory.sample(rng),
        site=site,
        iteration=int(rng.integers(0, max_iteration)),
        device=int(rng.integers(0, num_devices)),
        seed=int(rng.integers(0, 2**31 - 1)),
    )
