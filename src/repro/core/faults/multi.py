"""Multiple-fault experiments (Sec. 4.3.2 of the paper).

The paper argues its necessary conditions extend to multiple hardware
failures: at the reported datacenter failure rates, failures during one
training run "are expected to occur far enough apart such that their
effects are largely independent".  This module provides the machinery to
test that claim directly: a :class:`MultiFaultInjector` arms several
independent one-shot faults, and :func:`expected_faults_per_run` computes
how many failures a training run of a given length would see under a
given per-device failure rate.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import DEFAULT_CONFIG, AcceleratorConfig
from repro.core.faults.hardware import HardwareFault
from repro.core.faults.injector import FaultInjector


class MultiFaultInjector:
    """Injects several independent transient faults during one run.

    Each fault gets its own one-shot :class:`FaultInjector`; they may
    target different iterations, devices, and op sites.  Faults at the
    same iteration are legal (the paper's worst case of coinciding
    failures).
    """

    def __init__(self, faults: list[HardwareFault],
                 config: AcceleratorConfig = DEFAULT_CONFIG):
        if not faults:
            raise ValueError("need at least one fault")
        self.injectors = [FaultInjector(fault, config) for fault in faults]

    @property
    def records(self):
        """Fault records of the injectors that fired, in fault order."""
        return [inj.record for inj in self.injectors if inj.record is not None]

    @property
    def fired_count(self) -> int:
        """Number of faults that have fired so far."""
        return sum(inj.fired for inj in self.injectors)

    # Trainer hook interface: fan out to every injector.
    def before_iteration(self, trainer, iteration: int) -> None:
        """Trainer hook: fan out to every per-fault injector."""
        for injector in self.injectors:
            injector.before_iteration(trainer, iteration)

    def after_iteration(self, trainer, iteration: int, loss: float, acc: float) -> None:
        """Trainer hook: fan out the disarm step."""
        for injector in self.injectors:
            injector.after_iteration(trainer, iteration, loss, acc)


def expected_faults_per_run(
    iterations: int,
    seconds_per_iteration: float,
    num_devices: int,
    failures_per_device_hour: float = 1e-4,
) -> float:
    """Expected hardware failures during one training run.

    The paper's framing: at reported rates ("a few cores per several
    thousand server machines"), mid-sized DNN training runs see at most
    one failure; only very long runs on many devices see several — and
    those are far apart.
    """
    if min(iterations, num_devices) <= 0 or seconds_per_iteration <= 0:
        raise ValueError("iterations, devices, and iteration time must be positive")
    hours = iterations * seconds_per_iteration / 3600.0
    return hours * num_devices * failures_per_device_hour


def sample_spread_faults(
    base_fault_sampler,
    rng: np.random.Generator,
    count: int,
    total_iterations: int,
    min_separation: int | None = None,
) -> list[HardwareFault]:
    """Sample ``count`` faults with iteration spacing.

    ``base_fault_sampler(rng) -> HardwareFault`` provides the FF/site
    draws; this helper re-draws the iterations so consecutive faults are
    at least ``min_separation`` apart (default: total/count/2 — "far
    enough apart such that their effects are largely independent").
    """
    if count <= 0:
        raise ValueError("count must be positive")
    separation = (total_iterations // (2 * count)) if min_separation is None else min_separation
    faults = []
    iteration = int(rng.integers(0, max(total_iterations // count, 1)))
    for _ in range(count):
        fault = base_fault_sampler(rng)
        fault.iteration = min(iteration, total_iterations - 1)
        faults.append(fault)
        iteration += separation + int(rng.integers(0, max(separation, 1)))
    return faults
