"""Hardware-failure detection by bound checking (Sec. 5.1).

Every iteration, the detector compares

* the optimizer's first-moment history values against Algorithm 1's
  gradient-history bound,
* its second-moment values against the squared bound, and
* every device's BatchNorm moving statistics against the mvar bound,

and raises a detection event if any is out of bounds.  Because the
necessary conditions occur within two training iterations of a hardware
failure (Table 4), the error-detection latency is bounded by two
iterations — the property that makes two-iteration re-execution a
sufficient recovery.

The check is ultra-light-weight: a handful of ``max |.|`` reductions per
iteration (the paper measured 0.003%-0.025% overhead; the corresponding
bench here is ``benchmarks/bench_sec5_overheads.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mitigation.bounds import DetectionBounds, derive_bounds_for_trainer
from repro.nn.normalization import batchnorm_layers
from repro.observe import DETECTOR_FIRED, counter
from repro.optim.base import max_abs


@dataclass
class DetectionEvent:
    """One bound violation."""

    iteration: int
    condition: str  # "first_moment", "second_moment", or "mvar"
    magnitude: float
    bound: float

    def describe(self) -> str:
        return (
            f"iteration {self.iteration}: {self.condition} magnitude "
            f"{self.magnitude:.3e} exceeds bound {self.bound:.3e}"
        )


class HardwareFailureDetector:
    """Trainer hook implementing the Sec. 5.1 detection technique."""

    def __init__(self, bounds: DetectionBounds | None = None):
        """``bounds=None`` derives them from the trainer on first use
        (Algorithm 1 needs one forward pass to read layer shapes)."""
        self.bounds = bounds
        self.events: list[DetectionEvent] = []
        #: Total number of bound checks performed (overhead accounting).
        self.checks = 0
        self._fired_this_iteration = False
        # Hot-path caches keyed by trainer identity: the BatchNorm layer
        # lists never change during a run, and re-walking the module tree
        # every iteration would dominate the check's cost.
        self._bn_cache: dict[int, list] = {}

    def _bn_layers(self, trainer) -> list:
        key = id(trainer)
        if key not in self._bn_cache:
            layers = []
            for replica in trainer.replicas:
                layers.extend(batchnorm_layers(replica))
            self._bn_cache[key] = layers
        return self._bn_cache[key]

    @staticmethod
    def _violates(value: float, bound: float) -> bool:
        """NaN-safe bound check: NaN fails ``value <= bound`` and counts
        as a violation (a NaN history value is maximally anomalous)."""
        return not (value <= bound)

    # ------------------------------------------------------------------
    # The per-iteration check
    # ------------------------------------------------------------------
    def check(self, trainer, iteration: int) -> DetectionEvent | None:
        """Run all bound checks once; returns the first violation if any."""
        if self.bounds is None:
            self.bounds = derive_bounds_for_trainer(trainer)
            # The calibration forward pass (Algorithm 1 reads layer
            # shapes) ran train-mode on the parent's master replica and
            # advanced its BatchNorm moving statistics; resynchronize
            # backends whose replicas live in other processes so every
            # backend sees the identical post-calibration state.
            backend = getattr(trainer, "backend", None)
            if backend is not None:
                backend.on_state_restored()
        self.checks += 1
        optimizer = trainer.optimizer
        history_bound = self.bounds.effective_history_bound
        for arr in optimizer.first_moment_arrays():
            value = float(np.abs(arr).max()) if arr.size else 0.0
            if self._violates(value, history_bound):
                return DetectionEvent(iteration, "first_moment",
                                      max_abs([arr]), history_bound)
        second_bound = self.bounds.effective_second_moment_bound
        for arr in optimizer.second_moment_arrays():
            # abs() also flags corrupted *negative* second moments, which
            # are as anomalous as huge ones (v is a sum of squares).
            value = float(np.abs(arr).max()) if arr.size else 0.0
            if self._violates(value, second_bound):
                return DetectionEvent(iteration, "second_moment",
                                      max_abs([arr]), second_bound)
        if trainer.spec.has_batchnorm and self.bounds.mvar_bound > 0.0:
            mvar_bound = self.bounds.effective_mvar_bound
            for layer in self._bn_layers(trainer):
                var = float(np.abs(layer.moving_var).max())
                mean = float(np.abs(layer.moving_mean).max())
                if self._violates(var, mvar_bound) or self._violates(mean, mvar_bound):
                    return DetectionEvent(iteration, "mvar",
                                          layer.history_magnitude(), mvar_bound)
        return None

    # ------------------------------------------------------------------
    # Trainer hook interface
    # ------------------------------------------------------------------
    def after_step(self, trainer, iteration: int) -> None:
        self._fired_this_iteration = False
        event = self.check(trainer, iteration)
        if event is not None:
            self.events.append(event)
            trainer.record.detections.append(iteration)
            self._fired_this_iteration = True
            counter("detector.detections").inc()
            tracer = getattr(trainer, "tracer", None)
            if tracer is not None:
                tracer.emit(
                    DETECTOR_FIRED, iteration=iteration,
                    condition=event.condition, magnitude=event.magnitude,
                    bound=event.bound)

    @property
    def fired(self) -> bool:
        """True once any detection event has been recorded."""
        return bool(self.events)

    def fired_at(self) -> int | None:
        """Iteration of the first detection event, if any."""
        return self.events[0].iteration if self.events else None

    def detection_latency(self, fault_iteration: int) -> int | None:
        """Iterations between the fault and the first detection."""
        at = self.fired_at()
        return None if at is None else at - int(fault_iteration)
