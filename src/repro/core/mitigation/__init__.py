"""Mitigation: Algorithm 1 bounds, detection, recovery, baselines."""

from repro.core.mitigation.bounds import (
    SIGMA_MULTIPLIER,
    DetectionBounds,
    derive_bounds_for_trainer,
    derive_history_bound,
    derive_mvar_bound,
)
from repro.core.mitigation.detector import DetectionEvent, HardwareFailureDetector
from repro.core.mitigation.recovery import (
    REEXECUTE_ITERATIONS,
    MitigationHook,
    RecoveryError,
    RecoveryManager,
)

__all__ = [
    "REEXECUTE_ITERATIONS",
    "SIGMA_MULTIPLIER",
    "DetectionBounds",
    "DetectionEvent",
    "HardwareFailureDetector",
    "MitigationHook",
    "RecoveryError",
    "RecoveryManager",
    "derive_bounds_for_trainer",
    "derive_history_bound",
    "derive_mvar_bound",
]
