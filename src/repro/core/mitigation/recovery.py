"""Light-weight recovery by two-iteration re-execution (Sec. 5.2).

When the detector fires (at most two iterations after the hardware
failure, per the necessary conditions), the recovery manager rewinds the
trainer to the state it had two iterations earlier and lets training
re-execute those iterations.  Because the fault was transient, the
re-execution is clean; because the data loader and all random draws are
addressed by iteration index, the replayed iterations see exactly the
same mini-batches and random masks (requirements (2) and (3) of
Sec. 5.2).

Two interchangeable rewind strategies, both exercised by tests/benches:

* ``"snapshot"`` (default) — keep a rolling ring of the last few
  pre-iteration state snapshots; rewind restores one.  Bit-exact.
* ``"arithmetic"`` — the paper's formulation: store the applied updates
  and gradients of the last two iterations and *invert* the optimizer
  recurrences (``w_{t-1} = w_t + u_t``; for Adam,
  ``m_{t-1} = (m_t - (1-b1) g_t)/b1`` etc.).  Cheaper in bookkeeping,
  exact up to float rounding.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.observe import ROLLBACK, counter
from repro.optim.adam import Adam, RMSProp
from repro.optim.sgd import SGD
from repro.training.checkpoints import Checkpoint

#: Number of most-recent iterations re-executed on detection (Sec. 5.2).
REEXECUTE_ITERATIONS = 2


class RecoveryError(RuntimeError):
    """Raised when a rewind cannot be performed (e.g. no history yet)."""


class RecoveryManager:
    """Trainer hook maintaining rewind state and performing recovery."""

    def __init__(self, strategy: str = "snapshot", depth: int = REEXECUTE_ITERATIONS,
                 max_recoveries: int = 8):
        if strategy not in ("snapshot", "arithmetic"):
            raise ValueError(f"unknown recovery strategy: {strategy!r}")
        self.strategy = strategy
        self.depth = int(depth)
        self.max_recoveries = int(max_recoveries)
        self.recoveries = 0
        # snapshot strategy: iteration -> pre-iteration Checkpoint.
        self._snapshots: deque[Checkpoint] = deque(maxlen=self.depth + 1)
        # arithmetic strategy: per-iteration inversion records.
        self._steps: deque[dict] = deque(maxlen=self.depth + 1)
        self._capture_hooked = False

    # ------------------------------------------------------------------
    # State capture (hook: before every iteration)
    # ------------------------------------------------------------------
    def before_iteration(self, trainer, iteration: int) -> None:
        if self.strategy == "snapshot":
            self._snapshots.append(Checkpoint.capture(trainer))
        else:
            self._arm_arithmetic_capture(trainer, iteration)

    def _arm_arithmetic_capture(self, trainer, iteration: int) -> None:
        """Record gradients, applied updates, and the small history state
        (BatchNorm moving stats) needed to invert this iteration."""
        entry: dict = {
            "iteration": iteration,
            "grads": None,
            "updates": [],
            "bn_states": [
                {name: module.extra_state()
                 for name, module in replica.named_modules()
                 if module.extra_state()}
                for replica in trainer.replicas
            ],
        }
        self._steps.append(entry)
        previous_hook = trainer.optimizer._update_hook

        def capture_hook(update: np.ndarray, info: dict) -> np.ndarray:
            if previous_hook is not None:
                update = previous_hook(update, info)
            entry["updates"].append(np.array(update, copy=True))
            if entry["grads"] is None:
                entry["grads"] = []
            return update

        trainer.optimizer.set_update_hook(capture_hook)
        self._pending_entry = entry
        self._previous_hook = previous_hook

    def after_step(self, trainer, iteration: int) -> None:
        if self.strategy == "arithmetic" and self._steps:
            entry = self._steps[-1]
            if entry["iteration"] == iteration and entry["grads"] is not None:
                entry["grads"] = [np.array(p.grad, copy=True)
                                  for p in trainer.optimizer.params]
                trainer.optimizer.set_update_hook(self._previous_hook)

    # ------------------------------------------------------------------
    # Rewind
    # ------------------------------------------------------------------
    def rewind(self, trainer, iterations: int = REEXECUTE_ITERATIONS,
               detected_at: int | None = None) -> int:
        """Rewind so the ``iterations`` most recent iterations re-execute.

        ``detected_at`` is the iteration at which detection fired (the
        iteration currently completing); training resumes from
        ``detected_at + 1 - iterations``.  If the manager was attached too
        recently to hold state that far back, it rewinds as far as it can
        (the oldest captured state), which still precedes the fault when
        detection latency is within the capture depth.
        """
        if self.recoveries >= self.max_recoveries:
            raise RecoveryError(
                f"recovery limit reached ({self.max_recoveries}); the failure "
                "appears persistent — decommission the accelerator"
            )
        at = trainer.iteration if detected_at is None else int(detected_at)
        ideal = max(at + 1 - iterations, 0)
        if self.strategy == "snapshot":
            target = self._rewind_snapshot(trainer, ideal)
        else:
            target = self._rewind_arithmetic(trainer, ideal)
        trainer.record.truncate_to(target)
        trainer.record.recoveries.append(target)
        self.recoveries += 1
        return target

    def _rewind_snapshot(self, trainer, ideal: int) -> int:
        if not self._snapshots:
            raise RecoveryError("no snapshots captured yet; cannot rewind")
        at_or_before = [s for s in self._snapshots if s.iteration <= ideal]
        snapshot = max(at_or_before, key=lambda s: s.iteration) if at_or_before else min(
            self._snapshots, key=lambda s: s.iteration
        )
        snapshot.restore(trainer)
        while self._snapshots and self._snapshots[-1].iteration > snapshot.iteration:
            self._snapshots.pop()
        return snapshot.iteration

    def _rewind_arithmetic(self, trainer, ideal: int) -> int:
        if not self._steps:
            raise RecoveryError("no step history captured yet; cannot rewind")
        oldest = min(s["iteration"] for s in self._steps)
        target = max(ideal, oldest)
        steps = [s for s in self._steps if s["iteration"] >= target]
        optimizer = trainer.optimizer
        for entry in sorted(steps, key=lambda s: -s["iteration"]):
            self._invert_step(optimizer, entry)
            # Restore the small module state (BatchNorm moving statistics)
            # captured before the iteration ran.
            for replica, states in zip(trainer.replicas, entry["bn_states"]):
                modules = dict(replica.named_modules())
                for name, state in states.items():
                    modules[name].load_extra_state(
                        {k: np.array(v, copy=True) for k, v in state.items()}
                    )
            self._steps.remove(entry)
        # Float32 overflow is not invertible: if the corrupted state
        # saturated to inf (e.g. Adam's v after squaring a huge faulty
        # gradient), the pre-fault value is destroyed and (inf - x)/beta
        # yields inf/NaN.  Surface this instead of resuming from garbage —
        # the snapshot strategy handles these cases.
        for param in optimizer.params:
            if not np.all(np.isfinite(param.data)):
                raise RecoveryError(
                    "arithmetic rewind produced non-finite weights: the "
                    "corrupted state overflowed and is not invertible; use "
                    "the snapshot recovery strategy"
                )
        for slots in optimizer._slot_arrays().values():
            for arr in slots:
                if not np.all(np.isfinite(arr)):
                    raise RecoveryError(
                        "arithmetic rewind produced non-finite optimizer "
                        "state: the corrupted state overflowed and is not "
                        "invertible; use the snapshot recovery strategy"
                    )
        trainer.iteration = target
        trainer.backend.broadcast()
        return target

    @staticmethod
    def _invert_step(optimizer, entry: dict) -> None:
        """Undo one optimizer step from its recorded updates/gradients.

        All writes are in place so arena-bound parameters and slot views
        (see :mod:`repro.state`) stay bound to their fused buffers."""
        updates, grads = entry["updates"], entry["grads"]
        if updates is None or grads is None or len(updates) != len(optimizer.params):
            raise RecoveryError("incomplete step record; cannot invert")
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            for i, param in enumerate(optimizer.params):
                np.add(param.data, updates[i], out=param.data, casting="unsafe")
            if isinstance(optimizer, Adam):
                b1, b2 = optimizer.beta1, optimizer.beta2
                for i, g in enumerate(grads):
                    m = optimizer.m[i]
                    np.subtract(m, (1 - b1) * g, out=m)
                    np.divide(m, b1, out=m)
                    # Catastrophic cancellation can push the inverted second
                    # moment slightly negative (v is a sum of squares, so
                    # its true value is non-negative); clamp to the
                    # physical domain or the next sqrt(v) would be NaN.
                    v = optimizer.v[i]
                    np.subtract(v, (1 - b2) * g * g, out=v)
                    np.divide(v, b2, out=v)
                    np.maximum(v, 0.0, out=v)
            elif isinstance(optimizer, SGD) and optimizer.momentum > 0:
                mu = optimizer.momentum
                for i, g in enumerate(grads):
                    vel = optimizer.velocity[i]
                    np.subtract(vel, g, out=vel, casting="unsafe")
                    np.divide(vel, mu, out=vel)
            elif isinstance(optimizer, RMSProp):
                rho = optimizer.rho
                for i, g in enumerate(grads):
                    sq = optimizer.sq[i]
                    np.subtract(sq, (1 - rho) * g * g, out=sq)
                    np.divide(sq, rho, out=sq)
                    np.maximum(sq, 0.0, out=sq)
        optimizer.iteration -= 1


class MitigationHook:
    """Detector + recovery wired together: the deployable technique.

    On a detection event, rewinds two iterations and lets the training
    loop re-execute them.  The transient fault does not recur, the
    re-executed iterations are clean, and training continues — total cost
    is two re-executed iterations plus the per-iteration bound checks.
    """

    def __init__(self, detector, recovery: RecoveryManager | None = None):
        self.detector = detector
        self.recovery = recovery or RecoveryManager()

    def before_iteration(self, trainer, iteration: int) -> None:
        self.recovery.before_iteration(trainer, iteration)

    def after_step(self, trainer, iteration: int) -> None:
        self.recovery.after_step(trainer, iteration)
        self.detector.after_step(trainer, iteration)

    def after_iteration(self, trainer, iteration: int, loss: float, acc: float) -> None:
        """Trainer hook: on detection, rewind and resume cleanly."""
        if not self.detector._fired_this_iteration:
            return
        resume = self.recovery.rewind(trainer, detected_at=iteration)
        counter("recovery.rollbacks").inc()
        tracer = getattr(trainer, "tracer", None)
        if tracer is not None:
            tracer.emit(ROLLBACK, iteration=iteration,
                        resume_iteration=resume,
                        strategy=self.recovery.strategy,
                        recoveries=self.recovery.recoveries)
        # The training loop increments ``iteration`` after this hook; land
        # exactly on the resume point and tell the loop the non-finite
        # loss of the rolled-back iteration no longer applies.
        trainer.iteration = resume - 1
        trainer.signal_recovered()
