"""Algorithm 1: mathematically derived detection bounds.

Part I — gradient-history bound.  Under the paper's assumed DNN
properties (He-initialized layers, normalized inputs,
softmax-cross-entropy, Gaussian weight gradients), the input gradient of
every layer is bounded by ``1/m`` elementwise (``m`` = mini-batch size),
so ``Var[dL/dw] <= n_l / m^2`` where ``n_l`` is the number of partial
sums accumulated into one weight-gradient value.  Adam's first-moment
history ``m_t`` is a convex combination of gradients, hence
``m_t ~ N(0, n_l/m^2)`` and

    P(|m_t| > 20 * sqrt(n_l) / m)  <  3e-89.

The second moment ``v_t`` averages *squared* gradients, so its bound is
the square of the first-moment bound.

Part II — moving-variance bound.  With ``Var[w^l] <= 1/N_l + eta^2 k^2``
(``k = sqrt(1-beta2^t)/(1-beta1^t)``), layer output variance satisfies
``Var[y^l] <= (1 + N_l eta^2 k^2)^l``, and since mvar is a convex
combination of per-iteration input variances, the same bound applies to
``mvar`` at depth ``l``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.conv import Conv2D
from repro.nn.linear import Dense
from repro.nn.module import Module
from repro.nn.normalization import BatchNorm

#: The 20-sigma multiplier of Algorithm 1 (P(|N(0,1)| > 20) < 3e-89).
SIGMA_MULTIPLIER = 20.0


@dataclass(frozen=True)
class DetectionBounds:
    """The two bounds the detector checks every iteration.

    ``history_bound`` applies to first-moment history values (Adam ``m``,
    SGD velocity); its square applies to second-moment values (Adam ``v``,
    RMSProp ``sq``).  ``mvar_bound`` applies to BatchNorm moving
    statistics.  ``slack`` multiplies both at check time, absorbing the
    deviation of real workloads from the idealized Properties 1-4 — the
    faulty magnitudes of Table 4 (1e8-1e38) dwarf any reasonable slack.
    """

    history_bound: float
    mvar_bound: float
    slack: float = 100.0

    @property
    def effective_history_bound(self) -> float:
        return self.history_bound * self.slack

    @property
    def effective_second_moment_bound(self) -> float:
        return (self.history_bound * self.slack) ** 2

    @property
    def effective_mvar_bound(self) -> float:
        return self.mvar_bound * self.slack


def _gradient_partial_sums(module: Module, example_input_rows: int) -> int | None:
    """``n_l``: partial sums per weight-gradient value for one layer.

    For a Dense layer, ``dW = x^T @ dy`` accumulates one term per row of
    ``x`` (batch x positions).  For Conv2D, one term per im2col row
    (batch x output spatial positions).  Uses the shapes cached by the
    layer's most recent forward pass.
    """
    if isinstance(module, Dense):
        x = module._x
        if x is None:
            return None
        return int(np.prod(x.shape[:-1]))
    if isinstance(module, Conv2D):
        if module._col is None:
            return None
        return int(module._col.shape[0])
    return None


def derive_history_bound(model: Module, example_input: np.ndarray, batch_size: int) -> float:
    """Part I of Algorithm 1: ``20 * sqrt(max_l n_l) / m``.

    Runs one forward pass with ``example_input`` so every layer caches its
    shapes, then takes the worst (largest) ``n_l`` over all MAC layers.
    """
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive: {batch_size}")
    model.train()
    with np.errstate(over="ignore", invalid="ignore"):
        model.forward(example_input)
    worst = 1
    for module in model.modules():
        n_l = _gradient_partial_sums(module, example_input.shape[0])
        if n_l is not None:
            worst = max(worst, n_l)
    return SIGMA_MULTIPLIER * float(np.sqrt(worst)) / float(batch_size)


def derive_mvar_bound(
    model: Module,
    lr: float,
    beta1: float = 0.9,
    beta2: float = 0.999,
    iteration: int = 1000,
) -> float:
    """Part II of Algorithm 1: ``(1 + N_l * eta^2 * k^2)^l`` at the
    deepest BatchNorm layer.

    ``N_l`` is each preceding MAC layer's fan-in (partial sums per output
    neuron); ``l`` counts MAC layers from the input.  Returns 0.0 for
    models without BatchNorm (the mvar condition is then impossible and
    the detector skips the check).
    """
    t = max(int(iteration), 1)
    k = float(np.sqrt(1.0 - beta2**t) / (1.0 - beta1**t))
    depth = 0
    bound = 1.0
    deepest_bn_bound = 0.0
    for module in model.modules():
        if isinstance(module, (Dense, Conv2D)):
            depth += 1
            n_l = module.fan_in
            bound *= 1.0 + n_l * (lr**2) * (k**2)
        elif isinstance(module, BatchNorm):
            deepest_bn_bound = bound
    return deepest_bn_bound


def derive_bounds_for_trainer(trainer, slack: float = 100.0) -> DetectionBounds:
    """Convenience: derive both bounds from a live trainer's workload."""
    spec = trainer.spec
    shard = max(spec.batch_size // trainer.num_devices, 1)
    example = spec.train_data.inputs[:shard]
    history = derive_history_bound(trainer.master, example, spec.batch_size)
    optimizer = trainer.optimizer
    beta1 = getattr(optimizer, "beta1", 0.9)
    beta2 = getattr(optimizer, "beta2", 0.999)
    mvar = derive_mvar_bound(
        trainer.master, lr=optimizer.lr, beta1=beta1, beta2=beta2,
        iteration=max(spec.iterations, 1),
    )
    return DetectionBounds(history_bound=history, mvar_bound=mvar, slack=slack)
