"""Per-epoch checkpointing recovery baseline (Sec. 5.3).

The standard datacenter procedure: on a detected problem, revert to the
last checkpoint and re-execute from there.  With one checkpoint per epoch
(~1,000 iterations in the paper's comparison), a failure detected late in
an epoch costs ~an epoch of recomputation, versus two iterations for the
paper's technique — the source of the "up to 500x" cost ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.training.checkpoints import CheckpointStore


@dataclass
class CheckpointRecoveryCost:
    """Cost accounting for one checkpoint-based recovery."""

    detected_at: int
    checkpoint_iteration: int
    #: Iterations that must be re-executed to return to the detection point.
    reexecuted_iterations: int

    def cost_ratio_vs_reexecution(self, reexecute: int = 2) -> float:
        """How many times costlier than ``reexecute``-iteration replay."""
        return self.reexecuted_iterations / max(reexecute, 1)


class CheckpointRecovery:
    """Trainer hook: captures per-epoch checkpoints; recovery rewinds to
    the most recent one."""

    def __init__(self, iterations_per_epoch: int, keep: int = 4):
        self.store = CheckpointStore(every=iterations_per_epoch, keep=keep)
        self.recoveries: list[CheckpointRecoveryCost] = []

    def before_iteration(self, trainer, iteration: int) -> None:
        """Trainer hook: capture a checkpoint on epoch boundaries."""
        self.store.maybe_capture(trainer)

    def recover(self, trainer) -> CheckpointRecoveryCost:
        """Rewind to the latest checkpoint before the current iteration."""
        detected_at = trainer.iteration
        ckpt = self.store.latest_before(detected_at)
        if ckpt is None:
            raise RuntimeError("no checkpoint available to recover from")
        ckpt.restore(trainer)
        trainer.record.truncate_to(ckpt.iteration)
        trainer.record.recoveries.append(ckpt.iteration)
        cost = CheckpointRecoveryCost(
            detected_at=detected_at,
            checkpoint_iteration=ckpt.iteration,
            reexecuted_iterations=detected_at - ckpt.iteration,
        )
        self.recoveries.append(cost)
        return cost
