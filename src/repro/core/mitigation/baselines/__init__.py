"""Baseline mitigation techniques compared against in Sec. 5.3 / Sec. 6."""

from repro.core.mitigation.baselines.abft import ABFTChecker, ABFTViolation
from repro.core.mitigation.baselines.checkpointing import (
    CheckpointRecovery,
    CheckpointRecoveryCost,
)
from repro.core.mitigation.baselines.clipping import GradientClipper
from repro.core.mitigation.baselines.ranger import RangerGuard, RangeViolation

__all__ = [
    "ABFTChecker",
    "ABFTViolation",
    "CheckpointRecovery",
    "CheckpointRecoveryCost",
    "GradientClipper",
    "RangeViolation",
    "RangerGuard",
]
