"""Algorithm-based fault tolerance (ABFT) baseline (Sec. 6).

The paper extends the checksum-based ABFT of Zhao et al. [94] from
inference to training and reports 463-485 changed lines and 5-7%
performance cost on TPUs.  This module implements the same idea for the
mini framework: for every Dense/Conv2D layer, the *produced* forward
output (cached post-fault-hook, exactly what the accelerator wrote) is
verified against a checksum identity computed from the layer's operands:

    for y = x @ W + b:   sum_j y[r, j]  ==  x[r, :] . (W @ 1) + sum(b)

— one extra matrix-vector product and one reduction per layer per
iteration, a few percent of the matmul cost.

What ABFT *cannot* see: faults that corrupt optimizer history values or
BatchNorm moving statistics without corrupting a checked matmul output —
one reason the paper's bound-checking technique reaches higher
latent-outcome coverage at a fraction of the cost.  The weight-gradient
check here verifies finiteness only (the gradient operand is not cached),
mirroring the partial coverage the paper describes for training ABFT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.conv import Conv2D
from repro.nn.linear import Dense


@dataclass
class ABFTViolation:
    iteration: int
    layer: str
    relative_error: float


class ABFTChecker:
    """Trainer hook verifying per-layer forward checksums each iteration."""

    def __init__(self, tolerance: float = 1e-2, check_weight_grads: bool = True):
        self.tolerance = float(tolerance)
        self.check_weight_grads = bool(check_weight_grads)
        self.violations: list[ABFTViolation] = []
        self.checks = 0

    # ------------------------------------------------------------------
    # Checksum verifications
    # ------------------------------------------------------------------
    @staticmethod
    def _relative_error(row_sum: np.ndarray, checksum: np.ndarray) -> float:
        with np.errstate(over="ignore", invalid="ignore"):
            diff = np.abs(row_sum - checksum)
            scale = np.abs(checksum).max() + np.abs(row_sum).max() + 1.0
            if not (np.all(np.isfinite(row_sum)) and np.all(np.isfinite(checksum))):
                # inf - inf produces NaN; any non-finite side is a violation
                # unless both sides are identically non-finite.
                if np.array_equal(np.isfinite(row_sum), np.isfinite(checksum)) and np.all(
                    diff[np.isfinite(diff)] == 0.0
                ):
                    return 0.0
                return float("inf")
            return float(diff.max() / scale)

    def _verify_dense(self, module: Dense) -> float | None:
        if module._x is None or module._out is None:
            return None
        with np.errstate(over="ignore", invalid="ignore"):
            row_sum = module._out.sum(axis=-1)
            checksum = module._x @ module.weight.data.sum(axis=1)
            if module.use_bias:
                checksum = checksum + module.bias.data.sum()
        return self._relative_error(row_sum, checksum)

    def _verify_conv(self, module: Conv2D) -> float | None:
        if module._col is None or module._out is None:
            return None
        with np.errstate(over="ignore", invalid="ignore"):
            # Output rows in im2col order: (N*OH*OW, Cout).
            n, c, oh, ow = module._out.shape
            rows = module._out.transpose(0, 2, 3, 1).reshape(-1, c)
            row_sum = rows.sum(axis=-1)
            w_row = module.weight.data.reshape(module.out_channels, -1)
            checksum = module._col @ w_row.sum(axis=0)
            if module.use_bias:
                checksum = checksum + module.bias.data.sum()
        return self._relative_error(row_sum, checksum)

    def _verify_weight_grad(self, module) -> float | None:
        grad = module.weight.grad
        with np.errstate(over="ignore", invalid="ignore"):
            total = float(np.abs(grad).sum())
        return 0.0 if np.isfinite(total) else float("inf")

    # ------------------------------------------------------------------
    # Hook interface.  Checks run after the backward pass but BEFORE the
    # optimizer step: the checksum identity relates each layer's cached
    # operands to the weights used in that forward pass, and the step
    # would move the weights out from under it.
    # ------------------------------------------------------------------
    def after_backward(self, trainer, iteration: int) -> None:
        for replica in trainer.replicas:
            for name, module in replica.named_modules():
                if isinstance(module, Dense):
                    err = self._verify_dense(module)
                elif isinstance(module, Conv2D):
                    err = self._verify_conv(module)
                else:
                    continue
                self.checks += 1
                if err is not None and (not np.isfinite(err) or err > self.tolerance):
                    self.violations.append(ABFTViolation(iteration, name, err))
                if self.check_weight_grads:
                    gerr = self._verify_weight_grad(module)
                    self.checks += 1
                    if gerr is not None and not np.isfinite(gerr):
                        self.violations.append(
                            ABFTViolation(iteration, f"{name}.weight_grad", gerr)
                        )

    @property
    def fired(self) -> bool:
        """True once any checksum violation has been recorded."""
        return bool(self.violations)

    def fired_at(self) -> int | None:
        """Iteration of the first violation, if any."""
        return self.violations[0].iteration if self.violations else None
