"""Gradient clipping baseline (Sec. 6).

Gradient clipping bounds gradient magnitudes before the optimizer step.
The paper's point: clipping "cannot be used to mitigate all unexpected
training outcomes caused by hardware failures, because hardware failures
can perturb gradient history / mvar values without affecting gradient
values" — e.g. a fault injected directly into a weight-gradient tensor is
clipped, but a fault that lands in the forward pass and inflates mvar, or
one that strikes the optimizer's update operation, is untouched.
"""

from __future__ import annotations

import numpy as np


class GradientClipper:
    """Trainer hook clipping the global gradient norm before the step.

    Also counts how often clipping engaged, so benches can report both
    the protective effect and the interference with normal training.
    """

    def __init__(self, max_norm: float = 5.0):
        if max_norm <= 0:
            raise ValueError(f"max_norm must be positive: {max_norm}")
        self.max_norm = float(max_norm)
        self.clip_events: list[int] = []

    def after_backward(self, trainer, iteration: int) -> None:
        params = list(trainer.master.parameters())
        with np.errstate(over="ignore", invalid="ignore"):
            total = 0.0
            for param in params:
                total += float(np.sum(param.grad.astype(np.float64) ** 2))
            norm = float(np.sqrt(total))
        if not np.isfinite(norm):
            # Non-finite gradients: zero them (the strongest clip) and
            # record the event — clipping has no better option here.
            # In-place so arena-bound gradient views stay coherent.
            for param in params:
                np.nan_to_num(param.grad, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
            total = sum(float(np.sum(p.grad.astype(np.float64) ** 2)) for p in params)
            norm = float(np.sqrt(total))
        if norm > self.max_norm:
            scale = self.max_norm / (norm + 1e-12)
            for param in params:
                np.multiply(param.grad, scale, out=param.grad)
            self.clip_events.append(iteration)

    @property
    def fired(self) -> bool:
        """True once clipping has engaged at least once."""
        return bool(self.clip_events)
