"""Activation range restriction baseline (Ranger / FT-ClipAct, Sec. 6).

Profiles per-layer activation ranges during fault-free training, then
flags (and optionally clamps) activations outside the profiled range.
The paper reports this approach detects only a small fraction (33.7% in
their experiments) of latent unexpected outcomes: faults that perturb
*history state* (optimizer moments, moving variance) without producing
out-of-range activations in the checked window slip through, as do
backward-pass faults (activation bounds only see the forward pass).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.activations import GELU, LeakyReLU, ReLU, ScaledReLU, SiLU
from repro.nn.module import Module

#: Layer types whose outputs are profiled/guarded.
GUARDED_TYPES = (ReLU, LeakyReLU, SiLU, GELU, ScaledReLU)


@dataclass
class RangeViolation:
    iteration: int
    layer: str
    magnitude: float
    bound: float


class RangerGuard:
    """Two-phase activation guard: profile, then monitor (trainer hook).

    During the first ``profile_iterations`` of its life the guard records
    the max |activation| of each guarded layer; afterwards it checks every
    forward output against ``margin x`` the profiled bound on the device
    replicas, optionally clamping.
    """

    def __init__(self, profile_iterations: int = 20, margin: float = 2.0,
                 clamp: bool = False):
        self.profile_iterations = int(profile_iterations)
        self.margin = float(margin)
        self.clamp = bool(clamp)
        self.bounds: dict[str, float] = {}
        self.violations: list[RangeViolation] = []
        self._seen_iterations = 0
        self._installed: list[tuple[Module, str]] = []

    # ------------------------------------------------------------------
    def _guard_hook(self, layer_name: str):
        def hook(tensor: np.ndarray, info: dict) -> np.ndarray:
            with np.errstate(invalid="ignore"):
                mag = np.abs(tensor).max() if tensor.size else 0.0
            mag = float(mag) if np.isfinite(mag) else float("inf")
            if self._seen_iterations < self.profile_iterations:
                if np.isfinite(mag):
                    self.bounds[layer_name] = max(self.bounds.get(layer_name, 0.0), mag)
                return tensor
            bound = self.bounds.get(layer_name, 0.0) * self.margin
            if bound > 0.0 and mag > bound:
                self.violations.append(
                    RangeViolation(self._seen_iterations, layer_name, mag, bound)
                )
                if self.clamp:
                    return np.clip(np.nan_to_num(tensor, nan=0.0), -bound, bound).astype(
                        np.float32
                    )
            return tensor

        return hook

    # ------------------------------------------------------------------
    # Hook interface
    # ------------------------------------------------------------------
    def before_iteration(self, trainer, iteration: int) -> None:
        """Trainer hook: install the guard hooks once."""
        if self._installed:
            return
        for d, replica in enumerate(trainer.replicas):
            for name, module in replica.named_modules():
                if isinstance(module, GUARDED_TYPES):
                    # Chain-friendly: Ranger owns the forward hook slot for
                    # activation layers (fault models target MAC layers).
                    module.set_fault_hook("forward", self._guard_hook(f"dev{d}.{name}"))
                    self._installed.append((module, "forward"))

    def after_iteration(self, trainer, iteration: int, loss: float, acc: float) -> None:
        """Trainer hook: advance the profiling/monitoring clock."""
        self._seen_iterations += 1

    def uninstall(self) -> None:
        """Remove the guard hooks from every guarded layer."""
        for module, kind in self._installed:
            module.set_fault_hook(kind, None)
        self._installed.clear()

    @property
    def fired(self) -> bool:
        """True once any range violation has been recorded."""
        return bool(self.violations)

    def fired_at(self) -> int | None:
        """Iteration of the first violation, if any."""
        return self.violations[0].iteration if self.violations else None
