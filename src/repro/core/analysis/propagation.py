"""Fault-propagation tracing (Fig. 4 and Table 4 of the paper).

The tracer is a trainer hook recording, every iteration, the magnitudes
of each state class along the propagation paths of Fig. 4:

* max |weight| and max |gradient| (the transient carriers),
* max |optimizer history| (``m``/``v`` — the SlowDegrade carrier),
* max |BatchNorm moving statistic| (the SharpDegrade / LowTestAccuracy /
  short-term-INF carrier).

From the trace it determines *which necessary condition fired and when*,
verifying the paper's key claim that "these conditions always occur
within two training iterations after hardware failures occur".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.optim.base import max_abs


@dataclass
class PropagationTrace:
    """Per-iteration magnitudes of the fault-carrying state classes."""

    iterations: list[int] = field(default_factory=list)
    max_weight: list[float] = field(default_factory=list)
    max_gradient: list[float] = field(default_factory=list)
    max_history: list[float] = field(default_factory=list)
    max_mvar: list[float] = field(default_factory=list)

    def as_arrays(self) -> dict[str, np.ndarray]:
        """The trace as NumPy arrays keyed by series name."""
        return {
            "iterations": np.asarray(self.iterations),
            "max_weight": np.asarray(self.max_weight),
            "max_gradient": np.asarray(self.max_gradient),
            "max_history": np.asarray(self.max_history),
            "max_mvar": np.asarray(self.max_mvar),
        }


@dataclass
class ConditionOnset:
    """When (if ever) a necessary condition first exceeded its baseline."""

    condition: str  # "gradient_history" or "mvar"
    iteration: int
    magnitude: float
    latency_from_fault: int


def condition_onsets(
    trace: PropagationTrace, fault_iteration: int,
    threshold_factor: float = 100.0,
) -> list[ConditionOnset]:
    """Find where each necessary condition fired after the fault.

    A condition "fires" when its magnitude exceeds ``threshold_factor``
    times its pre-fault baseline (the fault-free magnitudes are small
    and stable; faulty values in the paper's Table 4 are 8-38 orders
    of magnitude above them, so the factor is uncritical).

    Works on any :class:`PropagationTrace` — one filled live by a
    :class:`PropagationTracer` hook, or one rebuilt after the fact from
    a structured trace's ``iteration_stats`` events
    (:func:`repro.observe.analysis.propagation_trace`).
    """
    onsets: list[ConditionOnset] = []
    arrays = trace.as_arrays()
    iters = arrays["iterations"]
    for condition, key in (("gradient_history", "max_history"), ("mvar", "max_mvar")):
        series = arrays[key]
        pre = series[iters < fault_iteration]
        baseline = float(pre.max()) if pre.size else 1.0
        baseline = max(baseline, 1e-12)
        post_mask = iters >= fault_iteration
        post_iters = iters[post_mask]
        post_vals = series[post_mask]
        exceeded = post_vals > baseline * threshold_factor
        if exceeded.any():
            idx = int(np.argmax(exceeded))
            onsets.append(
                ConditionOnset(
                    condition=condition,
                    iteration=int(post_iters[idx]),
                    magnitude=float(post_vals[idx]),
                    latency_from_fault=int(post_iters[idx]) - int(fault_iteration),
                )
            )
    return onsets


def condition_magnitude_in_window(
    trace: PropagationTrace, fault_iteration: int, window: int = 2
) -> dict[str, float]:
    """Max |history| and |mvar| within ``window`` iterations of the
    fault — the quantities whose ranges Table 4 reports."""
    arrays = trace.as_arrays()
    iters = arrays["iterations"]
    mask = (iters >= fault_iteration) & (iters <= fault_iteration + window)
    out = {}
    for key in ("max_history", "max_mvar"):
        vals = arrays[key][mask]
        out[key] = float(vals.max()) if vals.size else 0.0
    return out


class PropagationTracer:
    """Trainer hook that fills a :class:`PropagationTrace`."""

    def __init__(self):
        self.trace = PropagationTrace()

    def after_step(self, trainer, iteration: int) -> None:
        """Trainer hook: record this iteration's state magnitudes."""
        params = list(trainer.master.parameters())
        self.trace.iterations.append(iteration)
        self.trace.max_weight.append(max_abs([p.data for p in params]))
        self.trace.max_gradient.append(max_abs([p.grad for p in params]))
        self.trace.max_history.append(trainer.history_magnitude())
        self.trace.max_mvar.append(trainer.mvar_magnitude())

    # ------------------------------------------------------------------
    # Condition detection (delegates to the module-level functions so
    # trace-derived PropagationTrace objects share the same code path)
    # ------------------------------------------------------------------
    def condition_onsets(
        self, fault_iteration: int, threshold_factor: float = 100.0
    ) -> list[ConditionOnset]:
        return condition_onsets(self.trace, fault_iteration, threshold_factor)

    def condition_magnitude_in_window(
        self, fault_iteration: int, window: int = 2
    ) -> dict[str, float]:
        return condition_magnitude_in_window(self.trace, fault_iteration, window)
