"""Textual reports for campaign results.

The paper's artifact emits ``replay_inj_*.txt`` files recording training
loss/accuracy per iteration and flagged anomalies.  This module renders
equivalent human-readable summaries for :class:`ConvergenceRecord` and
:class:`CampaignResult` objects, so examples and operators can inspect
experiments without plotting.

Each text renderer has a ``*_dict`` twin returning the same content as
a JSON-safe dict (the CLI's ``--json`` output), and the trace-analysis
renderers work on the plain dicts produced by
:mod:`repro.observe.analysis`, so a single merged campaign trace can be
turned into Fig. 4-style propagation stories and Table 4 tallies
without re-running anything.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.training.metrics import ConvergenceRecord

if TYPE_CHECKING:  # import cycle: campaign.py imports sibling modules
    from repro.core.faults.campaign import CampaignResult


def render_convergence(record: ConvergenceRecord, every: int = 1,
                       title: str = "training run") -> str:
    """Render a run's convergence trace, artifact-style."""
    lines = [f"# {title}"]
    for i in range(0, record.num_iterations, max(int(every), 1)):
        lines.append(
            f"iter {record.iterations[i]:>5d}  "
            f"loss {record.train_loss[i]:>10.4f}  "
            f"train_acc {record.train_acc[i]:.4f}"
        )
    for iteration, acc in zip(record.test_iterations, record.test_acc):
        lines.append(f"test @ iter {iteration:>5d}  test_acc {acc:.4f}")
    if record.nonfinite_at is not None:
        lines.append(f"!! INFs/NaNs observed at iteration {record.nonfinite_at}")
    for iteration in record.detections:
        lines.append(f"!! hardware failure detected at iteration {iteration}")
    for iteration in record.recoveries:
        lines.append(f">> recovery: re-executed from iteration {iteration}")
    return "\n".join(lines)


def stable_floats(value, digits: int = 12):
    """Normalize floats to ``digits`` significant digits, recursively.

    JSON reports that feed diffs (``repro report --json``, ``repro
    monitor --json``, ``diff-campaign``) must not churn on sub-ULP repr
    noise between platforms or numpy builds; 12 significant digits keep
    every meaningful delta while washing that noise out.  Non-finite
    floats and non-float leaves pass through unchanged.
    """
    if isinstance(value, float):
        if not math.isfinite(value):
            return value
        return float(f"{value:.{digits}g}")
    if isinstance(value, dict):
        return {k: stable_floats(v, digits) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [stable_floats(v, digits) for v in value]
    return value


def render_campaign(result: CampaignResult) -> str:
    """Render a campaign's aggregate statistics (Fig. 3 / Table 4 style)."""
    lines = [f"# campaign: {result.workload} "
             f"({result.num_experiments} experiments)"]
    lines.append("## outcome breakdown (normalized to total)")
    for outcome, fraction in sorted(result.breakdown().items(),
                                    key=lambda kv: -kv[1]):
        if fraction > 0:
            lines.append(f"  {outcome:<24s} {fraction:7.2%}")
    interval = result.unexpected_interval()
    lines.append(
        f"## unexpected rate {result.unexpected_fraction():.2%} "
        f"(99% CI [{interval.low:.2%}, {interval.high:.2%}])"
    )
    lines.append("## contribution by FF class (Sec. 4.3.1)")
    for category, stats in result.by_ff_category().items():
        lines.append(
            f"  {category:<18s} population {stats['population_fraction']:6.2%}  "
            f"share of unexpected {stats['unexpected_share']:6.2%}"
        )
    ranges = result.condition_ranges()
    if ranges:
        lines.append("## necessary-condition ranges (Table 4)")
        for outcome, (lo, hi) in ranges.items():
            lines.append(f"  {outcome:<24s} {lo:.3e} .. {hi:.3e}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# JSON mirrors of the text reports (the CLI's --json output)
# ----------------------------------------------------------------------
def convergence_report_dict(record: ConvergenceRecord) -> dict:
    """:func:`render_convergence` as a JSON-safe dict."""
    return {
        "iterations": [int(i) for i in record.iterations],
        "train_loss": [float(v) for v in record.train_loss],
        "train_acc": [float(v) for v in record.train_acc],
        "test_iterations": [int(i) for i in record.test_iterations],
        "test_acc": [float(v) for v in record.test_acc],
        "nonfinite_at": record.nonfinite_at,
        "detections": [int(i) for i in record.detections],
        "recoveries": [int(i) for i in record.recoveries],
    }


def campaign_report_dict(result: CampaignResult) -> dict:
    """:func:`render_campaign` as a JSON-safe dict."""
    interval = result.unexpected_interval()
    return {
        "workload": result.workload,
        "num_experiments": result.num_experiments,
        "breakdown": {k: float(v) for k, v in result.breakdown().items()},
        "unexpected_rate": float(result.unexpected_fraction()),
        "unexpected_interval": {"low": float(interval.low),
                                "high": float(interval.high),
                                "confidence": float(interval.confidence)},
        "by_ff_category": result.by_ff_category(),
        "condition_ranges": {k: [float(lo), float(hi)]
                             for k, (lo, hi) in
                             result.condition_ranges().items()},
    }


# ----------------------------------------------------------------------
# Trace-analysis renderers (dicts from repro.observe.analysis)
# ----------------------------------------------------------------------
def render_propagation_report(summary: dict) -> str:
    """Fig. 4-style propagation story for one traced experiment.

    ``summary`` is an :func:`repro.observe.analysis.experiment_summary`
    dict.  Attribution stamps (experiment key, engine outcome) are
    deliberately not rendered, so the same experiment produces the
    identical report whether it was traced through engine workers or in
    a direct run.
    """
    lines = []
    fault = summary.get("fault")
    if fault is None:
        lines.append("# propagation: no fault_injected event in trace")
    else:
        lines.append(
            f"# propagation: fault @ iter {fault['iteration']} "
            f"(site {fault.get('site')}, kind {fault.get('kind')}, "
            f"op {fault.get('op')}, ff {fault.get('ff_category')}, "
            f"device {fault.get('device')})")
        lines.append(
            f"fault model {fault.get('model')}: "
            f"{fault.get('num_faulty')} elements, "
            f"max |value| {float(fault.get('max_abs_faulty') or 0.0):.3e}")
    for i, iteration in enumerate(summary["iterations"]):
        lines.append(
            f"iter {iteration:>5d}  loss {summary['loss'][i]:>12.4e}  "
            f"|history| {summary['max_history'][i]:>10.3e}  "
            f"|mvar| {summary['max_mvar'][i]:>10.3e}")
    if summary["onsets"]:
        lines.append("condition onsets:")
        for onset in summary["onsets"]:
            lines.append(
                f"  {onset['condition']} @ iter {onset['iteration']} "
                f"(latency {onset['latency_from_fault']}, "
                f"magnitude {onset['magnitude']:.3e})")
    window = summary.get("condition_window") or {}
    if window:
        lines.append(
            "necessary-condition window: "
            + "  ".join(f"{k}={v:.3e}" for k, v in sorted(window.items())))
    for detection in summary["detections"]:
        lines.append(
            f"!! detector fired @ iter {detection['iteration']} "
            f"({detection['condition']}, "
            f"magnitude {float(detection['magnitude'] or 0.0):.3e})")
    if summary["detection_latency"] is not None:
        lines.append(f"detection latency: "
                     f"{summary['detection_latency']} iterations")
    for rollback in summary["rollbacks"]:
        lines.append(f">> rollback @ iter {rollback['iteration']} "
                     f"({rollback['strategy']})")
    if summary["divergence_at"] is not None:
        lines.append(f"!! divergence at iteration {summary['divergence_at']}")
    return "\n".join(lines)


def render_trace_analysis(summary: dict) -> str:
    """Campaign-level analytics of a merged trace, artifact-style.

    ``summary`` is a :func:`repro.observe.analysis.campaign_summary`
    dict (detection latencies, Table 4 tallies, phase vulnerability).
    """
    lines = [f"# campaign trace analysis: {summary['experiments']} "
             f"experiments ({summary['with_fault']} with fault)"]
    if summary["outcomes"]:
        lines.append("## outcomes")
        for outcome, count in sorted(summary["outcomes"].items(),
                                     key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {outcome:<24s} {count:>6}")
    mean = summary["mean_detection_latency"]
    lines.append(
        f"## detection: {summary['detected']}/{summary['with_fault']} "
        f"faults detected"
        + (f", mean latency {mean:.2f} iterations" if mean is not None
           else ""))
    if summary["latency_histogram"]:
        lines.append("## detection-latency histogram (iterations -> count)")
        for latency, count in summary["latency_histogram"].items():
            lines.append(f"  {latency:>4}  {'#' * count} ({count})")
    tallies = summary["condition_tallies"]
    lines.append(f"## necessary conditions (Table 4, "
                 f"window {tallies['window']})")
    lines.append(
        f"  onsets: {tallies['onset_any']}/{tallies['experiments']} "
        f"experiments, {tallies['onset_within_window']} within "
        f"{tallies['window']} iterations of the fault")
    for outcome, tally in tallies["by_outcome"].items():
        line = (f"  {outcome:<24s} count {tally['count']:>4}  "
                f"fired {tally['condition_fired']:>4}")
        if tally["history_range"] is not None:
            lo, hi = tally["history_range"]
            line += f"  |history| {lo:.3e} .. {hi:.3e}"
        if tally["mvar_range"] is not None:
            lo, hi = tally["mvar_range"]
            line += f"  |mvar| {lo:.3e} .. {hi:.3e}"
        lines.append(line)
    lines.append("## vulnerability by training phase")
    for bucket in summary["phase_vulnerability"]:
        lines.append(
            f"  phase {bucket['phase']} "
            f"[{bucket['start']:>4}, {bucket['end']:>4})  "
            f"{bucket['experiments']:>4} experiments  "
            f"{bucket['unexpected']:>4} unexpected "
            f"({bucket['unexpected_rate']:.0%})  "
            f"{bucket['detected']:>4} detected")
    if summary["divergences"]:
        lines.append(f"## divergences observed: {summary['divergences']}")
    return "\n".join(lines)
