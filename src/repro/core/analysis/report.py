"""Textual reports for campaign results.

The paper's artifact emits ``replay_inj_*.txt`` files recording training
loss/accuracy per iteration and flagged anomalies.  This module renders
equivalent human-readable summaries for :class:`ConvergenceRecord` and
:class:`CampaignResult` objects, so examples and operators can inspect
experiments without plotting.
"""

from __future__ import annotations

from repro.core.faults.campaign import CampaignResult
from repro.training.metrics import ConvergenceRecord


def render_convergence(record: ConvergenceRecord, every: int = 1,
                       title: str = "training run") -> str:
    """Render a run's convergence trace, artifact-style."""
    lines = [f"# {title}"]
    for i in range(0, record.num_iterations, max(int(every), 1)):
        lines.append(
            f"iter {record.iterations[i]:>5d}  "
            f"loss {record.train_loss[i]:>10.4f}  "
            f"train_acc {record.train_acc[i]:.4f}"
        )
    for iteration, acc in zip(record.test_iterations, record.test_acc):
        lines.append(f"test @ iter {iteration:>5d}  test_acc {acc:.4f}")
    if record.nonfinite_at is not None:
        lines.append(f"!! INFs/NaNs observed at iteration {record.nonfinite_at}")
    for iteration in record.detections:
        lines.append(f"!! hardware failure detected at iteration {iteration}")
    for iteration in record.recoveries:
        lines.append(f">> recovery: re-executed from iteration {iteration}")
    return "\n".join(lines)


def render_campaign(result: CampaignResult) -> str:
    """Render a campaign's aggregate statistics (Fig. 3 / Table 4 style)."""
    lines = [f"# campaign: {result.workload} "
             f"({result.num_experiments} experiments)"]
    lines.append("## outcome breakdown (normalized to total)")
    for outcome, fraction in sorted(result.breakdown().items(),
                                    key=lambda kv: -kv[1]):
        if fraction > 0:
            lines.append(f"  {outcome:<24s} {fraction:7.2%}")
    interval = result.unexpected_interval()
    lines.append(
        f"## unexpected rate {result.unexpected_fraction():.2%} "
        f"(99% CI [{interval.low:.2%}, {interval.high:.2%}])"
    )
    lines.append("## contribution by FF class (Sec. 4.3.1)")
    for category, stats in result.by_ff_category().items():
        lines.append(
            f"  {category:<18s} population {stats['population_fraction']:6.2%}  "
            f"share of unexpected {stats['unexpected_share']:6.2%}"
        )
    ranges = result.condition_ranges()
    if ranges:
        lines.append("## necessary-condition ranges (Table 4)")
        for outcome, (lo, hi) in ranges.items():
            lines.append(f"  {outcome:<24s} {lo:.3e} .. {hi:.3e}")
    return "\n".join(lines)
