"""Training-outcome taxonomy and classifier (Table 3 of the paper).

Outcomes are classified from convergence trends exactly as the paper
characterizes them: "(1) convergence trends (i.e., training/test accuracy
values throughout the training process), and (2) occurrences of visible
anomalies" (Sec. 4.1).

Two top-level categories:

* **Benign** (82.3%-90.3% in the paper): the fault did not significantly
  affect final accuracy — often *slightly improving* it (noise acting as
  regularization), otherwise degrading it only slightly (<= ~6%).
* **Unexpected** (9.7%-17.7%): INFs/NaNs at three latencies, plus the four
  latent outcomes first identified by the paper: SlowDegrade,
  SharpSlowDegrade, SharpDegrade, and LowTestAccuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.training.metrics import ConvergenceRecord


class Outcome(str, Enum):
    """Training outcomes (Table 3 taxonomy plus the benign split)."""

    MASKED_IMPROVED = "masked_improved"
    MASKED_SLIGHT_DEGRADE = "masked_slight_degrade"
    IMMEDIATE_INF_NAN = "immediate_inf_nan"
    SHORT_TERM_INF_NAN = "short_term_inf_nan"
    LATENT_INF_NAN = "latent_inf_nan"
    SLOW_DEGRADE = "slow_degrade"
    SHARP_SLOW_DEGRADE = "sharp_slow_degrade"
    SHARP_DEGRADE = "sharp_degrade"
    LOW_TEST_ACCURACY = "low_test_accuracy"
    #: A replica process died mid-run (multi-process backend): a fail-stop
    #: hardware failure, as opposed to the silent corruptions above.
    REPLICA_LOST = "replica_lost"

    @property
    def is_unexpected(self) -> bool:
        return self not in (Outcome.MASKED_IMPROVED, Outcome.MASKED_SLIGHT_DEGRADE)

    @property
    def is_latent(self) -> bool:
        """Latent outcomes: long error-detection latency (Table 3)."""
        return self in (
            Outcome.SLOW_DEGRADE,
            Outcome.SHARP_SLOW_DEGRADE,
            Outcome.SHARP_DEGRADE,
            Outcome.LOW_TEST_ACCURACY,
        )


@dataclass(frozen=True)
class ClassifierThresholds:
    """Tunable decision thresholds for the outcome classifier."""

    #: Final train/test degradation below this is "slight" (paper: mostly
    #: within 2%, up to 6%).
    slight_degrade: float = 0.06
    #: A drop of at least this much within ``sharp_window`` iterations of
    #: the injection counts as a *sharp* drop.  Measured on the RAW curve
    #: (a sharp drop is a single-iteration event at the fault iteration —
    #: the faulty device's shard predictions collapse — and smoothing
    #: would average it away).
    sharp_drop: float = 0.15
    #: Iterations after injection within which a sharp drop must appear.
    sharp_window: int = 3
    #: Smoothing window (iterations) for accuracy curves.
    smooth: int = 5
    #: Extra degradation after the initial sharp drop that distinguishes
    #: SharpSlowDegrade (drop + continued slow degradation) from
    #: SharpDegrade (drop, then flat).
    continued_degrade: float = 0.10
    #: INFs/NaNs appearing within this many iterations of the fault are
    #: "immediate" (Table 3: current iteration, or next for backward
    #: faults); within ``short_term_latency`` they are "short-term".
    immediate_latency: int = 1
    short_term_latency: int = 3


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    if values.size == 0 or window <= 1:
        return np.asarray(values, dtype=np.float64)
    w = min(window, values.size)
    # Edge-padded moving average: zero padding (plain mode="same") would
    # drag boundary values toward 0 and fabricate degradations.
    padded = np.pad(np.asarray(values, dtype=np.float64), (w // 2, w - 1 - w // 2),
                    mode="edge")
    return np.convolve(padded, np.ones(w) / w, mode="valid")


@dataclass
class OutcomeReport:
    """Classification result with the evidence behind it."""

    outcome: Outcome
    injection_iteration: int
    final_train_delta: float
    final_test_delta: float
    sharp_drop_at_injection: bool
    details: dict

    @property
    def is_unexpected(self) -> bool:
        return self.outcome.is_unexpected


def classify_outcome(
    faulty: ConvergenceRecord,
    reference: ConvergenceRecord,
    injection_iteration: int,
    thresholds: ClassifierThresholds | None = None,
) -> OutcomeReport:
    """Classify a faulty run's outcome against its fault-free reference.

    The reference must come from the same workload/seed so the curves are
    directly comparable (the campaign guarantees this).
    """
    th = thresholds or ClassifierThresholds()
    t = int(injection_iteration)

    # ------------------------------------------------------------------
    # Fail-stop: a replica process was lost (no convergence trend to
    # classify — the run aborted).
    # ------------------------------------------------------------------
    if faulty.replica_lost_at is not None:
        return OutcomeReport(
            Outcome.REPLICA_LOST, t, 0.0, 0.0, False,
            {"replica_lost_at": faulty.replica_lost_at,
             "device": faulty.replica_lost_device},
        )

    # ------------------------------------------------------------------
    # INFs/NaNs: classify by manifestation latency (Table 3).
    # ------------------------------------------------------------------
    if faulty.nonfinite_at is not None:
        latency = faulty.nonfinite_at - t
        if latency <= th.immediate_latency:
            outcome = Outcome.IMMEDIATE_INF_NAN
        elif latency <= th.short_term_latency:
            outcome = Outcome.SHORT_TERM_INF_NAN
        else:
            outcome = Outcome.LATENT_INF_NAN
        return OutcomeReport(
            outcome, t, 0.0, 0.0, False,
            {"nonfinite_at": faulty.nonfinite_at, "latency": latency},
        )

    ref_train = reference.final_train_accuracy()
    ref_test = reference.final_test_accuracy()
    train_delta = faulty.final_train_accuracy() - ref_train
    test_delta = faulty.final_test_accuracy() - ref_test

    raw = faulty.train_accuracy_array()
    acc = _smooth(raw, th.smooth)
    # Pre-injection level: smoothed accuracy just before the fault.
    pre_lo = max(t - th.smooth, 0)
    pre = float(np.mean(acc[pre_lo : t + 1])) if acc.size > t else float(acc[-1]) if acc.size else 0.0
    # Sharp-drop detection runs on the raw curve, including iteration t
    # itself: the drop at the fault iteration comes from the faulty
    # device's shard predictions collapsing in that very iteration.
    post_window = raw[t : t + th.sharp_window + 1]
    sharp = bool(post_window.size and (pre - post_window.min()) >= th.sharp_drop)

    details = {
        "pre_injection_acc": pre,
        "ref_final_train": ref_train,
        "ref_final_test": ref_test,
    }

    # ------------------------------------------------------------------
    # Latent degradations.
    # ------------------------------------------------------------------
    train_degraded = train_delta < -th.slight_degrade
    test_degraded = test_delta < -th.slight_degrade

    if train_degraded:
        if sharp:
            # Sharp drop at injection: did degradation continue afterwards?
            # The smoothed level right after the drop window is the
            # reference; further decline below it marks the slow component.
            settle = t + th.sharp_window
            after_drop = acc[settle : settle + th.smooth]
            later = acc[settle + th.smooth :]
            continued = bool(
                after_drop.size
                and later.size
                and (float(after_drop.mean()) - float(later.min())) >= th.continued_degrade
            )
            outcome = Outcome.SHARP_SLOW_DEGRADE if continued else Outcome.SHARP_DEGRADE
        else:
            outcome = Outcome.SLOW_DEGRADE
        return OutcomeReport(outcome, t, train_delta, test_delta, sharp, details)

    if test_degraded:
        # Training accuracy normal, test visibly degraded: LowTestAccuracy.
        return OutcomeReport(
            Outcome.LOW_TEST_ACCURACY, t, train_delta, test_delta, sharp, details
        )

    # ------------------------------------------------------------------
    # Benign outcomes.
    # ------------------------------------------------------------------
    if train_delta >= 0 and test_delta >= -th.slight_degrade / 2:
        outcome = Outcome.MASKED_IMPROVED
    else:
        outcome = Outcome.MASKED_SLIGHT_DEGRADE
    return OutcomeReport(outcome, t, train_delta, test_delta, sharp, details)


def classify_outcomes(
    records: list[ConvergenceRecord],
    reference: ConvergenceRecord,
    injection_iterations: list[int],
    thresholds: ClassifierThresholds | None = None,
) -> list[OutcomeReport]:
    """Classify a batch of faulty runs against one shared reference.

    The INF/NaN latency rule — the outcome of most batched-campaign
    experiments that end early — is evaluated as one vectorized pass
    over the batch.  Runs needing trend analysis (smoothed curves,
    sharp-drop windows) fall through to :func:`classify_outcome`, whose
    convolution-based smoothing is kept scalar so batch classifications
    stay bit-identical to solo ones.
    """
    th = thresholds or ClassifierThresholds()
    reports: list[OutcomeReport | None] = [None] * len(records)
    nonfinite_idx = [
        i for i, record in enumerate(records)
        if record.replica_lost_at is None and record.nonfinite_at is not None
    ]
    if nonfinite_idx:
        at = np.array([records[i].nonfinite_at for i in nonfinite_idx])
        t = np.array([int(injection_iterations[i]) for i in nonfinite_idx])
        latency = at - t
        # Select by index: routing the enum members themselves through
        # np.where would coerce them to numpy strings.
        tiers = (Outcome.IMMEDIATE_INF_NAN, Outcome.SHORT_TERM_INF_NAN,
                 Outcome.LATENT_INF_NAN)
        tier = np.where(
            latency <= th.immediate_latency, 0,
            np.where(latency <= th.short_term_latency, 1, 2))
        for j, i in enumerate(nonfinite_idx):
            reports[i] = OutcomeReport(
                tiers[int(tier[j])], int(t[j]), 0.0, 0.0, False,
                {"nonfinite_at": int(at[j]), "latency": int(latency[j])})
    for i, record in enumerate(records):
        if reports[i] is None:
            reports[i] = classify_outcome(
                record, reference, injection_iterations[i], th)
    return reports


def outcome_breakdown(reports: list[OutcomeReport]) -> dict[str, float]:
    """Fraction of experiments per outcome, normalized to the total —
    the quantity plotted in the paper's Fig. 3."""
    if not reports:
        return {}
    counts: dict[str, int] = {}
    for report in reports:
        counts[report.outcome.value] = counts.get(report.outcome.value, 0) + 1
    total = len(reports)
    return {name: counts.get(name, 0) / total for name in [o.value for o in Outcome]}


class InferenceOutcome(str, Enum):
    """Per-request outcome of a fault during inference (Table 5 axis).

    Inference has no convergence trend to classify, so the taxonomy
    collapses to the three-way split used by the inference-FI literature
    (TensorFI, PyTorchFI): did the top-1 prediction flip (SDC), did the
    corruption announce itself as INFs/NaNs, or was it masked entirely.
    Shared by the offline :class:`~repro.core.faults.campaign.InferenceCampaign`
    and the live ``repro.serving`` request path.
    """

    MASKED = "masked"
    SDC = "sdc"
    NONFINITE = "nonfinite"

    @property
    def is_silent(self) -> bool:
        """SDCs are silent; NaNs/INFs are detectable by a cheap screen."""
        return self is InferenceOutcome.SDC


def classify_inference_rows(
    faulty: np.ndarray, golden_pred: np.ndarray
) -> list[InferenceOutcome]:
    """Classify each row of a faulty batched forward against golden top-1.

    Precedence per row is SDC > NONFINITE > MASKED: a flipped prediction
    is an SDC even when the row also contains non-finite values (the
    user-visible answer changed — that the corruption was *also*
    detectable does not undo it).
    """
    faulty = np.asarray(faulty)
    pred = np.argmax(np.nan_to_num(faulty, nan=-np.inf), axis=-1)
    sdc = pred != np.asarray(golden_pred)
    finite = np.all(np.isfinite(faulty), axis=tuple(range(1, faulty.ndim)))
    out: list[InferenceOutcome] = []
    for flipped, ok in zip(sdc, finite):
        if flipped:
            out.append(InferenceOutcome.SDC)
        elif not ok:
            out.append(InferenceOutcome.NONFINITE)
        else:
            out.append(InferenceOutcome.MASKED)
    return out


def classify_inference_experiment(
    *, sdc: bool, nonfinite: bool
) -> InferenceOutcome:
    """Experiment-level outcome from batch-wide flags (same precedence)."""
    if sdc:
        return InferenceOutcome.SDC
    if nonfinite:
        return InferenceOutcome.NONFINITE
    return InferenceOutcome.MASKED


def inference_breakdown(outcomes: list[str]) -> dict[str, int]:
    """Counts per :class:`InferenceOutcome` value, all keys present."""
    counts = {o.value: 0 for o in InferenceOutcome}
    for name in outcomes:
        counts[str(name)] = counts.get(str(name), 0) + 1
    return counts
