"""Three-phase decomposition of SlowDegrade convergence trends (Fig. 5).

The paper explains SlowDegrade / SharpSlowDegrade under a normalizing
optimizer as three phases:

1. **Degradation** — the faulty history value ``m`` dominates updates,
   pushing weights in a wrong direction; accuracy falls.
2. **Stagnation** — the faulty ``v`` (squared-gradient history) stays
   huge, so effective step sizes collapse and accuracy stays low.
3. **Recovery** — ``v`` decays (rate ``beta2``) until true gradients
   matter again; accuracy can rise — though reaching this phase "may
   require millions of iterations" with large decay factors.

:func:`decompose_phases` finds these segments in an accuracy trace, and
:func:`expected_stagnation_iterations` gives the analytic Phase-2 length
implied by the decay factor and the faulty magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PhaseAnalysis:
    """Detected phase boundaries (iteration indices, end-exclusive)."""

    injection_iteration: int
    degrade_span: tuple[int, int] | None
    stagnation_span: tuple[int, int] | None
    recovery_span: tuple[int, int] | None
    recovered: bool
    details: dict

    @property
    def has_three_phases(self) -> bool:
        """True when all three Fig. 5 phases were identified."""
        return all(
            span is not None
            for span in (self.degrade_span, self.stagnation_span, self.recovery_span)
        )


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    if values.size == 0 or window <= 1:
        return np.asarray(values, dtype=np.float64)
    w = min(window, values.size)
    # Edge-padded moving average (zero padding would bend the boundaries).
    padded = np.pad(np.asarray(values, dtype=np.float64), (w // 2, w - 1 - w // 2),
                    mode="edge")
    return np.convolve(padded, np.ones(w) / w, mode="valid")


def decompose_phases(
    accuracy: np.ndarray,
    injection_iteration: int,
    reference_level: float,
    smooth: int = 7,
    low_margin: float = 0.1,
    recover_margin: float = 0.05,
) -> PhaseAnalysis:
    """Split a post-injection accuracy trace into the Fig. 5 phases.

    ``reference_level`` is the fault-free accuracy around the injection
    point.  Phase 1 runs from the injection until the trace reaches its
    low plateau; Phase 2 while it stays below ``reference_level -
    low_margin``; Phase 3 from the first sustained rise until the end.
    ``recovered`` is True if the trace returns within ``recover_margin``
    of the reference before the end.
    """
    t = int(injection_iteration)
    acc = _smooth(np.asarray(accuracy, dtype=np.float64), smooth)
    post = acc[t:]
    if post.size < 5:
        return PhaseAnalysis(t, None, None, None, False, {"reason": "trace too short"})

    low_level = reference_level - low_margin
    below = post < low_level
    if not below.any():
        return PhaseAnalysis(t, None, None, None, True, {"reason": "never degraded"})

    # Phase 1: injection -> first index of the minimum plateau.
    min_value = post.min()
    plateau = post <= min_value + 0.5 * low_margin
    plateau_start = int(np.argmax(plateau))
    degrade_span = (t, t + max(plateau_start, 1))

    # Phase 3: last sustained rise back above the plateau band.
    rise_threshold = min_value + 0.5 * low_margin
    above = post > rise_threshold
    recovery_start = None
    for i in range(max(plateau_start + 1, 1), post.size):
        if above[i:].all() and post.size - i >= 2:
            recovery_start = i
            break
    if recovery_start is None:
        stagnation_span = (degrade_span[1], t + post.size)
        return PhaseAnalysis(
            t, degrade_span, stagnation_span, None, False,
            {"min_accuracy": float(min_value)},
        )

    stagnation_span = (degrade_span[1], t + recovery_start)
    recovery_span = (t + recovery_start, t + post.size)
    recovered = bool(post[-3:].mean() >= reference_level - recover_margin)
    return PhaseAnalysis(
        t, degrade_span, stagnation_span, recovery_span, recovered,
        {"min_accuracy": float(min_value)},
    )


def decompose_phases_vs_reference(
    faulty_accuracy: np.ndarray,
    reference_accuracy: np.ndarray,
    injection_iteration: int,
    **kwargs,
) -> PhaseAnalysis:
    """Phase decomposition on the *deficit* against the fault-free run.

    When a fault strikes mid-training, "degradation" often manifests as
    stalled learning rather than falling accuracy: the faulty run stays
    flat while the fault-free reference keeps climbing.  Decomposing the
    deficit ``reference - faulty`` captures both falling-accuracy and
    stalled-learning shapes: Phase 1 = deficit growing, Phase 2 = deficit
    plateau, Phase 3 = deficit shrinking.
    """
    n = min(len(faulty_accuracy), len(reference_accuracy))
    deficit = (np.asarray(reference_accuracy[:n], dtype=np.float64)
               - np.asarray(faulty_accuracy[:n], dtype=np.float64))
    # Reuse the accuracy-space decomposition on the negated deficit: a
    # growing deficit is a falling "-deficit" below reference level 0.
    return decompose_phases(-deficit, injection_iteration, reference_level=0.0,
                            **kwargs)


def expected_stagnation_iterations(
    faulty_magnitude: float, decay_factor: float, normal_magnitude: float = 1.0
) -> float:
    """Analytic Phase-2 length: iterations until a faulty history value of
    ``faulty_magnitude`` decays below ``normal_magnitude``.

    ``v_t`` decays geometrically at ``decay_factor`` once the fault's
    contribution stops, so the crossing time is
    ``log(normal/faulty) / log(decay)``.  With the paper's example —
    decay 0.9999 and a faulty magnitude of 1e19 — this gives ~4.4e5
    iterations ("may require millions of iterations to fully recover").
    """
    if not 0.0 < decay_factor < 1.0:
        raise ValueError(f"decay factor must be in (0, 1): {decay_factor}")
    if faulty_magnitude <= normal_magnitude:
        return 0.0
    return float(np.log(normal_magnitude / faulty_magnitude) / np.log(decay_factor))
