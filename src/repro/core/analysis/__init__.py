"""Outcome classification, phase decomposition, propagation tracing."""

from repro.core.analysis.classify import (
    ClassifierThresholds,
    Outcome,
    OutcomeReport,
    classify_outcome,
    outcome_breakdown,
)
from repro.core.analysis.phases import (
    PhaseAnalysis,
    decompose_phases,
    decompose_phases_vs_reference,
    expected_stagnation_iterations,
)
from repro.core.analysis.propagation import (
    ConditionOnset,
    PropagationTrace,
    PropagationTracer,
)
from repro.core.analysis.stats import (
    ProportionEstimate,
    experiments_for_interval,
    unobserved_outcome_bound,
    wilson_interval,
)

__all__ = [
    "ClassifierThresholds",
    "ConditionOnset",
    "Outcome",
    "OutcomeReport",
    "PhaseAnalysis",
    "PropagationTrace",
    "PropagationTracer",
    "ProportionEstimate",
    "classify_outcome",
    "decompose_phases",
    "decompose_phases_vs_reference",
    "expected_stagnation_iterations",
    "experiments_for_interval",
    "outcome_breakdown",
    "unobserved_outcome_bound",
    "wilson_interval",
]
