"""Outcome classification, phase decomposition, propagation tracing."""

from repro.core.analysis.classify import (
    ClassifierThresholds,
    InferenceOutcome,
    Outcome,
    OutcomeReport,
    classify_inference_experiment,
    classify_inference_rows,
    classify_outcome,
    inference_breakdown,
    outcome_breakdown,
)
from repro.core.analysis.phases import (
    PhaseAnalysis,
    decompose_phases,
    decompose_phases_vs_reference,
    expected_stagnation_iterations,
)
from repro.core.analysis.propagation import (
    ConditionOnset,
    PropagationTrace,
    PropagationTracer,
    condition_magnitude_in_window,
    condition_onsets,
)
from repro.core.analysis.report import (
    campaign_report_dict,
    convergence_report_dict,
    render_campaign,
    render_convergence,
    render_propagation_report,
    render_trace_analysis,
    stable_floats,
)
from repro.core.analysis.stats import (
    ProportionEstimate,
    experiments_for_interval,
    unobserved_outcome_bound,
    wilson_interval,
)

__all__ = [
    "ClassifierThresholds",
    "ConditionOnset",
    "InferenceOutcome",
    "Outcome",
    "OutcomeReport",
    "PhaseAnalysis",
    "PropagationTrace",
    "PropagationTracer",
    "ProportionEstimate",
    "campaign_report_dict",
    "classify_inference_experiment",
    "classify_inference_rows",
    "classify_outcome",
    "inference_breakdown",
    "condition_magnitude_in_window",
    "condition_onsets",
    "convergence_report_dict",
    "decompose_phases",
    "decompose_phases_vs_reference",
    "expected_stagnation_iterations",
    "experiments_for_interval",
    "outcome_breakdown",
    "render_campaign",
    "render_convergence",
    "render_propagation_report",
    "render_trace_analysis",
    "stable_floats",
    "unobserved_outcome_bound",
    "wilson_interval",
]
