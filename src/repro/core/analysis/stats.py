"""Statistical machinery for FI campaigns.

The paper reports 99%-confidence intervals of ±0.1% on outcome
percentages and a 99.5%-confidence bound of <0.004% on the probability of
an unexposed outcome (Sec. 4.1).  At our reduced experiment counts the
same estimators apply with wider intervals; this module provides them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: z-scores for common confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758, 0.995: 2.8070}


def z_score(confidence: float) -> float:
    """Two-sided normal z-score for a confidence level."""
    if confidence in _Z:
        return _Z[confidence]
    # Fall back to scipy when available for non-standard levels.
    try:
        from scipy.stats import norm

        return float(norm.ppf(0.5 + confidence / 2.0))
    except ImportError:  # pragma: no cover - scipy is a dev dependency
        raise ValueError(f"unsupported confidence level: {confidence}")


@dataclass(frozen=True)
class ProportionEstimate:
    """A proportion with its Wilson confidence interval."""

    successes: int
    trials: int
    confidence: float
    point: float
    low: float
    high: float

    @property
    def half_width(self) -> float:
        """Half the confidence interval's width."""
        return (self.high - self.low) / 2.0


def wilson_interval(successes: int, trials: int, confidence: float = 0.99) -> ProportionEstimate:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of range for {trials} trials")
    z = z_score(confidence)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = z * np.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    return ProportionEstimate(
        successes, trials, confidence, p,
        max(0.0, center - margin), min(1.0, center + margin),
    )


def unobserved_outcome_bound(trials: int, confidence: float = 0.995) -> float:
    """Upper bound on the probability of an outcome never observed in
    ``trials`` experiments (the paper's "<0.004% with 99.5% confidence").

    Exact binomial: if an event with probability p was seen 0 times in n
    trials, then with confidence c we have p <= 1 - (1-c)^(1/n).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    return float(1.0 - (1.0 - confidence) ** (1.0 / trials))


def experiments_for_interval(half_width: float, confidence: float = 0.99,
                             worst_p: float = 0.5) -> int:
    """Experiments needed for a +-``half_width`` interval at ``confidence``.

    The paper's >2.9M experiments achieve +-0.1% at 99% for per-workload
    breakdowns; this inverts the normal-approximation interval so benches
    can report the equivalent budget at our scale.
    """
    if not 0 < half_width < 1:
        raise ValueError("half_width must be in (0, 1)")
    z = z_score(confidence)
    return int(np.ceil(worst_p * (1 - worst_p) * (z / half_width) ** 2))
