"""Model session and in-flight fault plane for the inference server.

:class:`InferenceSession` owns a trained model over a registry workload
(same training path as the offline
:class:`~repro.core.faults.campaign.InferenceCampaign`, so serving and
campaign probe the identical network) plus its pool of test inputs.

:class:`FaultPlane` arms forward-site faults on the live model at a
Poisson rate per request: for a batch of size ``B`` it draws
``k ~ Poisson(rate * B)`` independent faults from the paper's FF
inventory via :func:`~repro.core.faults.hardware.sample_fault`, arms
each with a one-shot :class:`~repro.core.faults.injector.FaultInjector`
forward hook, and disarms after the batched forward.  This is the
serving analogue of the campaign's one-fault-per-experiment design —
except faults now land *in-flight*, racing real traffic.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.ffs import FFInventory
from repro.core.faults.hardware import sample_fault
from repro.core.faults.injector import FaultInjector
from repro.distributed.sync import SyncDataParallelTrainer
from repro.workloads.base import WorkloadSpec


class InferenceSession:
    """A trained, eval-mode model plus the request-addressable inputs."""

    def __init__(self, spec: WorkloadSpec, seed: int = 0,
                 train_iterations: int | None = None, num_devices: int = 2):
        self.spec = spec
        self.seed = int(seed)
        trainer = SyncDataParallelTrainer(
            spec, num_devices=num_devices, seed=seed, test_every=0)
        try:
            trainer.train(train_iterations or spec.iterations)
        finally:
            trainer.close()
        self.model = trainer.master
        self.model.eval()
        self.inputs = spec.test_data.inputs
        self.num_samples = int(len(self.inputs))

    def forward(self, batch: np.ndarray) -> np.ndarray:
        """Batched forward; faulty activations may legitimately overflow."""
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            return self.model.forward(batch)

    def gather(self, indices) -> np.ndarray:
        """Stack the requested sample rows into one contiguous batch."""
        return self.inputs[np.asarray(indices, dtype=np.intp)]


class FaultPlane:
    """Poisson-rate forward-fault arming for a live model.

    ``rate`` is the expected number of faults per *request* (so a batch
    of ``B`` requests sees ``Poisson(rate * B)`` faults).  Rates of
    practical interest are tiny; the CLI exposes the full range so tests
    and benchmarks can push into the always-faulty regime.
    """

    def __init__(self, model, rate: float, seed: int = 0,
                 inventory: FFInventory | None = None):
        if rate < 0:
            raise ValueError("fault rate must be >= 0")
        self.model = model
        self.rate = float(rate)
        self.rng = np.random.default_rng(seed)
        self.inventory = inventory if inventory is not None else FFInventory()
        self.armed_total = 0

    def arm(self, batch_size: int) -> list[FaultInjector]:
        """Arm ``k ~ Poisson(rate * batch_size)`` one-shot forward faults.

        Each module has a single forward-hook slot, so a second fault
        drawn for an already-armed module is skipped — at realistic
        rates a same-batch, same-module double fault is vanishingly
        rare, and skipping (rather than chaining) keeps each injector's
        record attributable to its own fault.
        """
        if self.rate <= 0 or batch_size <= 0:
            return []
        k = int(self.rng.poisson(self.rate * batch_size))
        injectors: list[FaultInjector] = []
        armed_modules: set[str] = set()
        for _ in range(k):
            fault = sample_fault(
                self.model, self.rng, max_iteration=1, num_devices=1,
                inventory=self.inventory, kinds=("forward",))
            if fault.site.module_name in armed_modules:
                continue
            armed_modules.add(fault.site.module_name)
            injector = FaultInjector(fault)
            injector.arm(None, self.model)
            injectors.append(injector)
        self.armed_total += len(injectors)
        return injectors

    @staticmethod
    def disarm(injectors: list[FaultInjector]) -> None:
        for injector in injectors:
            injector.disarm()
