"""Fault-injected inference serving: the live-traffic request path.

Where :class:`~repro.core.faults.campaign.InferenceCampaign` probes
inference offline (one fault per controlled forward), this package
serves a real request stream — queueing, dynamic batching, backpressure
— while the fault plane arms forward-site faults in-flight at a Poisson
rate, and reports what users would actually see: p50/p99 latency,
shed rate, and silent corruptions per million requests.
"""

from repro.serving.batcher import DynamicBatcher, ShedError
from repro.serving.loadgen import render_loadgen, run_loadgen
from repro.serving.server import (
    DEFAULT_SERVING_RULES,
    InferenceServer,
    ServingEngine,
    run_service,
)
from repro.serving.session import FaultPlane, InferenceSession

__all__ = [
    "DEFAULT_SERVING_RULES",
    "DynamicBatcher",
    "FaultPlane",
    "InferenceServer",
    "InferenceSession",
    "ServingEngine",
    "ShedError",
    "run_loadgen",
    "render_loadgen",
    "run_service",
]
