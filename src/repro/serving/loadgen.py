"""Open-loop load generator for the inference server.

Open-loop means requests are dispatched on a fixed schedule (request
``i`` at ``start + i/rps``) regardless of how fast earlier responses
come back — the arrival process a server actually faces, and the only
one whose latency numbers survive coordinated omission: each request's
latency is measured from its *scheduled* send time, so a stalled server
accrues the queueing delay it caused instead of silently throttling the
client.

Speaks the server's one-request-per-connection HTTP dialect directly
over asyncio streams; no third-party client needed.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import urlsplit

import numpy as np


async def _http(host: str, port: int, method: str, path: str,
                body: dict | None = None,
                timeout: float = 10.0) -> tuple[int, dict]:
    """One ``Connection: close`` request; returns ``(status, json_body)``."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    try:
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("utf-8") + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    header_end = raw.find(b"\r\n\r\n")
    if header_end < 0 or not raw.startswith(b"HTTP/1.1 "):
        raise ConnectionError("malformed HTTP response")
    status = int(raw.split(b" ", 2)[1])
    text = raw[header_end + 4:].decode("utf-8")
    return status, json.loads(text) if text else {}


def _split_url(url: str) -> tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.hostname is None or parts.port is None:
        raise ValueError(f"loadgen needs host:port in the URL, got {url!r}")
    return parts.hostname, parts.port


async def run_loadgen(url: str, rps: float, duration: float, *,
                      timeout: float = 10.0, seed: int = 0) -> dict:
    """Drive ``rps * duration`` scheduled requests; return the report."""
    if rps <= 0 or duration <= 0:
        raise ValueError("rps and duration must be positive")
    host, port = _split_url(url)
    try:
        _, workload = await _http(host, port, "GET", "/workload",
                                  timeout=timeout)
    except (OSError, asyncio.TimeoutError) as exc:
        raise ValueError(
            f"no serve-infer endpoint reachable at {url}: {exc}") from exc
    num_samples = int(workload.get("num_samples", 1))
    total = max(1, int(round(rps * duration)))
    rng = np.random.default_rng(seed)
    sample_indices = rng.integers(0, num_samples, size=total)
    loop = asyncio.get_running_loop()
    start = loop.time() + 0.02

    async def one(i: int) -> dict:
        send_at = start + i / rps
        delay = send_at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            status, body = await _http(
                host, port, "POST", "/predict",
                {"index": int(sample_indices[i])}, timeout=timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError,
                json.JSONDecodeError, asyncio.IncompleteReadError) as exc:
            return {"status": None, "error": f"{type(exc).__name__}: {exc}",
                    "latency": loop.time() - send_at}
        return {"status": status, "outcome": body.get("outcome"),
                "recovered": bool(body.get("recovered")),
                "latency": loop.time() - send_at}

    results = await asyncio.gather(*(one(i) for i in range(total)))
    elapsed = loop.time() - start
    completed = [r for r in results if r["status"] == 200]
    shed = sum(r["status"] == 503 for r in results)
    errors = sum(r["status"] not in (200, 503) for r in results)
    latencies = np.array([r["latency"] for r in completed]) \
        if completed else np.zeros(0)
    outcomes: dict[str, int] = {}
    for r in completed:
        if r.get("outcome"):
            outcomes[r["outcome"]] = outcomes.get(r["outcome"], 0) + 1

    def pct(q: float) -> float:
        return float(np.percentile(latencies, q) * 1e3) if latencies.size \
            else 0.0

    return {
        "url": url,
        "rps": float(rps),
        "duration_s": float(duration),
        "requests": total,
        "completed": len(completed),
        "shed": int(shed),
        "errors": int(errors),
        "elapsed_s": float(elapsed),
        "throughput_rps": len(completed) / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {"p50": pct(50), "p90": pct(90), "p99": pct(99),
                       "max": float(latencies.max() * 1e3)
                       if latencies.size else 0.0},
        "outcomes": outcomes,
        "recovered": sum(r.get("recovered", False) for r in completed),
    }


def render_loadgen(report: dict) -> str:
    """Human-readable one-screen summary of a loadgen run."""
    lat = report["latency_ms"]
    lines = [
        f"loadgen: {report['requests']} requests @ {report['rps']:g} rps "
        f"against {report['url']}",
        f"  completed {report['completed']}  shed {report['shed']}  "
        f"errors {report['errors']}",
        f"  throughput {report['throughput_rps']:.1f} rps   latency p50 "
        f"{lat['p50']:.2f} ms  p90 {lat['p90']:.2f} ms  p99 "
        f"{lat['p99']:.2f} ms",
    ]
    if report["outcomes"]:
        pairs = "  ".join(f"{k}={v}" for k, v in
                          sorted(report["outcomes"].items()))
        lines.append(f"  fault outcomes: {pairs}  "
                     f"(recovered {report['recovered']})")
    return "\n".join(lines)
