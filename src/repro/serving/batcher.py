"""Request queue and dynamic batcher for the inference server.

The batcher is the shape of every production serving stack (Triton,
TorchServe, vLLM's continuous batching ancestor): requests land in a
bounded queue, a collector coalesces them into batches of at most
``max_batch``, and a batch is released early once the oldest request has
waited ``max_wait_s`` — latency is traded for throughput explicitly, at
two knobs.  A full queue sheds instead of buffering unboundedly
(backpressure), so overload degrades p99 and availability, never memory.

The batcher is policy-free: it knows nothing about models or faults.
``execute`` is a synchronous callable ``list[payload] -> list[result]``
run in the default thread-pool executor, so the event loop keeps
accepting and coalescing the *next* batch while the current one computes
— the same pipelining that makes dynamic batching pay off on real
hardware.
"""

from __future__ import annotations

import asyncio


class ShedError(RuntimeError):
    """Raised to a submitter when the bounded queue is full (overload)."""


class _Request:
    __slots__ = ("payload", "future")

    def __init__(self, payload, future):
        self.payload = payload
        self.future = future


class DynamicBatcher:
    """Coalesce submitted payloads into batches for ``execute``.

    Parameters
    ----------
    execute:
        Synchronous ``list[payload] -> list[result]`` (one result per
        payload, same order).  Runs in the default executor.
    max_batch:
        Hard cap on batch size; a batch is released immediately when it
        fills.
    max_wait_s:
        How long the oldest request in a forming batch may wait for
        company before the batch is released part-full.
    queue_cap:
        Bound on queued (not-yet-batched) requests; ``submit`` raises
        :class:`ShedError` beyond it.
    """

    def __init__(self, execute, max_batch: int = 32,
                 max_wait_s: float = 0.005, queue_cap: int = 256):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        self.execute = execute
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.queue_cap = int(queue_cap)
        self._queue: asyncio.Queue[_Request] = asyncio.Queue(maxsize=queue_cap)
        self._stopping = False
        #: Lifetime stats, read by the serving engine's sampler.
        self.submitted = 0
        self.shed = 0
        self.batches = 0
        self.batch_sizes: list[int] = []

    @property
    def depth(self) -> int:
        """Requests queued but not yet claimed by a batch."""
        return self._queue.qsize()

    async def submit(self, payload):
        """Enqueue one payload; resolves to its result from ``execute``.

        Raises :class:`ShedError` when the queue is full or the batcher
        is stopping — the caller turns that into an HTTP 503.
        """
        if self._stopping:
            self.shed += 1
            raise ShedError("batcher is stopping")
        future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait(_Request(payload, future))
        except asyncio.QueueFull:
            self.shed += 1
            raise ShedError(
                f"queue full ({self.queue_cap} waiting)") from None
        self.submitted += 1
        return await future

    async def _collect(self) -> list[_Request] | None:
        """Gather one batch, or ``None`` when stopping and drained."""
        while True:
            try:
                first = await asyncio.wait_for(self._queue.get(), timeout=0.05)
                break
            except asyncio.TimeoutError:
                if self._stopping:
                    return None
        batch = [first]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_wait_s
        while len(batch) < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            else:
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), timeout=remaining))
                except asyncio.TimeoutError:
                    break
        return batch

    async def run(self) -> None:
        """Collector loop: drive until :meth:`stop` and the queue drains."""
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect()
            if batch is None:
                return
            payloads = [request.payload for request in batch]
            try:
                results = await loop.run_in_executor(
                    None, self.execute, payloads)
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"execute returned {len(results)} results for "
                        f"{len(batch)} payloads")
            except Exception as exc:  # noqa: BLE001 - fail the batch, not the loop
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(exc)
                continue
            self.batches += 1
            self.batch_sizes.append(len(batch))
            for request, result in zip(batch, results):
                if not request.future.done():
                    request.future.set_result(result)

    def stop(self) -> None:
        """Stop accepting; :meth:`run` exits after draining the queue."""
        self._stopping = True
