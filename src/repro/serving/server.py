"""Serving engine, asyncio HTTP front-end, and service driver.

Three layers, separable for tests:

* :class:`ServingEngine` — transport-free request path: dynamic batcher
  -> vectorized batched forward with the in-flight
  :class:`~repro.serving.session.FaultPlane` -> detection (nonfinite
  screen on every armed batch, sampled golden shadow re-execution) ->
  per-request :class:`~repro.core.analysis.classify.InferenceOutcome`
  -> optional batch recovery (re-serve the fault-free re-execution, the
  serving analogue of the paper's two-iteration rewind).  All metrics
  land in a per-engine :class:`~repro.observe.counters.MetricsRegistry`.
* :class:`InferenceServer` — a minimal asyncio HTTP/1.1 server (stdlib
  only, ``Connection: close``) exposing ``POST /predict`` next to the
  telemetry surface (``/metrics``, ``/healthz``, ``/progress``,
  ``/alerts``) rendered by the same :class:`~repro.serve.TelemetryHub`
  the campaign service uses.
* :func:`run_service` — wires engine + server + sampler + SLO engine
  and runs until a duration elapses or the task is cancelled; the
  telemetry series lands in ``<store>.series.jsonl``.

Detection semantics: with ``fault_rate == 0`` nothing is armed and the
response bytes are bit-identical to a direct ``model.forward`` of the
same batch.  When a fault fires, the nonfinite screen always runs; a
full golden shadow re-execution of the *same batch* additionally runs
with probability ``shadow_rate`` (and always when the screen trips).
Only a shadowed batch can observe SDCs — the ``serving.sdc`` counter is
therefore *detected* silent corruptions, a lower bound that tightens as
``shadow_rate`` -> 1.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from repro.core.analysis.classify import InferenceOutcome, classify_inference_rows
from repro.observe.counters import MetricsRegistry
from repro.observe.slo import SLOEngine, SLORule
from repro.observe.timeseries import TelemetrySampler, build_sample, series_path
from repro.serve import DEFAULT_HOST, TelemetryHub
from repro.serving.batcher import DynamicBatcher, ShedError
from repro.serving.session import FaultPlane, InferenceSession

#: Batch-size histogram bounds: exact integer buckets up to the largest
#: max-batch anyone configures in practice.
_BATCH_BOUNDS = tuple(float(b) for b in (1, 2, 4, 8, 16, 32, 64, 128, 256))

#: SLO rules applied when `repro serve-infer` is given no --slo file:
#: availability (shed rate), tail latency, and silent-corruption budget.
DEFAULT_SERVING_RULES = (
    SLORule(name="shed-rate", metric="serving.shed_rate", max=0.05,
            severity="critical", for_seconds=1.0),
    SLORule(name="p99-latency", metric="serving.latency_seconds.p99",
            max=0.5, severity="warning", for_seconds=1.0),
    SLORule(name="sdc-per-million", metric="serving.sdc_per_million",
            max=100.0, severity="critical", for_seconds=1.0),
)


class ServingEngine:
    """The request path: batching, faults, detection, recovery, metrics."""

    def __init__(self, session: InferenceSession, fault_rate: float = 0.0,
                 seed: int = 0, max_batch: int = 32,
                 max_wait_s: float = 0.005, queue_cap: int = 256,
                 shadow_rate: float = 0.25, recover: bool = True,
                 registry: MetricsRegistry | None = None):
        if not 0.0 <= shadow_rate <= 1.0:
            raise ValueError("shadow_rate must be in [0, 1]")
        self.session = session
        self.plane = FaultPlane(session.model, fault_rate, seed=seed)
        self.shadow_rate = float(shadow_rate)
        self.recover = bool(recover)
        self._shadow_rng = np.random.default_rng(seed + 0x5AD0)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.batcher = DynamicBatcher(
            self._execute_batch, max_batch=max_batch,
            max_wait_s=max_wait_s, queue_cap=queue_cap)
        reg = self.registry
        self.c_requests = reg.counter("serving.requests")
        self.c_responses = reg.counter("serving.responses")
        self.c_shed = reg.counter("serving.shed")
        self.c_errors = reg.counter("serving.errors")
        self.c_batches = reg.counter("serving.batches")
        self.c_faults_armed = reg.counter("serving.faults_armed")
        self.c_faults_fired = reg.counter("serving.faults_fired")
        self.c_shadow = reg.counter("serving.shadow_execs")
        self.c_recovered = reg.counter("serving.recovered_batches")
        self.c_outcome = {
            outcome: reg.counter(f"serving.{outcome.value}")
            for outcome in InferenceOutcome}
        self.h_latency = reg.histogram("serving.latency_seconds")
        self.h_batch_size = reg.histogram("serving.batch_size",
                                          bounds=_BATCH_BOUNDS)

    # ------------------------------------------------------------------
    # Hot path (runs in the batcher's executor thread)
    # ------------------------------------------------------------------
    def _execute_batch(self, payloads: list[dict]) -> list[dict]:
        indices = [int(p["index"]) for p in payloads]
        batch = self.session.gather(indices)
        injectors = self.plane.arm(len(payloads))
        try:
            outputs = self.session.forward(batch)
        finally:
            FaultPlane.disarm(injectors)
        fired = sum(injector.fired for injector in injectors)
        self.c_batches.inc()
        self.h_batch_size.observe(float(len(payloads)))
        self.c_faults_armed.inc(len(injectors))
        self.c_faults_fired.inc(fired)

        outcomes: list[InferenceOutcome | None] = [None] * len(payloads)
        recovered = False
        screened = False
        if fired:
            finite_rows = np.all(
                np.isfinite(outputs),
                axis=tuple(range(1, outputs.ndim)))
            shadow = (not bool(finite_rows.all())
                      or float(self._shadow_rng.random()) < self.shadow_rate)
            if shadow:
                screened = True
                self.c_shadow.inc()
                # Same batch, injectors disarmed: this re-execution IS
                # the golden output for these requests — per-row
                # bit-identity holds because the batch composition (and
                # so every BLAS reduction order) is unchanged.
                golden = self.session.forward(batch)
                golden_pred = np.argmax(
                    np.nan_to_num(golden, nan=-np.inf), axis=-1)
                outcomes = list(classify_inference_rows(outputs, golden_pred))
                for outcome in outcomes:
                    self.c_outcome[outcome].inc()
                if self.recover and not np.array_equal(
                        outputs, golden, equal_nan=True):
                    outputs = golden
                    recovered = True
                    self.c_recovered.inc()

        preds = np.argmax(np.nan_to_num(outputs, nan=-np.inf), axis=-1)
        responses = []
        for row, payload in enumerate(payloads):
            responses.append({
                "index": indices[row],
                "pred": int(preds[row]),
                "output": np.asarray(outputs[row]).ravel().tolist(),
                "outcome": outcomes[row].value if outcomes[row] else None,
                "screened": screened,
                "recovered": recovered,
                "batch_size": len(payloads),
                "faults_fired": int(fired),
            })
        self.c_responses.inc(len(payloads))
        return responses

    # ------------------------------------------------------------------
    # Front-end entry points
    # ------------------------------------------------------------------
    async def predict(self, index: int) -> dict:
        """Submit one request; raises :class:`ShedError` on overload."""
        self.c_requests.inc()
        started = time.perf_counter()
        try:
            result = await self.batcher.submit({"index": int(index)})
        except ShedError:
            self.c_shed.inc()
            raise
        except Exception:
            self.c_errors.inc()
            raise
        self.h_latency.observe(time.perf_counter() - started)
        return result

    def sample(self):
        """One telemetry sample: registry snapshot + serving gauges."""
        sample = build_sample(progress=None, registry=self.registry)
        requests = self.c_requests.value
        responses = self.c_responses.value
        sample.gauges.update({
            "serving.queue_depth": float(self.batcher.depth),
            "serving.shed_rate": (
                self.c_shed.value / requests if requests else 0.0),
            "serving.sdc_per_million": (
                self.c_outcome[InferenceOutcome.SDC].value / responses * 1e6
                if responses else 0.0),
            "serving.fault_rate": self.plane.rate,
        })
        sample.outcomes = {
            outcome.value: int(self.c_outcome[outcome].value)
            for outcome in InferenceOutcome}
        return sample

    def summary(self) -> dict:
        """End-of-run summary (what ``serve-infer`` writes to --store)."""
        sample = self.sample()
        return {
            "kind": "serving",
            "workload": self.session.spec.name,
            "fault_rate": self.plane.rate,
            "shadow_rate": self.shadow_rate,
            "recover": self.recover,
            "requests": int(self.c_requests.value),
            "responses": int(self.c_responses.value),
            "shed": int(self.c_shed.value),
            "batches": int(self.c_batches.value),
            "faults_armed": int(self.c_faults_armed.value),
            "faults_fired": int(self.c_faults_fired.value),
            "shadow_execs": int(self.c_shadow.value),
            "recovered_batches": int(self.c_recovered.value),
            "outcomes": {o.value: int(self.c_outcome[o].value)
                         for o in InferenceOutcome},
            "sdc_per_million": sample.gauges["serving.sdc_per_million"],
            "shed_rate": sample.gauges["serving.shed_rate"],
            "latency_seconds": self.h_latency.summary(),
        }


# ----------------------------------------------------------------------
# Asyncio HTTP front-end
# ----------------------------------------------------------------------
_JSON = "application/json"


class InferenceServer:
    """Minimal asyncio HTTP/1.1 server over one :class:`ServingEngine`.

    One request per connection (``Connection: close``) keeps the parser
    trivial; the load generator and smoke scripts speak the same
    dialect.  Telemetry endpoints delegate to the shared
    :class:`~repro.serve.TelemetryHub` so scrapers see the exact surface
    ``repro campaign --serve`` exposes.
    """

    def __init__(self, engine: ServingEngine, hub: TelemetryHub,
                 host: str = DEFAULT_HOST, port: int = 0):
        self.engine = engine
        self.hub = hub
        self.host = host
        self.port = int(port)
        self.url = ""
        self._server: asyncio.AbstractServer | None = None
        self._batcher_task: asyncio.Task | None = None

    async def start(self) -> "InferenceServer":
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.url = f"http://{self.host}:{self.port}"
        self._batcher_task = asyncio.create_task(self.engine.batcher.run())
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.engine.batcher.stop()
        if self._batcher_task is not None:
            await self._batcher_task
            self._batcher_task = None

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, body, ctype = await self._respond(reader)
            data = body.encode("utf-8")
            phrase = {200: "OK", 400: "Bad Request", 404: "Not Found",
                      503: "Service Unavailable",
                      500: "Internal Server Error"}.get(status, "OK")
            head = (f"HTTP/1.1 {status} {phrase}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: close\r\n\r\n")
            writer.write(head.encode("utf-8") + data)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _respond(self, reader) -> tuple[int, str, str]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, json.dumps({"error": "malformed request line"}), _JSON
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        body = await reader.readexactly(length) if length else b""

        if method == "POST" and path == "/predict":
            return await self._predict(body)
        if method != "GET":
            return 404, json.dumps({"error": f"no route {method} {path}"}), \
                _JSON
        path = path.rstrip("/") or "/"
        self.hub.scrapes += 1
        if path == "/metrics":
            return 200, self.hub.metrics_text(), \
                "text/plain; version=0.0.4; charset=utf-8"
        if path == "/healthz":
            healthy, payload = self.hub.health()
            return (200 if healthy else 503,
                    json.dumps(payload, indent=2, sort_keys=True), _JSON)
        if path == "/progress":
            return 200, self.hub.progress_json(), _JSON
        if path == "/alerts":
            return 200, self.hub.alerts_json(), _JSON
        if path == "/workload":
            return 200, json.dumps({
                "workload": self.engine.session.spec.name,
                "num_samples": self.engine.session.num_samples,
                "fault_rate": self.engine.plane.rate,
                "max_batch": self.engine.batcher.max_batch,
            }, sort_keys=True), _JSON
        if path == "/":
            return 200, json.dumps({
                "endpoints": ["/predict", "/workload", "/metrics",
                              "/healthz", "/progress", "/alerts"],
                "meta": self.hub.meta}, indent=2, sort_keys=True), _JSON
        return 404, json.dumps({"error": f"unknown path {path!r}"}), _JSON

    async def _predict(self, body: bytes) -> tuple[int, str, str]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
            index = int(payload["index"])
        except (ValueError, KeyError, TypeError):
            return 400, json.dumps(
                {"error": "body must be JSON with an integer 'index'"}), _JSON
        if not 0 <= index < self.engine.session.num_samples:
            return 400, json.dumps(
                {"error": f"index out of range "
                          f"[0, {self.engine.session.num_samples})"}), _JSON
        try:
            result = await self.engine.predict(index)
        except ShedError as exc:
            return 503, json.dumps({"error": "shed", "detail": str(exc)}), \
                _JSON
        except Exception as exc:  # noqa: BLE001 - surface as HTTP 500
            return 500, json.dumps(
                {"error": f"{type(exc).__name__}: {exc}"}), _JSON
        return 200, json.dumps(result), _JSON


# ----------------------------------------------------------------------
# Service driver
# ----------------------------------------------------------------------
async def run_service(engine: ServingEngine, *, host: str = DEFAULT_HOST,
                      port: int = 0, store=None,
                      rules: list[SLORule] | None = None,
                      interval: float = 0.25,
                      duration: float | None = None,
                      announce=None) -> dict:
    """Serve until ``duration`` elapses (or cancellation); returns the
    run summary with the list of SLO rules that ever fired."""
    slo = SLOEngine(list(rules if rules is not None
                         else DEFAULT_SERVING_RULES))
    meta = {"workload": engine.session.spec.name, "kind": "serving",
            "fault_rate": engine.plane.rate}
    hub = TelemetryHub(meta=meta, slo_engine=slo)

    def provider():
        sample = engine.sample()
        hub.publish(sample)
        return sample

    sampler = TelemetrySampler(
        provider, interval=interval,
        path=series_path(store) if store else None,
        meta=meta, slo_engine=slo)
    server = InferenceServer(engine, hub, host=host, port=port)
    await server.start()
    sampler.start()
    if announce is not None:
        announce(f"serving: {engine.session.spec.name} on {server.url} "
                 f"(fault-rate {engine.plane.rate:g})")
    cancelled = False
    try:
        if duration is None:
            await asyncio.Event().wait()  # until cancelled
        else:
            await asyncio.sleep(duration)
    except asyncio.CancelledError:
        cancelled = True
    finally:
        # Runs on the normal path, cancellation, *and* interrupts: the
        # summary and the on-disk store must reflect whatever was served.
        await server.stop()
        sampler.stop()
        summary = engine.summary()
        summary["breached"] = sorted(slo.ever_fired)
        summary["breached_critical"] = slo.breached("critical")
        if store is not None:
            from pathlib import Path
            Path(store).write_text(
                json.dumps(summary, indent=2, sort_keys=True) + "\n",
                encoding="utf-8")
            summary["series_path"] = str(series_path(store))
    if cancelled:
        raise asyncio.CancelledError
    return summary
