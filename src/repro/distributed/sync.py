"""Synchronous data-parallel training over simulated devices.

Models the distributed setting of the paper's experiments (Sec. 2 and
Sec. 3.3): every device holds a replica of the model, computes gradients
on its shard of the mini-batch, gradients are averaged by a central
server, the averaged update is applied, and the weights are broadcast
back.  Key fidelity points:

* **BatchNorm moving statistics are per-device** — they are never
  averaged, so a fault that corrupts one device's mvar stays local, which
  is why LowTestAccuracy manifests on the faulty device (Sec. 4.3.3).
* **Gradients are averaged across devices** — a faulty gradient
  contribution is diluted by ``1/num_devices``, the opposing factor the
  paper discusses for SlowDegrade sensitivity to device count.
* Faults are injected into exactly one device's replica.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ReplicaLostError, build_backend
from repro.backend.base import reseed_random_layers  # noqa: F401  (re-export)
from repro.data.loader import BatchLoader
from repro.nn.module import Module
from repro.nn.normalization import max_moving_variance
from repro.observe import DIVERGENCE, ITERATION_STATS, NULL_TRACER, profile_scope
from repro.optim.base import Optimizer
from repro.state import build_arenas
from repro.training.metrics import ConvergenceRecord
from repro.workloads.base import WorkloadSpec


class SyncDataParallelTrainer:
    """Synchronous data-parallel trainer with per-iteration hook points.

    Hooks are objects implementing any subset of::

        before_iteration(trainer, iteration)
        after_backward(trainer, iteration)   # grads averaged, pre-update
        after_step(trainer, iteration)       # post-update, pre-record
        after_iteration(trainer, iteration, loss, acc)

    The fault injector, the hardware-failure detector, and the recovery
    manager all attach through this interface.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        num_devices: int = 8,
        seed: int = 0,
        test_every: int = 25,
        eval_device: int = 0,
        track_conditions: bool = True,
        stop_on_nonfinite: bool = True,
        hooks: list | None = None,
        tracer=None,
        backend="inprocess",
    ):
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1: {num_devices}")
        self.spec = spec
        self.num_devices = int(num_devices)
        self.seed = int(seed)
        self.test_every = int(test_every)
        self.eval_device = int(eval_device)
        self.track_conditions = bool(track_conditions)
        self.stop_on_nonfinite = bool(stop_on_nonfinite)
        self.hooks = list(hooks) if hooks else []
        #: Shared event sink for the trainer and every attached hook
        #: (injector, detector, recovery); defaults to the disabled
        #: :data:`~repro.observe.NULL_TRACER`, whose emit is a no-op.
        self.tracer = tracer if tracer is not None else NULL_TRACER

        # Identical replicas: same model seed on every device.
        self.replicas: list[Module] = [spec.build_model(seed) for _ in range(num_devices)]
        self.master = self.replicas[0]
        # Fused state layer: each replica's parameters/gradients are laid
        # out in one contiguous arena, enabling whole-buffer gradient
        # averaging, broadcast, and snapshotting.  ``None`` (e.g. tied
        # weights) falls back to the scattered per-parameter paths.
        self.arenas = build_arenas(self.replicas)
        self.master_arena = self.arenas[0] if self.arenas else None
        self.optimizer: Optimizer = spec.build_optimizer(list(self.master.parameters()))
        if self.master_arena is not None:
            self.optimizer.bind_arena(self.master_arena)
        self.losses = [spec.loss_fn() for _ in range(num_devices)]
        self.loader = BatchLoader(spec.train_data, spec.batch_size, base_seed=seed)
        self.record = ConvergenceRecord()
        self.iteration = 0
        self._just_recovered = False
        #: The execution substrate (see :mod:`repro.backend`): device
        #: stepping, gradient reduction, and weight broadcast happen
        #: there; hook dispatch and the optimizer step stay here.
        self.backend = build_backend(backend, self)

    # ------------------------------------------------------------------
    # Hook dispatch
    # ------------------------------------------------------------------
    def add_hook(self, hook) -> None:
        self.hooks.append(hook)

    def _dispatch(self, event: str, *args) -> None:
        for hook in self.hooks:
            fn = getattr(hook, event, None)
            if fn is not None:
                fn(self, *args)

    # ------------------------------------------------------------------
    # Core iteration
    # ------------------------------------------------------------------
    def run_iteration(self, iteration: int) -> tuple[float, float]:
        """Run one synchronous training iteration; returns (loss, acc).

        The returned loss/accuracy are averaged over device shards, as a
        central parameter server would observe them.  Device stepping
        and gradient reduction are delegated to the execution backend;
        hook dispatch and the optimizer step happen here, so the hook
        contract is identical under every backend.
        """
        self._dispatch("before_iteration", iteration)
        loss, acc = self.backend.step(iteration)
        self._dispatch("after_backward", iteration)
        with profile_scope("optim.step"):
            self.optimizer.step()
        self._dispatch("after_step", iteration)
        with profile_scope("sync.broadcast"):
            self.backend.broadcast()
        return loss, acc

    def evaluate(self, device: int | None = None, max_batches: int | None = None) -> float:
        """Test metric on the chosen device's replica (eval mode).

        Eval mode makes BatchNorm use its *moving* statistics — the path
        through which a faulty mvar degrades test accuracy while training
        accuracy (batch statistics) looks normal (LowTestAccuracy).
        """
        device = self.eval_device if device is None else device
        model = self.replicas[device]
        model.eval()
        data = self.spec.test_data
        batch = self.spec.batch_size
        metrics = []
        weights = []
        for start in range(0, len(data), batch):
            if max_batches is not None and len(metrics) >= max_batches:
                break
            x = data.inputs[start : start + batch]
            y = data.targets[start : start + batch]
            with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
                out = model.forward(x)
            metrics.append(self.spec.metric(out, y))
            weights.append(len(x))
        model.train()
        if not metrics:
            return 0.0
        return float(np.average(metrics, weights=weights))

    # ------------------------------------------------------------------
    # Condition probes (the quantities the detector bounds)
    # ------------------------------------------------------------------
    def history_magnitude(self) -> float:
        """Largest |optimizer gradient-history| value right now."""
        return self.optimizer.history_magnitude()

    def mvar_magnitude(self) -> float:
        """Largest |BatchNorm moving statistic| across all devices."""
        if not self.spec.has_batchnorm:
            return 0.0
        return max(max_moving_variance(replica) for replica in self.replicas)

    def signal_recovered(self) -> None:
        """Called by a recovery hook after it rewinds training state: the
        just-recorded iteration has been rolled back, so the training loop
        must not act on its (possibly non-finite) loss.  The backend is
        notified so state living outside this process (per-replica
        BatchNorm statistics in replica processes) is resynchronized."""
        self._just_recovered = True
        self.backend.on_state_restored()

    def _state_is_finite(self, loss: float) -> bool:
        if not np.isfinite(loss):
            return False
        if self.master_arena is not None:
            return bool(np.isfinite(self.master_arena.param).all())
        for param in self.master.parameters():
            if not np.all(np.isfinite(param.data)):
                return False
        return True

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def train(self, iterations: int | None = None) -> ConvergenceRecord:
        """Train for ``iterations`` (default: the spec's budget).

        Stops early (recording the iteration) if the loss or any weight
        becomes non-finite and ``stop_on_nonfinite`` is set, mirroring the
        paper's protocol of training "until an error message (e.g., one
        that reports the occurrence of INFs/NaNs) is encountered".
        """
        budget = self.spec.iterations if iterations is None else int(iterations)
        end = self.iteration + budget
        while self.iteration < end:
            t = self.iteration
            try:
                loss, acc = self.run_iteration(t)
            except ReplicaLostError as lost:
                # A replica process died mid-collective; the backend has
                # already torn itself down and emitted the trace event.
                self.record.mark_replica_lost(t, lost.device)
                break
            hist = self.history_magnitude() if self.track_conditions else None
            mvar = self.mvar_magnitude() if self.track_conditions else None
            self.record.record_train(t, loss, acc, hist, mvar)
            if self.tracer.enabled:  # skip argument marshalling when off
                self.tracer.emit(ITERATION_STATS, iteration=t,
                                 loss=float(loss), acc=float(acc),
                                 history_magnitude=hist, mvar_magnitude=mvar)
            if self.test_every and (t + 1) % self.test_every == 0:
                self.record.record_test(t, self.evaluate())
            self._dispatch("after_iteration", t, loss, acc)
            self.iteration += 1
            if self._just_recovered:
                self._just_recovered = False
                continue
            if not self._state_is_finite(loss):
                self.record.mark_nonfinite(t)
                self.tracer.emit(DIVERGENCE, iteration=t, loss=float(loss))
                if self.stop_on_nonfinite:
                    break
        return self.record

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the execution backend (replica processes, shared
        memory).  The trainer state remains readable afterwards."""
        self.backend.close()

    def __enter__(self) -> "SyncDataParallelTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
