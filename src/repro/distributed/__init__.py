"""Simulated synchronous data-parallel training."""

from repro.distributed.sync import SyncDataParallelTrainer, reseed_random_layers

__all__ = ["SyncDataParallelTrainer", "reseed_random_layers"]
