"""Declarative SLO rules with sustained-for and hysteresis semantics.

A threshold that trips on one noisy sample is an alarm nobody trusts.
Rules here evaluate over the telemetry *series*: a breach must hold
continuously for ``for_seconds`` before the rule fires, and a firing
rule only resolves once the metric clears the threshold by the
``hysteresis`` fraction — the standard flap-damping pair.

A rule file is JSON — either a list of rule objects or
``{"rules": [...]}``::

    [{"name": "quarantine-rate",
      "metric": "campaign.quarantine_rate",
      "max": 0.10, "for_seconds": 10, "hysteresis": 0.2,
      "severity": "critical"},
     {"name": "throughput-floor",
      "metric": "campaign.throughput",
      "min": 0.5, "for_seconds": 30, "severity": "warning"}]

``metric`` addresses the flat namespace of
:meth:`~repro.observe.timeseries.TelemetrySample.flat` (gauges like
``campaign.divergence_rate`` or ``workers.stalled``, counter rates like
``rate.engine.completed``, histogram quantiles like
``detector.latency_iterations.p99``).  Exactly one bound (``max`` or
``min``) per rule.  This engine subsumes the monitor's original ad-hoc
``--max-quarantine-rate``/``--max-divergence-rate`` flags, which are now
compiled to instantaneous rules via :func:`threshold_rules`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Recognized rule severities, in increasing order of consequence:
#: ``warning`` rules report but never gate an exit code; ``critical``
#: rules turn a sustained breach into a nonzero campaign exit.
SEVERITIES = ("warning", "critical")

#: Rule evaluation states.
OK = "ok"
PENDING = "pending"       # breaching, but not yet for ``for_seconds``
FIRING = "firing"
NO_DATA = "no_data"       # the metric is absent from the sample

_RULE_KEYS = {"name", "metric", "max", "min", "for_seconds", "hysteresis",
              "severity", "description"}


class SLOConfigError(ValueError):
    """Raised for malformed rule documents."""


@dataclass(frozen=True)
class SLORule:
    """One declarative threshold rule."""

    name: str
    metric: str
    #: Upper bound: the rule breaches while ``value > max``.
    max: float | None = None
    #: Lower bound: the rule breaches while ``value < min``.
    min: float | None = None
    #: The breach must hold continuously this long before firing.
    for_seconds: float = 0.0
    #: Fraction of the threshold the metric must clear by to resolve a
    #: firing rule (0 = resolve as soon as the predicate stops holding).
    hysteresis: float = 0.0
    severity: str = "critical"
    description: str = ""

    def __post_init__(self):
        if (self.max is None) == (self.min is None):
            raise SLOConfigError(
                f"rule {self.name!r}: exactly one of 'max'/'min' is required")
        if self.for_seconds < 0:
            raise SLOConfigError(
                f"rule {self.name!r}: for_seconds must be >= 0")
        if not 0.0 <= self.hysteresis < 1.0:
            raise SLOConfigError(
                f"rule {self.name!r}: hysteresis must be in [0, 1)")
        if self.severity not in SEVERITIES:
            raise SLOConfigError(
                f"rule {self.name!r}: severity {self.severity!r} is not one "
                f"of {SEVERITIES}")
        if not self.name or not self.metric:
            raise SLOConfigError("rules need a non-empty name and metric")

    @property
    def bound(self) -> str:
        return "max" if self.max is not None else "min"

    @property
    def threshold(self) -> float:
        return self.max if self.max is not None else self.min

    def breaches(self, value: float) -> bool:
        if self.max is not None:
            return value > self.max
        return value < self.min

    def clears(self, value: float) -> bool:
        """Whether ``value`` resolves a *firing* rule (hysteresis band)."""
        if self.max is not None:
            return value <= self.max * (1.0 - self.hysteresis)
        return value >= self.min * (1.0 + self.hysteresis)

    @classmethod
    def from_dict(cls, data: dict) -> "SLORule":
        if not isinstance(data, dict):
            raise SLOConfigError(f"rule must be an object, got {data!r}")
        unknown = set(data) - _RULE_KEYS
        if unknown:
            raise SLOConfigError(
                f"rule {data.get('name', '?')!r}: unknown keys "
                f"{sorted(unknown)} (allowed: {sorted(_RULE_KEYS)})")
        try:
            return cls(
                name=str(data.get("name", "")),
                metric=str(data.get("metric", "")),
                max=None if data.get("max") is None else float(data["max"]),
                min=None if data.get("min") is None else float(data["min"]),
                for_seconds=float(data.get("for_seconds", 0.0)),
                hysteresis=float(data.get("hysteresis", 0.0)),
                severity=str(data.get("severity", "critical")),
                description=str(data.get("description", "")),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, SLOConfigError):
                raise
            raise SLOConfigError(
                f"rule {data.get('name', '?')!r}: {exc}") from None


@dataclass
class SLOStatus:
    """One rule's evaluation result at one instant."""

    rule: str
    metric: str
    state: str
    value: float | None
    threshold: float
    bound: str
    severity: str
    #: When the current breach started (None unless pending/firing).
    breach_since: float | None = None
    for_seconds: float = 0.0
    description: str = ""

    @property
    def firing(self) -> bool:
        return self.state == FIRING

    def message(self) -> str:
        rel = ">" if self.bound == "max" else "<"
        value = "absent" if self.value is None else f"{self.value:.4g}"
        text = (f"[{self.severity}] {self.rule}: {self.metric}={value} "
                f"{rel} {self.threshold:.4g} ({self.state})")
        if self.state in (PENDING, FIRING) and self.for_seconds > 0:
            text += f" sustained-for={self.for_seconds:.4g}s"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "state": self.state,
            "value": self.value,
            "threshold": self.threshold,
            "bound": self.bound,
            "severity": self.severity,
            "breach_since": self.breach_since,
            "for_seconds": self.for_seconds,
            "description": self.description,
        }


def load_rules(path: str | Path) -> list[SLORule]:
    """Load a JSON rule document (a list, or ``{"rules": [...]}``)."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SLOConfigError(f"{path}: not valid JSON ({exc})") from None
    if isinstance(document, dict):
        document = document.get("rules")
    if not isinstance(document, list):
        raise SLOConfigError(
            f"{path}: expected a JSON list of rules or an object with a "
            f"'rules' list")
    rules = [SLORule.from_dict(entry) for entry in document]
    names = [rule.name for rule in rules]
    duplicates = {n for n in names if names.count(n) > 1}
    if duplicates:
        raise SLOConfigError(
            f"{path}: duplicate rule names {sorted(duplicates)}")
    return rules


def threshold_rules(max_quarantine_rate: float | None = None,
                    max_divergence_rate: float | None = None,
                    min_throughput: float | None = None,
                    max_stalled_workers: float | None = None) -> list[SLORule]:
    """Compile the classic ad-hoc monitor flags into instantaneous rules."""
    rules = []
    if max_quarantine_rate is not None:
        rules.append(SLORule(name="quarantine-rate",
                             metric="campaign.quarantine_rate",
                             max=max_quarantine_rate))
    if max_divergence_rate is not None:
        rules.append(SLORule(name="divergence-rate",
                             metric="campaign.divergence_rate",
                             max=max_divergence_rate))
    if min_throughput is not None:
        rules.append(SLORule(name="throughput-floor",
                             metric="campaign.throughput",
                             min=min_throughput))
    if max_stalled_workers is not None:
        rules.append(SLORule(name="stalled-workers",
                             metric="workers.stalled",
                             max=max_stalled_workers))
    return rules


class SLOEngine:
    """Stateful rule evaluation over a stream of samples.

    Feed every sample through :meth:`evaluate`; the engine tracks each
    rule's breach window (for sustained-for) and firing state (for
    hysteresis).  ``ever_fired`` accumulates rules that fired at any
    point — the campaign exit gate.
    """

    def __init__(self, rules: list[SLORule]):
        self.rules = list(rules)
        self._breach_since: dict[str, float] = {}
        self._firing: set[str] = set()
        #: Rule names that reached FIRING at least once this run.
        self.ever_fired: set[str] = set()
        #: The most recent evaluation's statuses.
        self.statuses: list[SLOStatus] = []

    def evaluate(self, flat: dict[str, float],
                 now: float) -> list[SLOStatus]:
        """Evaluate every rule against one flat sample at time ``now``."""
        statuses = []
        for rule in self.rules:
            value = flat.get(rule.metric)
            status = SLOStatus(rule=rule.name, metric=rule.metric,
                               state=OK, value=value,
                               threshold=rule.threshold, bound=rule.bound,
                               severity=rule.severity,
                               for_seconds=rule.for_seconds,
                               description=rule.description)
            if value is None:
                # Absent metric: keep a firing rule firing (losing the
                # signal is not evidence of recovery), drop any pending
                # breach window.
                self._breach_since.pop(rule.name, None)
                status.state = FIRING if rule.name in self._firing else NO_DATA
                statuses.append(status)
                continue
            if rule.name in self._firing:
                if rule.clears(value):
                    self._firing.discard(rule.name)
                    self._breach_since.pop(rule.name, None)
                else:
                    status.state = FIRING
                    status.breach_since = self._breach_since.get(rule.name)
                statuses.append(status)
                continue
            if rule.breaches(value):
                since = self._breach_since.setdefault(rule.name, now)
                status.breach_since = since
                if now - since >= rule.for_seconds:
                    self._firing.add(rule.name)
                    self.ever_fired.add(rule.name)
                    status.state = FIRING
                else:
                    status.state = PENDING
            else:
                self._breach_since.pop(rule.name, None)
            statuses.append(status)
        self.statuses = statuses
        return statuses

    @property
    def firing(self) -> list[SLOStatus]:
        return [s for s in self.statuses if s.firing]

    def breached(self, severity: str = "critical") -> list[str]:
        """Names of rules of at least ``severity`` that ever fired."""
        floor = SEVERITIES.index(severity)
        by_name = {rule.name: rule for rule in self.rules}
        return sorted(
            name for name in self.ever_fired
            if SEVERITIES.index(by_name[name].severity) >= floor)


def evaluate_once(rules: list[SLORule],
                  flat: dict[str, float]) -> list[SLOStatus]:
    """One-shot evaluation with no history: ``for_seconds`` is honored
    as "fires immediately when 0, can only be pending otherwise"."""
    return SLOEngine(rules).evaluate(flat, now=0.0)
