"""Low-overhead counters and histograms with a global registry.

The large-scale fault-injection literature (PyTorchFI at scale,
TensorFlow FI studies) converges on the same requirement: per-injection
instrumentation must be cheap enough to leave on for millions of
experiments.  These metrics are built accordingly:

* a :class:`Counter` increment is one float add on a ``__slots__``
  instance;
* a :class:`Histogram` observation is one ``np.searchsorted`` into a
  precomputed bound array plus one integer bucket increment — no
  per-event allocation, ever (the buckets are a fixed ``int64`` array);
* the **disabled fast path**: :func:`set_metrics_enabled(False)` makes
  both operations a single module-flag check and return, so code can
  instrument unconditionally.

Metrics live in a process-global :class:`MetricsRegistry` so any layer
(engine scheduler, detector, recovery) can publish without plumbing; the
CLI ``profile`` subcommand and tests read :func:`metrics_snapshot`.
"""

from __future__ import annotations

import numpy as np

#: Module-level kill switch: the single check on every hot-path call.
_ENABLED = True


def set_metrics_enabled(enabled: bool) -> None:
    """Globally enable/disable counter and histogram updates."""
    global _ENABLED
    _ENABLED = bool(enabled)


def metrics_enabled() -> bool:
    return _ENABLED


#: Default histogram bounds: geometric decades from 1us to 100s, the
#: range of everything this codebase times (bucket edges in seconds).
DEFAULT_BOUNDS = tuple(float(b) for b in np.geomspace(1e-6, 100.0, 25))


class Counter:
    """A monotonically increasing scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def summary(self) -> dict:
        return {"type": "counter", "value": self.value}


class Histogram:
    """Fixed-bucket histogram over precomputed bounds.

    ``counts[i]`` holds observations in ``(bounds[i-1], bounds[i]]``;
    the first bucket is the underflow and the last the overflow, so
    every observation lands somewhere without branching.
    """

    __slots__ = ("name", "_bounds", "counts", "_sum", "_max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS):
        self.name = name
        self._bounds = np.asarray(bounds, dtype=np.float64)
        if self._bounds.size == 0 or np.any(np.diff(self._bounds) <= 0):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = np.zeros(self._bounds.size + 1, dtype=np.int64)
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        self.counts[int(np.searchsorted(self._bounds, value))] += 1
        self._sum += value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    @property
    def total(self) -> float:
        return self._sum

    def mean(self) -> float:
        n = self.count
        return self._sum / n if n else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q`` quantile."""
        n = self.count
        if n == 0:
            return 0.0
        rank = q * n
        cumulative = np.cumsum(self.counts)
        bucket = int(np.searchsorted(cumulative, rank, side="left"))
        if bucket >= self._bounds.size:
            return self._max
        return float(self._bounds[bucket])

    def reset(self) -> None:
        self.counts[:] = 0
        self._sum = 0.0
        self._max = 0.0

    def summary(self) -> dict:
        return {"type": "histogram", "count": self.count,
                "sum": self._sum, "mean": self.mean(), "max": self._max,
                "p50": self.quantile(0.5), "p99": self.quantile(0.99)}


class MetricsRegistry:
    """Name -> metric mapping with get-or-create semantics."""

    def __init__(self):
        self._metrics: dict[str, Counter | Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        elif not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, "
                            "not a Counter")
        return metric

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, bounds)
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, "
                            "not a Histogram")
        return metric

    def snapshot(self) -> dict[str, dict]:
        """Name -> summary dict for every registered metric."""
        return {name: metric.summary()
                for name, metric in sorted(self._metrics.items())}

    def reset(self) -> None:
        """Zero every metric (registrations are kept)."""
        for metric in self._metrics.values():
            metric.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)


#: The process-global registry all convenience accessors use.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create a counter in the global registry."""
    return REGISTRY.counter(name)


def histogram(name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> Histogram:
    """Get-or-create a histogram in the global registry."""
    return REGISTRY.histogram(name, bounds)


def metrics_snapshot() -> dict[str, dict]:
    """Summaries of every metric in the global registry."""
    return REGISTRY.snapshot()
