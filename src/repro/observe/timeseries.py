"""Live campaign telemetry: periodic samples in a bounded ring buffer.

Post-hoc analytics (``repro trace --analyze``, ``repro report``) answer
"what happened"; a multi-day campaign also needs "what is happening
*now*" — continuously, cheaply, and without touching the hot path.  The
large-scale FI literature (PyTorchFI at scale, the TF injector studies)
treats continuous campaign monitoring as a validation-efficiency
requirement, not a luxury.  This module provides the substrate:

* :class:`TelemetrySample` — one timestamped observation: campaign
  gauges (progress, throughput, ETA, rates), raw counter values from
  the :class:`~repro.observe.counters.MetricsRegistry`, histogram
  summaries (count/sum/mean/max/p50/p99), and the outcome tally;
* :func:`build_sample` — assemble a sample from the registry plus an
  engine :class:`~repro.engine.telemetry.ProgressSnapshot`; everything
  is read from *snapshots*, never from live training state, so the
  sampler thread cannot perturb the measured system;
* :func:`derive_rates` — per-second counter rates between consecutive
  samples (monotonic counters; a reset restarts the rate from zero);
* :class:`SeriesBuffer` — a bounded deque of samples (the ring);
* :class:`SeriesWriter` / :func:`read_series` — schema-versioned JSONL
  persistence next to the :class:`~repro.engine.store.ResultStore`,
  following the store/trace file conventions (header line, per-line
  flush, truncated-tail tolerance);
* :class:`TelemetrySampler` — a daemon thread that samples on an
  interval, derives rates, appends to the ring, persists, and feeds an
  optional :class:`~repro.observe.slo.SLOEngine`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.observe.counters import REGISTRY, MetricsRegistry

#: On-disk schema version of the series file.  Bump on incompatible
#: changes to the sample layout; readers reject unknown versions.
SERIES_SCHEMA_VERSION = 1

#: Record type tags (mirroring the store/trace conventions).
SERIES_HEADER = "header"
SERIES_SAMPLE = "sample"

#: Outcome labels that count as training divergence (the INF/NaN
#: classes of the Table 3 taxonomy).  Lives here so the monitor, the
#: sampler, and the SLO rules share one definition.
DIVERGENCE_OUTCOMES = frozenset({
    "immediate_inf_nan", "short_term_inf_nan", "latent_inf_nan"})


class SeriesFormatError(ValueError):
    """Raised for structurally invalid series files."""


def series_path(store_path: str | Path) -> Path:
    """The telemetry series file written next to a result store."""
    store_path = Path(store_path)
    return store_path.with_name(store_path.stem + ".series.jsonl")


@dataclass
class TelemetrySample:
    """One timestamped observation of a campaign's telemetry."""

    #: Wall-clock sample time (``time.time()``).
    t: float
    #: Instantaneous values: progress, throughput, rates, worker tallies.
    gauges: dict[str, float] = field(default_factory=dict)
    #: Raw cumulative values of every registry counter.
    counters: dict[str, float] = field(default_factory=dict)
    #: Registry histogram summaries (count/sum/mean/max/p50/p99).
    histograms: dict[str, dict] = field(default_factory=dict)
    #: Outcome label -> completed-experiment count.
    outcomes: dict[str, int] = field(default_factory=dict)
    #: Per-second counter rates derived against the previous sample.
    rates: dict[str, float] = field(default_factory=dict)

    def flat(self) -> dict[str, float]:
        """One flat ``metric name -> value`` view of the sample.

        This is the namespace SLO rules and exporters address:
        gauges keep their names, counters gain a ``counter.`` prefix,
        rates a ``rate.`` prefix, histogram fields flatten to
        ``<name>.<field>``, and outcome tallies to ``outcome.<label>``.
        """
        flat: dict[str, float] = dict(self.gauges)
        for name, value in self.counters.items():
            flat[f"counter.{name}"] = value
        for name, value in self.rates.items():
            flat[f"rate.{name}"] = value
        for name, summary in self.histograms.items():
            for key in ("count", "sum", "mean", "max", "p50", "p99"):
                if key in summary:
                    flat[f"{name}.{key}"] = float(summary[key])
        for label, count in self.outcomes.items():
            flat[f"outcome.{label}"] = float(count)
        return flat

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySample":
        return cls(t=float(data["t"]),
                   gauges=dict(data.get("gauges") or {}),
                   counters=dict(data.get("counters") or {}),
                   histograms=dict(data.get("histograms") or {}),
                   outcomes=dict(data.get("outcomes") or {}),
                   rates=dict(data.get("rates") or {}))


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and value == value \
        and value not in (float("inf"), float("-inf"))


def build_sample(progress=None, registry: MetricsRegistry | None = None,
                 now: float | None = None) -> TelemetrySample:
    """Assemble one sample from snapshots only (never live state).

    ``progress`` is an engine :class:`ProgressSnapshot` (or ``None``
    before the engine starts); ``registry`` defaults to the process
    -global :data:`~repro.observe.counters.REGISTRY`.
    """
    sample = TelemetrySample(t=time.time() if now is None else now)
    registry = REGISTRY if registry is None else registry
    for name, summary in registry.snapshot().items():
        if summary.get("type") == "counter":
            sample.counters[name] = float(summary["value"])
        elif summary.get("type") == "histogram":
            sample.histograms[name] = {
                k: v for k, v in summary.items() if k != "type"}
    if progress is not None:
        attempted = progress.done + progress.quarantined
        gauges = {
            "campaign.total": float(progress.total),
            "campaign.done": float(progress.done),
            "campaign.skipped": float(progress.skipped),
            "campaign.quarantined": float(progress.quarantined),
            "campaign.retries": float(progress.retries),
            "campaign.remaining": float(progress.remaining),
            "campaign.elapsed_seconds": float(progress.elapsed),
            "campaign.throughput": float(progress.throughput),
            "campaign.quarantine_rate": (
                progress.quarantined / attempted if attempted else 0.0),
        }
        if progress.eta is not None and _finite(progress.eta):
            gauges["campaign.eta_seconds"] = float(progress.eta)
        completed = sum(progress.breakdown.values())
        diverged = sum(count for outcome, count in progress.breakdown.items()
                       if outcome in DIVERGENCE_OUTCOMES)
        gauges["campaign.divergence_rate"] = (
            diverged / completed if completed else 0.0)
        workers = progress.workers
        gauges["workers.alive"] = float(len(workers))
        gauges["workers.busy"] = float(sum(
            w.busy_key is not None for w in workers.values()))
        gauges["workers.restarts"] = float(sum(
            w.restarts for w in workers.values()))
        gauges["workers.stalled"] = float(len(progress.stalled_workers()))
        sample.gauges.update(gauges)
        sample.outcomes = {k: int(v) for k, v in
                           sorted(progress.breakdown.items())}
    return sample


def derive_rates(previous: TelemetrySample | None,
                 current: TelemetrySample) -> dict[str, float]:
    """Per-second rates of every counter between two samples.

    Counters are monotonic; a value that *decreased* means the counter
    was reset (new process, explicit ``reset()``), in which case the
    rate restarts from the current value — the Prometheus convention.
    Without a previous sample (or with non-advancing time) there is no
    rate to derive.
    """
    if previous is None:
        return {}
    dt = current.t - previous.t
    if dt <= 0:
        return {}
    rates: dict[str, float] = {}
    for name, value in current.counters.items():
        before = previous.counters.get(name)
        if before is None:
            continue
        delta = value - before
        if delta < 0:  # counter reset: restart from the new value
            delta = value
        rates[name] = delta / dt
    return rates


class SeriesBuffer:
    """Bounded ring of :class:`TelemetrySample` (oldest evicted first)."""

    def __init__(self, maxlen: int = 720):
        if maxlen <= 0:
            raise ValueError("SeriesBuffer needs maxlen >= 1")
        self._samples: deque[TelemetrySample] = deque(maxlen=maxlen)

    @property
    def maxlen(self) -> int:
        return self._samples.maxlen

    def append(self, sample: TelemetrySample) -> None:
        self._samples.append(sample)

    def latest(self) -> TelemetrySample | None:
        return self._samples[-1] if self._samples else None

    def window(self, seconds: float,
               now: float | None = None) -> list[TelemetrySample]:
        """Samples no older than ``seconds`` before ``now``."""
        if now is None:
            latest = self.latest()
            now = latest.t if latest is not None else time.time()
        cutoff = now - seconds
        return [s for s in self._samples if s.t >= cutoff]

    def values(self, metric: str) -> list[tuple[float, float]]:
        """``(t, value)`` points of one flat metric across the ring."""
        points = []
        for sample in self._samples:
            value = sample.flat().get(metric)
            if value is not None:
                points.append((sample.t, value))
        return points

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(list(self._samples))


class SeriesWriter:
    """Append-only JSONL persistence for a telemetry series.

    Follows the result-store conventions: a schema-versioned header
    line, one flushed line per sample, and an existing file is replaced
    (a series is an observation log of *this* run, not a resumable
    artifact — the previous run's series is superseded).
    """

    def __init__(self, path: str | Path, meta: dict | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write({"record": SERIES_HEADER,
                     "schema": SERIES_SCHEMA_VERSION,
                     "kind": "telemetry_series",
                     "meta": dict(meta or {})})

    def _write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":"),
                                  sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, sample: TelemetrySample) -> None:
        self._write({"record": SERIES_SAMPLE, **sample.to_dict()})

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SeriesWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_series(path: str | Path) -> tuple[dict, list[TelemetrySample]]:
    """Parse a series file into ``(header, samples)``.

    A truncated final line (sampler killed mid-write) is silently
    dropped; malformed lines elsewhere are hard errors, and unknown
    schema versions are rejected.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise SeriesFormatError(f"{path}: empty series file")
    records: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines):
                break  # partial trailing write from a killed sampler
            raise SeriesFormatError(
                f"{path}:{lineno}: corrupt series record") from None
    if not records:
        raise SeriesFormatError(f"{path}: no parseable records")
    header = records[0]
    if header.get("record") != SERIES_HEADER:
        raise SeriesFormatError(
            f"{path}: first record is not a series header "
            f"(got {header.get('record')!r})")
    if header.get("schema") != SERIES_SCHEMA_VERSION:
        raise SeriesFormatError(
            f"{path}: series schema version {header.get('schema')!r} is "
            f"not supported (this build reads version "
            f"{SERIES_SCHEMA_VERSION})")
    samples = [TelemetrySample.from_dict(r) for r in records[1:]
               if r.get("record") == SERIES_SAMPLE]
    return header, samples


class TelemetrySampler:
    """Periodic sampling thread feeding the ring, disk, and SLO engine.

    ``provider`` is a zero-argument callable returning a fresh
    :class:`TelemetrySample`; it must only read snapshots (the engine's
    :meth:`~repro.engine.scheduler.CampaignEngine.progress`, the metric
    registry) so a slow scrape can never block training.  Provider
    errors are swallowed and counted (``errors``/``last_error``) — a
    telemetry hiccup must not sink a multi-day campaign.
    """

    def __init__(self, provider, interval: float = 1.0,
                 buffer: SeriesBuffer | None = None,
                 path: str | Path | None = None,
                 meta: dict | None = None,
                 slo_engine=None,
                 clock=time.time):
        if interval <= 0:
            raise ValueError("sampler interval must be positive")
        self.provider = provider
        self.interval = float(interval)
        self.buffer = buffer if buffer is not None else SeriesBuffer()
        self.slo_engine = slo_engine
        self._clock = clock
        self._writer = SeriesWriter(path, meta=meta) if path else None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples_taken = 0
        self.errors = 0
        self.last_error: str | None = None

    def sample_once(self) -> TelemetrySample | None:
        """Take one sample now; returns it (or ``None`` on error)."""
        try:
            sample = self.provider()
        except Exception as exc:  # noqa: BLE001 - telemetry must not kill runs
            self.errors += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            return None
        if sample is None:
            return None
        sample.rates = derive_rates(self.buffer.latest(), sample)
        self.buffer.append(sample)
        self.samples_taken += 1
        if self._writer is not None:
            try:
                self._writer.append(sample)
            except (OSError, ValueError) as exc:
                self.errors += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
        if self.slo_engine is not None:
            self.slo_engine.evaluate(sample.flat(), now=sample.t)
        return sample

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> "TelemetrySampler":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-telemetry-sampler")
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True, timeout: float = 2.0) -> None:
        """Stop the thread; takes one last sample so the series ends on
        the campaign's final state."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        if final_sample:
            self.sample_once()
        if self._writer is not None:
            self._writer.close()

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
