"""Merging per-worker trace shards into one campaign trace.

The campaign flight recorder has every engine worker stream its events
into a private shard file (``trace-worker<N>.jsonl`` next to the
:class:`~repro.engine.store.ResultStore`).  Shards are crash artifacts
by design — a worker killed on a timeout leaves a half-told story, a
retried unit appears in several shards, a resumed session adds new
shards next to old ones.  :func:`merge_traces` folds all of that into
one ordered, schema-versioned campaign trace:

* every event must carry an experiment ``key`` stamp (the worker's
  capture context); unkeyed events are dropped and counted;
* a unit that was attempted several times (worker restart, retry after
  a crash, resume re-execution) is deduplicated to **one attempt**: the
  first attempt carrying an ``experiment_finished`` marker with status
  ``done``, falling back to the last attempt seen (so a quarantined
  unit keeps its final, most-informative story);
* shards are read with the crash-tolerant reader, so a final line cut
  mid-write by a killed worker is recovered around;
* the merge is idempotent — the existing campaign trace can be re-fed
  as the first source and already-merged experiments keep their events
  and their order.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.observe.events import (
    EXPERIMENT_FINISHED,
    HEADER,
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    TraceFormatError,
)
from repro.observe.tracer import _json_default, read_trace

#: Filename prefix of per-worker shard files (next to the result store).
SHARD_PREFIX = "trace-worker"

#: Filename prefix of per-replica shard files streamed by the
#: multi-process backend's replica processes (next to the main trace).
REPLICA_SHARD_PREFIX = "trace-replica"


def shard_path(directory: str | Path, worker_id: int) -> Path:
    """The shard file a given engine worker streams into."""
    return Path(directory) / f"{SHARD_PREFIX}{worker_id}.jsonl"


def replica_shard_path(directory: str | Path, device: int) -> Path:
    """The shard file one backend replica process streams into."""
    return Path(directory) / f"{REPLICA_SHARD_PREFIX}{device}.jsonl"


def replica_trace_path(trace_path: str | Path) -> Path:
    """The merged per-replica trace written next to a main trace file."""
    trace_path = Path(trace_path)
    return trace_path.with_name(trace_path.stem + ".replicas.jsonl")


def shard_paths(directory: str | Path) -> list[Path]:
    """All worker shard files in ``directory``, sorted by worker id."""
    def worker_id(path: Path) -> int:
        stem = path.name[len(SHARD_PREFIX):-len(".jsonl")]
        return int(stem) if stem.isdigit() else 1 << 30

    return sorted(Path(directory).glob(f"{SHARD_PREFIX}*.jsonl"),
                  key=lambda p: (worker_id(p), p.name))


def campaign_trace_path(store_path: str | Path) -> Path:
    """The merged campaign trace written next to a result store."""
    store_path = Path(store_path)
    return store_path.with_name(store_path.stem + ".trace.jsonl")


@dataclass
class TraceMergeResult:
    """Accounting for one :func:`merge_traces` call."""

    dest: Path
    #: Number of experiments (distinct keys) in the merged trace.
    experiments: int = 0
    #: Total events written to the merged trace.
    events: int = 0
    #: Events dropped because they carried no experiment key stamp.
    unkeyed_dropped: int = 0
    #: Keys merged from an attempt that never finished (e.g. quarantined
    #: after repeated timeouts); their story may stop mid-experiment.
    incomplete: list[str] = field(default_factory=list)
    #: Sources skipped as unreadable (e.g. a shard whose header line was
    #: cut by a kill before the first flush).
    skipped_sources: list[Path] = field(default_factory=list)


@dataclass
class _Attempt:
    source: int
    first_seq: int
    complete: bool = False
    events: list[TraceEvent] = field(default_factory=list)


def merge_traces(sources: list[str | Path], dest: str | Path,
                 meta: dict | None = None) -> TraceMergeResult:
    """Merge trace shards into one ordered campaign trace at ``dest``.

    ``sources`` are read in order; to make the merge idempotent across
    resume sessions, pass the existing campaign trace as the first
    source (its experiments then win the per-key dedup and keep their
    position).  ``dest`` may be one of the sources — the output is
    written to a temporary file and atomically renamed over it.
    """
    dest = Path(dest)
    result = TraceMergeResult(dest=dest)
    # key -> list of attempts in encounter order.
    attempts: dict[str, list[_Attempt]] = {}
    for source_index, source in enumerate(sources):
        try:
            trace = read_trace(source)
        except TraceFormatError:
            result.skipped_sources.append(Path(source))
            continue
        per_key: dict[tuple[str, object], _Attempt] = {}
        for event in trace.events:
            key = event.data.get("key")
            if not isinstance(key, str):
                result.unkeyed_dropped += 1
                continue
            attempt_id = (key, event.data.get("attempt"))
            attempt = per_key.get(attempt_id)
            if attempt is None:
                attempt = _Attempt(source=source_index, first_seq=event.seq)
                per_key[attempt_id] = attempt
                attempts.setdefault(key, []).append(attempt)
            attempt.events.append(event)
            if event.type == EXPERIMENT_FINISHED and \
                    event.data.get("status") == "done":
                attempt.complete = True

    # Per-key winner: first complete attempt, else the last attempt seen.
    winners: dict[str, _Attempt] = {}
    for key, candidates in attempts.items():
        winner = next((a for a in candidates if a.complete), candidates[-1])
        winners[key] = winner
        if not winner.complete:
            result.incomplete.append(key)
    ordered_keys = sorted(winners,
                          key=lambda k: (winners[k].source,
                                         winners[k].first_seq))

    merged_meta = {"merged_sources": len(sources),
                   "experiments": len(ordered_keys), **(meta or {})}
    total_events = sum(len(winners[k].events) for k in ordered_keys)
    tmp = dest.with_name(dest.name + ".tmp")
    tmp.parent.mkdir(parents=True, exist_ok=True)
    with open(tmp, "w", encoding="utf-8") as fh:
        header = {"record": HEADER, "schema": TRACE_SCHEMA_VERSION,
                  "kind": "trace", "meta": merged_meta,
                  "emitted": total_events, "dropped": 0}
        fh.write(json.dumps(header, separators=(",", ":"),
                            default=_json_default) + "\n")
        seq = 0
        for key in ordered_keys:
            for event in winners[key].events:
                record = event.to_record()
                record["seq"] = seq
                seq += 1
                fh.write(json.dumps(record, separators=(",", ":"),
                                    default=_json_default) + "\n")
    os.replace(tmp, dest)
    result.experiments = len(ordered_keys)
    result.events = total_events
    result.incomplete.sort()
    return result


def _store_header_meta(store_path: Path) -> dict | None:
    """The result store's header ``meta``, read without importing the
    engine (observe must stay importable below it).  ``None`` when the
    store is missing or its header is unreadable."""
    try:
        with open(store_path, encoding="utf-8") as fh:
            first = fh.readline()
        header = json.loads(first)
    except (OSError, ValueError):
        return None
    meta = header.get("meta") if isinstance(header, dict) else None
    return meta if isinstance(meta, dict) else None


def merge_campaign_shards(store_path: str | Path,
                          remove_shards: bool = True) -> TraceMergeResult | None:
    """Fold worker shards next to ``store_path`` into the campaign trace.

    Sources are the existing campaign trace (if any) followed by every
    ``trace-worker*.jsonl`` shard in the store's directory; consumed
    shards are deleted afterwards unless ``remove_shards`` is False.
    Returns ``None`` when there is nothing to merge (no shards and no
    existing trace).  The store's header meta (workload, seed, campaign
    config) is embedded as ``store_meta`` so the merged trace is a
    self-contained replay record.
    """
    store_path = Path(store_path)
    dest = campaign_trace_path(store_path)
    shards = shard_paths(store_path.parent)
    sources: list[Path] = [dest] if dest.exists() else []
    sources.extend(shards)
    if not sources:
        return None
    meta: dict = {"store": store_path.name}
    store_meta = _store_header_meta(store_path)
    if store_meta is not None:
        meta["store_meta"] = store_meta
    result = merge_traces(sources, dest, meta=meta)
    if remove_shards:
        for shard in shards:
            try:
                shard.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    return result
