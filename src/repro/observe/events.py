"""Typed trace events: the vocabulary of the observability layer.

Every experiment in the paper is characterized by *when* things happened
relative to the fault: the injection itself, the iteration statistics
that carry the necessary conditions (optimizer-history and BatchNorm
moving-statistic extrema, Table 4), the detector firing (Sec. 5.1), the
recovery rollback (Sec. 5.2), and divergence to INFs/NaNs.  Those are
the canonical event types; the campaign engine adds two scheduler-level
types so a single trace can cover a whole campaign.

Events are plain records (type + iteration + payload dict) so emitting
one costs a single small allocation and exporting one is a single
``json.dumps``.  The on-disk format mirrors the engine's
:class:`~repro.engine.store.ResultStore` conventions: a schema-versioned
header line followed by one record per line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Current trace schema version.  Bump on any incompatible change to the
#: event record layout; readers reject versions they do not understand.
TRACE_SCHEMA_VERSION = 1

#: Record type tags (header matches the ResultStore convention).
HEADER = "header"
EVENT = "event"

# ----------------------------------------------------------------------
# Event types
# ----------------------------------------------------------------------
#: A fault model perturbed a tensor (data: device, site, kind, ff
#: category, num_faulty, max_abs_faulty).
FAULT_INJECTED = "fault_injected"
#: The bound-checking detector observed a violation (data: condition,
#: magnitude, bound).
DETECTOR_FIRED = "detector_fired"
#: The recovery manager rewound training state (data: resume_iteration,
#: strategy, recoveries).
ROLLBACK = "rollback"
#: Per-iteration convergence statistics (data: loss, acc, and the
#: necessary-condition extrema history_magnitude / mvar_magnitude).
ITERATION_STATS = "iteration_stats"
#: The training state became non-finite (data: loss).
DIVERGENCE = "divergence"
#: Engine scheduler: one experiment completed (data: key, outcome).
EXPERIMENT_COMPLETED = "experiment_completed"
#: Engine scheduler: one experiment exhausted its retries (data: key,
#: error).
EXPERIMENT_QUARANTINED = "experiment_quarantined"
#: Engine worker: one attempt of an experiment began executing (data:
#: key, worker, attempt — the shard-capture context stamp).
EXPERIMENT_STARTED = "experiment_started"
#: Engine worker: one attempt finished (data: key, worker, attempt,
#: status "done"/"error", plus outcome or error).  The shard merge uses
#: this marker to pick the completed attempt when a unit was retried.
EXPERIMENT_FINISHED = "experiment_finished"
#: Multi-process backend, replica side: one device completed its share
#: of a synchronous iteration (data: device, loss, acc).  Streamed into
#: per-replica shard files and merged like worker shards.
REPLICA_STEP = "replica_step"
#: Multi-process backend, parent side: a replica exceeded the collective
#: timeout but the collective is still waiting (data: device, phase,
#: waited, timeout).
STRAGGLER_DETECTED = "straggler_detected"
#: Multi-process backend, parent side: a replica process died
#: mid-collective; the trainer aborts with the ReplicaLost outcome
#: (data: device, phase).
REPLICA_LOST = "replica_lost"

#: Every known event type; :meth:`Tracer.emit` rejects others so trace
#: consumers can rely on a closed vocabulary.
EVENT_TYPES = frozenset({
    FAULT_INJECTED,
    DETECTOR_FIRED,
    ROLLBACK,
    ITERATION_STATS,
    DIVERGENCE,
    EXPERIMENT_COMPLETED,
    EXPERIMENT_QUARANTINED,
    EXPERIMENT_STARTED,
    EXPERIMENT_FINISHED,
    REPLICA_STEP,
    STRAGGLER_DETECTED,
    REPLICA_LOST,
})


class TraceSchemaError(ValueError):
    """Raised for traces written with an unknown or missing schema."""


class TraceFormatError(ValueError):
    """Raised for structurally invalid trace files (not schema drift)."""


@dataclass
class TraceEvent:
    """One structured observation.

    ``seq`` is the tracer's monotonically increasing emission counter
    (it keeps ordering unambiguous even when the ring buffer drops the
    oldest events), ``t`` is seconds since the tracer was created, and
    ``iteration`` is the training iteration the event refers to (``None``
    for scheduler-level events).
    """

    type: str
    seq: int
    t: float
    iteration: int | None = None
    data: dict = field(default_factory=dict)

    def to_record(self) -> dict:
        """The JSONL line payload for this event."""
        record = {"record": EVENT, "type": self.type, "seq": self.seq,
                  "t": round(self.t, 6)}
        if self.iteration is not None:
            record["iteration"] = self.iteration
        if self.data:
            record["data"] = self.data
        return record

    @classmethod
    def from_record(cls, record: dict) -> "TraceEvent":
        """Rebuild an event from a parsed JSONL record."""
        event_type = record.get("type")
        if not isinstance(event_type, str):
            raise TraceFormatError(f"event record without a type: {record!r}")
        return cls(
            type=event_type,
            seq=int(record.get("seq", 0)),
            t=float(record.get("t", 0.0)),
            iteration=(int(record["iteration"])
                       if record.get("iteration") is not None else None),
            data=record.get("data") or {},
        )

    def render(self) -> str:
        """One human-readable line, for the CLI ``trace`` subcommand."""
        where = f"it {self.iteration:>4}" if self.iteration is not None else "      -"
        detail = " ".join(f"{k}={_fmt(v)}" for k, v in self.data.items())
        return f"[{self.t:10.4f}s] {where}  {self.type:<22} {detail}".rstrip()


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
