"""Exposition formats for telemetry samples.

A :class:`~repro.observe.timeseries.TelemetrySample` renders two ways:

* :func:`render_prometheus` — Prometheus/OpenMetrics text exposition
  (the ``/metrics`` endpoint of :mod:`repro.serve`), with counters as
  ``*_total``, gauges verbatim, registry histograms as summaries
  (quantile-labelled series plus ``_sum``/``_count``), and the outcome
  taxonomy as one labelled counter family;
* :func:`render_json` — a deterministic JSON document (sorted keys,
  wall-clock timestamp isolated in one field) for machine diffing.

:func:`validate_exposition` is the parser the tests and the CI smoke
step use to prove every scrape is well-formed: it accepts exactly the
line shapes Prometheus' text format defines and returns the parsed
samples.
"""

from __future__ import annotations

import json
import re

from repro.observe.timeseries import TelemetrySample

#: Every exported metric family is prefixed with this namespace.
PROMETHEUS_PREFIX = "repro"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: One exposition sample line: ``name{labels} value [timestamp]``.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?\d+))?$")

_LABEL_PAIR = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')

_COMMENT_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def metric_name(name: str, prefix: str = PROMETHEUS_PREFIX) -> str:
    """A dotted repro metric name as a valid Prometheus metric name."""
    flat = _SANITIZE.sub("_", name.strip())
    if prefix:
        flat = f"{prefix}_{flat}"
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(sample: TelemetrySample | None,
                      prefix: str = PROMETHEUS_PREFIX) -> str:
    """Render one sample as Prometheus text exposition (format 0.0.4).

    Deterministic: families are emitted in sorted order, so two
    renderings of the same sample are byte-identical.  ``sample=None``
    (a scrape before the first sample lands) still yields a valid
    exposition carrying only the ``<prefix>_up`` gauge.
    """
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str | None = None) -> str:
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        return name

    up = family(metric_name("up", prefix), "gauge",
                "1 while the telemetry endpoint is live")
    lines.append(f"{up} 1")
    if sample is None:
        return "\n".join(lines) + "\n"

    ts = family(metric_name("sample_timestamp_seconds", prefix), "gauge",
                "wall-clock time of the exposed sample")
    lines.append(f"{ts} {_format_value(sample.t)}")

    for name in sorted(sample.gauges):
        fam = family(metric_name(name, prefix), "gauge")
        lines.append(f"{fam} {_format_value(sample.gauges[name])}")

    if sample.outcomes:
        fam = family(metric_name("campaign.outcome", prefix) + "_total",
                     "counter", "completed experiments per Table 3 outcome")
        for label in sorted(sample.outcomes):
            lines.append(f'{fam}{{outcome="{_escape_label(label)}"}} '
                         f"{_format_value(sample.outcomes[label])}")

    for name in sorted(sample.counters):
        fam = family(metric_name(name, prefix) + "_total", "counter")
        lines.append(f"{fam} {_format_value(sample.counters[name])}")

    for name in sorted(sample.rates):
        fam = family(metric_name(name, prefix) + "_rate", "gauge",
                     "per-second rate derived between consecutive samples")
        lines.append(f"{fam} {_format_value(sample.rates[name])}")

    for name in sorted(sample.histograms):
        summary = sample.histograms[name]
        fam = family(metric_name(name, prefix), "summary")
        for q_key, q_label in (("p50", "0.5"), ("p99", "0.99")):
            if q_key in summary:
                lines.append(f'{fam}{{quantile="{q_label}"}} '
                             f"{_format_value(summary[q_key])}")
        if "sum" in summary:
            lines.append(f"{fam}_sum {_format_value(summary['sum'])}")
        if "count" in summary:
            lines.append(f"{fam}_count {_format_value(summary['count'])}")
    return "\n".join(lines) + "\n"


def render_json(sample: TelemetrySample | None,
                meta: dict | None = None) -> dict:
    """A deterministic JSON document for one sample.

    Key order is stable (callers dump with ``sort_keys=True``) and the
    wall-clock stamp is isolated in ``t`` so consumers can strip it for
    byte-diffing two snapshots of the same state.
    """
    if sample is None:
        return {"schema": 1, "meta": dict(meta or {}), "sample": None}
    return {
        "schema": 1,
        "meta": dict(meta or {}),
        "t": sample.t,
        "sample": {
            "gauges": dict(sorted(sample.gauges.items())),
            "counters": dict(sorted(sample.counters.items())),
            "rates": dict(sorted(sample.rates.items())),
            "histograms": {k: dict(sorted(v.items()))
                           for k, v in sorted(sample.histograms.items())},
            "outcomes": dict(sorted(sample.outcomes.items())),
        },
    }


def dumps_json(sample: TelemetrySample | None,
               meta: dict | None = None) -> str:
    return json.dumps(render_json(sample, meta), indent=2, sort_keys=True)


def validate_exposition(text: str) -> list[tuple[str, dict, float]]:
    """Parse a Prometheus text exposition; raise ``ValueError`` if
    malformed.  Returns ``(name, labels, value)`` per sample line —
    the checker the scrape tests and the CI smoke step rely on.
    """
    parsed: list[tuple[str, dict, float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment: {line!r}")
            if not _NAME_OK.match(parts[2]):
                raise ValueError(
                    f"line {lineno}: invalid metric name {parts[2]!r}")
            if parts[1] == "TYPE" and (
                    len(parts) != 4 or parts[3] not in _COMMENT_TYPES):
                raise ValueError(f"line {lineno}: invalid TYPE: {line!r}")
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for pair in _split_labels(raw, lineno):
                pair_match = _LABEL_PAIR.match(pair)
                if pair_match is None:
                    raise ValueError(
                        f"line {lineno}: malformed label {pair!r}")
                labels[pair_match.group("key")] = pair_match.group("value")
        value = match.group("value")
        try:
            parsed.append((match.group("name"), labels,
                           float(value.replace("+Inf", "inf")
                                 .replace("-Inf", "-inf"))))
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparseable value {value!r}") from None
    if not parsed:
        raise ValueError("exposition carries no samples")
    return parsed


def _split_labels(raw: str, lineno: int) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pairs, current, in_quotes, escaped = [], [], False, False
    for ch in raw:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        pairs.append("".join(current))
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value")
    return [p.strip() for p in pairs if p.strip()]
