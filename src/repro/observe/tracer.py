"""The Tracer: a bounded ring buffer of structured events.

Design constraints, in order:

1. **Numerically invisible** — the tracer only ever *reads* values the
   training loop already computed; ``tests/test_golden_traces.py`` pins
   traced and untraced runs to bit-identical convergence records.
2. **Near-zero cost** — ``emit`` on a disabled tracer is one attribute
   load and a return; enabled, it is one dataclass allocation and a
   ``deque.append`` (the ring drops the oldest event once full, so a
   runaway trace cannot exhaust memory).  The overhead budget is pinned
   by ``benchmarks/bench_observe_overhead.py`` (<=5% per iteration on
   the 8-device trainer).
3. **Durable** — :meth:`export` writes the ring as schema-versioned
   JSONL following the :class:`~repro.engine.store.ResultStore`
   conventions (header line, one record per line, flush per line), and
   :func:`read_trace` recovers every complete event from a file whose
   writer was killed mid-line, reporting the truncation.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

import numpy as np

from repro.observe.events import (
    EVENT,
    EVENT_TYPES,
    HEADER,
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    TraceFormatError,
    TraceSchemaError,
)


def _json_default(value):
    """Make numpy scalars/arrays JSON-safe without touching the hot path."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


class Tracer:
    """Bounded, typed event buffer with JSONL export.

    One tracer serves a whole experiment: the trainer, the injector, the
    detector, the recovery manager, and the campaign engine all emit
    into it, so the resulting trace is a single ordered story of the
    experiment.  ``enabled=False`` turns :meth:`emit` into a no-op
    (:data:`NULL_TRACER` is the shared always-disabled instance every
    component defaults to).
    """

    def __init__(self, capacity: int = 65536, enabled: bool = True,
                 meta: dict | None = None, clock=time.perf_counter,
                 stream: str | Path | None = None):
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1: {capacity}")
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        self.meta = dict(meta or {})
        self._clock = clock
        self._start = clock()
        self._ring: deque[TraceEvent] = deque(maxlen=self.capacity)
        #: Total events emitted (including ones the ring has dropped).
        self.emitted = 0
        #: Context stamp merged under every emitted event's data (the
        #: engine workers stamp key/worker/attempt here so shard events
        #: stay attributable after the merge).
        self._context: dict = {}
        #: Streaming sink: when a path is given, the header is written
        #: immediately and every event is appended + flushed as it is
        #: emitted, so a killed process loses at most the line in flight
        #: (the shard files of the campaign flight recorder).
        self.stream_path = Path(stream) if stream is not None else None
        self._stream_fh = None
        if self.stream_path is not None:
            self.stream_path.parent.mkdir(parents=True, exist_ok=True)
            self._stream_fh = open(self.stream_path, "w", encoding="utf-8")
            header = {"record": HEADER, "schema": TRACE_SCHEMA_VERSION,
                      "kind": "trace", "meta": self.meta}
            self._stream_fh.write(
                json.dumps(header, separators=(",", ":"),
                           default=_json_default) + "\n")
            self._stream_fh.flush()

    # ------------------------------------------------------------------
    # Emission (the hot path)
    # ------------------------------------------------------------------
    def emit(self, event_type: str, iteration: int | None = None,
             **data) -> TraceEvent | None:
        """Record one event; returns it, or ``None`` when disabled."""
        if not self.enabled:
            return None
        if event_type not in EVENT_TYPES:
            raise ValueError(
                f"unknown trace event type {event_type!r}; known: "
                f"{sorted(EVENT_TYPES)}")
        if self._context:
            data = {**self._context, **data}
        event = TraceEvent(type=event_type, seq=self.emitted,
                           t=self._clock() - self._start,
                           iteration=iteration, data=data)
        self.emitted += 1
        self._ring.append(event)
        if self._stream_fh is not None:
            self._stream_fh.write(
                json.dumps(event.to_record(), separators=(",", ":"),
                           default=_json_default) + "\n")
            self._stream_fh.flush()
        return event

    # ------------------------------------------------------------------
    # Context stamping
    # ------------------------------------------------------------------
    def set_context(self, **context) -> None:
        """Stamp ``context`` under every subsequent event's data.

        Explicit ``emit`` keyword arguments win over the context on
        collision.  Used by engine workers to tag events with the
        experiment key / worker id / attempt they belong to."""
        self._context = dict(context)

    def clear_context(self) -> None:
        self._context = {}

    # ------------------------------------------------------------------
    # Streaming lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the streaming sink, if any (buffered events remain)."""
        if self._stream_fh is not None and not self._stream_fh.closed:
            self._stream_fh.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events the ring has evicted to stay within capacity."""
        return self.emitted - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def events(self, event_type: str | None = None,
               min_iteration: int | None = None,
               max_iteration: int | None = None) -> list[TraceEvent]:
        """Buffered events, optionally filtered by type and iteration."""
        out = []
        for event in self._ring:
            if event_type is not None and event.type != event_type:
                continue
            if min_iteration is not None and (
                    event.iteration is None or event.iteration < min_iteration):
                continue
            if max_iteration is not None and (
                    event.iteration is None or event.iteration > max_iteration):
                continue
            out.append(event)
        return out

    def type_counts(self) -> dict[str, int]:
        """Buffered event count per type (for summaries)."""
        counts: dict[str, int] = {}
        for event in self._ring:
            counts[event.type] = counts.get(event.type, 0) + 1
        return counts

    def clear(self) -> None:
        self._ring.clear()
        self.emitted = 0
        self._start = self._clock()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self, path: str | Path, meta: dict | None = None) -> int:
        """Write the buffered events as JSONL; returns the event count.

        Line 1 is a header record carrying the schema version and
        metadata (tracer meta merged with ``meta``, plus emitted/dropped
        accounting); each following line is one event record, flushed
        per line so a killed writer loses at most the line in flight.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        merged_meta = {**self.meta, **(meta or {})}
        count = 0
        with open(path, "w", encoding="utf-8") as fh:
            header = {"record": HEADER, "schema": TRACE_SCHEMA_VERSION,
                      "kind": "trace", "meta": merged_meta,
                      "emitted": self.emitted, "dropped": self.dropped}
            fh.write(json.dumps(header, separators=(",", ":"),
                                default=_json_default) + "\n")
            for event in self._ring:
                fh.write(json.dumps(event.to_record(), separators=(",", ":"),
                                    default=_json_default) + "\n")
                fh.flush()
                count += 1
        return count


#: The shared always-disabled tracer every component defaults to, so the
#: untraced hot path pays exactly one attribute check per emit call.
NULL_TRACER = Tracer(capacity=1, enabled=False)

#: Process-wide "current" tracer.  Engine workers install their shard
#: tracer here after the fork; components that build their own trainers
#: deep inside a worker (e.g. ``Campaign.run_experiment``) pick it up
#: without the payload-agnostic engine having to thread it through.
_CURRENT_TRACER: Tracer = NULL_TRACER


def set_current_tracer(tracer: Tracer | None) -> Tracer:
    """Install the process-wide current tracer; returns the previous one.

    Passing ``None`` resets to :data:`NULL_TRACER`."""
    global _CURRENT_TRACER
    previous = _CURRENT_TRACER
    _CURRENT_TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


def current_tracer() -> Tracer:
    """The process-wide current tracer (default: :data:`NULL_TRACER`)."""
    return _CURRENT_TRACER


class TraceFile:
    """A parsed trace: header metadata plus the recovered events."""

    def __init__(self, path: Path, meta: dict, events: list[TraceEvent],
                 emitted: int, dropped: int, truncated: bool):
        self.path = path
        self.meta = meta
        self.events = events
        #: Emission accounting recorded by the writer at export time.
        self.emitted = emitted
        self.dropped = dropped
        #: True when the final line was cut mid-write (killed writer);
        #: every complete event before it has still been recovered.
        self.truncated = truncated

    def __len__(self) -> int:
        return len(self.events)

    def type_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return counts


def read_trace(path: str | Path) -> TraceFile:
    """Parse a trace file, validating the header schema.

    Mirrors :func:`repro.engine.store.read_records`: a truncated final
    line (a writer killed mid-stream) is recovered *around* — all
    complete events are returned and :attr:`TraceFile.truncated` is set
    — while a malformed line anywhere else is a hard error.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise TraceFormatError(f"{path}: empty trace file")
    records: list[dict] = []
    truncated = False
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines):
                truncated = True
                break  # partial trailing write from a killed run
            raise TraceFormatError(
                f"{path}:{lineno}: corrupt trace record") from None
    if not records:
        raise TraceFormatError(f"{path}: no parseable records")
    header = records[0]
    if header.get("record") != HEADER or header.get("kind") != "trace":
        raise TraceFormatError(
            f"{path}: first record is not a trace header "
            f"(got record={header.get('record')!r} kind={header.get('kind')!r})")
    schema = header.get("schema")
    if schema != TRACE_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"{path}: trace schema version {schema!r} is not supported "
            f"(this build reads version {TRACE_SCHEMA_VERSION})")
    events = []
    for record in records[1:]:
        if record.get("record") == EVENT:
            events.append(TraceEvent.from_record(record))
    return TraceFile(path=path, meta=header.get("meta") or {}, events=events,
                     emitted=int(header.get("emitted", len(events))),
                     dropped=int(header.get("dropped", 0)),
                     truncated=truncated)
