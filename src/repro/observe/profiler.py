"""Wall-clock profiling scopes for the training/engine hot paths.

``profile_scope(name)`` wraps a code region::

    with profile_scope("sync.grad_average"):
        ...

When profiling is disabled (the default) the call returns a shared
no-op scope: the whole cost is one flag check and a ``with`` on an
object whose ``__enter__``/``__exit__`` do nothing.  Enabled, each entry
costs two ``perf_counter`` reads and a handful of float updates on a
``__slots__`` accumulator — cheap enough to leave in the per-iteration
paths it instruments (fused optimizer step, gradient averaging, weight
broadcast, snapshot capture/restore, engine experiment execution).

The accumulators live in a process-global :class:`Profiler` that the CLI
``profile`` subcommand renders; forked engine workers inherit an empty
copy, so parent-side reports cover parent-side work (scheduling) and a
worker's report covers its own experiments.
"""

from __future__ import annotations

import time


class ProfileStat:
    """Accumulated timings of one named scope."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {"scope": self.name, "count": self.count,
                "total_s": self.total, "mean_us": self.mean() * 1e6,
                "min_us": (self.min if self.count else 0.0) * 1e6,
                "max_us": self.max * 1e6}


class _Scope:
    """A live timing scope (one per entry; reused stats)."""

    __slots__ = ("_stat", "_t0")

    def __init__(self, stat: ProfileStat):
        self._stat = stat
        self._t0 = 0.0

    def __enter__(self) -> "_Scope":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._stat.add(time.perf_counter() - self._t0)


class _NullScope:
    """The shared do-nothing scope returned while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SCOPE = _NullScope()


class Profiler:
    """Registry of named :class:`ProfileStat` accumulators."""

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._stats: dict[str, ProfileStat] = {}

    def scope(self, name: str):
        if not self.enabled:
            return _NULL_SCOPE
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = ProfileStat(name)
        return _Scope(stat)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._stats.clear()

    def stats(self) -> dict[str, ProfileStat]:
        return dict(self._stats)

    def report(self) -> list[dict]:
        """Per-scope summaries, hottest (largest total time) first."""
        return sorted((stat.summary() for stat in self._stats.values()),
                      key=lambda row: -row["total_s"])


#: The process-global profiler every ``profile_scope`` call uses.
PROFILER = Profiler()


def profile_scope(name: str):
    """A timing scope in the global profiler (no-op while disabled)."""
    return PROFILER.scope(name)


def render_profile(report: list[dict] | None = None) -> str:
    """Text table of hot-path timings (CLI ``profile`` output)."""
    rows = PROFILER.report() if report is None else report
    if not rows:
        return "no profile samples recorded (is profiling enabled?)"
    widths = {"scope": max(len("scope"), *(len(r["scope"]) for r in rows))}
    lines = [
        f"{'scope':<{widths['scope']}}  {'calls':>8}  {'total_s':>10}  "
        f"{'mean_us':>10}  {'min_us':>10}  {'max_us':>10}"
    ]
    for row in rows:
        lines.append(
            f"{row['scope']:<{widths['scope']}}  {row['count']:>8}  "
            f"{row['total_s']:>10.4f}  {row['mean_us']:>10.1f}  "
            f"{row['min_us']:>10.1f}  {row['max_us']:>10.1f}"
        )
    return "\n".join(lines)
