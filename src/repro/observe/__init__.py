"""Unified observability layer: tracing, counters, and profiling.

Every empirical claim reproduced from the paper rests on observing what
a fault does iteration by iteration — the Fig. 4/5 propagation stories,
the Table 4 necessary conditions, and the Sec. 5 detection latencies.
This subsystem gives all of that one backbone instead of per-benchmark
plumbing:

* :class:`Tracer` — typed, structured events (``fault_injected``,
  ``detector_fired``, ``rollback``, ``iteration_stats``, ``divergence``,
  plus two engine-level types) in a bounded ring buffer with
  schema-versioned JSONL export and a crash-tolerant reader;
* :mod:`~repro.observe.counters` — numpy-backed counters/histograms in a
  global registry, with a single-flag disabled fast path;
* :func:`profile_scope` — wall-clock scopes on the hot paths (optimizer
  step, gradient averaging, broadcast, snapshot capture/restore, engine
  experiment execution), rendered by the CLI ``profile`` subcommand.

The layer is *numerically invisible* (it only reads already-computed
values; pinned by ``tests/test_golden_traces.py``) and cheap enough to
leave on (pinned by ``benchmarks/bench_observe_overhead.py``).
"""

from repro.observe.counters import (
    Counter,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    histogram,
    metrics_enabled,
    metrics_snapshot,
    set_metrics_enabled,
)
from repro.observe.events import (
    DETECTOR_FIRED,
    DIVERGENCE,
    EVENT_TYPES,
    EXPERIMENT_COMPLETED,
    EXPERIMENT_FINISHED,
    EXPERIMENT_QUARANTINED,
    EXPERIMENT_STARTED,
    FAULT_INJECTED,
    ITERATION_STATS,
    REPLICA_LOST,
    REPLICA_STEP,
    ROLLBACK,
    STRAGGLER_DETECTED,
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    TraceFormatError,
    TraceSchemaError,
)
from repro.observe.export import (
    dumps_json,
    metric_name,
    render_json,
    render_prometheus,
    validate_exposition,
)
from repro.observe.merge import (
    REPLICA_SHARD_PREFIX,
    SHARD_PREFIX,
    TraceMergeResult,
    campaign_trace_path,
    merge_campaign_shards,
    merge_traces,
    replica_shard_path,
    replica_trace_path,
    shard_path,
    shard_paths,
)
from repro.observe.profiler import (
    PROFILER,
    ProfileStat,
    Profiler,
    profile_scope,
    render_profile,
)
from repro.observe.slo import (
    SLOConfigError,
    SLOEngine,
    SLORule,
    SLOStatus,
    evaluate_once,
    load_rules,
    threshold_rules,
)
from repro.observe.timeseries import (
    DIVERGENCE_OUTCOMES,
    SERIES_SCHEMA_VERSION,
    SeriesBuffer,
    SeriesFormatError,
    SeriesWriter,
    TelemetrySample,
    TelemetrySampler,
    build_sample,
    derive_rates,
    read_series,
    series_path,
)
from repro.observe.tracer import (
    NULL_TRACER,
    TraceFile,
    Tracer,
    current_tracer,
    read_trace,
    set_current_tracer,
)

__all__ = [
    "DETECTOR_FIRED",
    "DIVERGENCE",
    "DIVERGENCE_OUTCOMES",
    "EVENT_TYPES",
    "EXPERIMENT_COMPLETED",
    "EXPERIMENT_FINISHED",
    "EXPERIMENT_QUARANTINED",
    "EXPERIMENT_STARTED",
    "FAULT_INJECTED",
    "ITERATION_STATS",
    "NULL_TRACER",
    "PROFILER",
    "REGISTRY",
    "REPLICA_LOST",
    "REPLICA_SHARD_PREFIX",
    "REPLICA_STEP",
    "ROLLBACK",
    "SERIES_SCHEMA_VERSION",
    "SHARD_PREFIX",
    "SLOConfigError",
    "SLOEngine",
    "SLORule",
    "SLOStatus",
    "STRAGGLER_DETECTED",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ProfileStat",
    "Profiler",
    "SeriesBuffer",
    "SeriesFormatError",
    "SeriesWriter",
    "TelemetrySample",
    "TelemetrySampler",
    "TraceEvent",
    "TraceFile",
    "TraceFormatError",
    "TraceMergeResult",
    "TraceSchemaError",
    "Tracer",
    "build_sample",
    "campaign_trace_path",
    "counter",
    "current_tracer",
    "derive_rates",
    "dumps_json",
    "evaluate_once",
    "histogram",
    "load_rules",
    "metric_name",
    "merge_campaign_shards",
    "merge_traces",
    "metrics_enabled",
    "metrics_snapshot",
    "profile_scope",
    "read_series",
    "read_trace",
    "render_json",
    "render_profile",
    "render_prometheus",
    "replica_shard_path",
    "replica_trace_path",
    "series_path",
    "set_current_tracer",
    "set_metrics_enabled",
    "shard_path",
    "shard_paths",
    "threshold_rules",
    "validate_exposition",
]
