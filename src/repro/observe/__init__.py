"""Unified observability layer: tracing, counters, and profiling.

Every empirical claim reproduced from the paper rests on observing what
a fault does iteration by iteration — the Fig. 4/5 propagation stories,
the Table 4 necessary conditions, and the Sec. 5 detection latencies.
This subsystem gives all of that one backbone instead of per-benchmark
plumbing:

* :class:`Tracer` — typed, structured events (``fault_injected``,
  ``detector_fired``, ``rollback``, ``iteration_stats``, ``divergence``,
  plus two engine-level types) in a bounded ring buffer with
  schema-versioned JSONL export and a crash-tolerant reader;
* :mod:`~repro.observe.counters` — numpy-backed counters/histograms in a
  global registry, with a single-flag disabled fast path;
* :func:`profile_scope` — wall-clock scopes on the hot paths (optimizer
  step, gradient averaging, broadcast, snapshot capture/restore, engine
  experiment execution), rendered by the CLI ``profile`` subcommand.

The layer is *numerically invisible* (it only reads already-computed
values; pinned by ``tests/test_golden_traces.py``) and cheap enough to
leave on (pinned by ``benchmarks/bench_observe_overhead.py``).
"""

from repro.observe.counters import (
    Counter,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    histogram,
    metrics_enabled,
    metrics_snapshot,
    set_metrics_enabled,
)
from repro.observe.events import (
    DETECTOR_FIRED,
    DIVERGENCE,
    EVENT_TYPES,
    EXPERIMENT_COMPLETED,
    EXPERIMENT_QUARANTINED,
    FAULT_INJECTED,
    ITERATION_STATS,
    ROLLBACK,
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    TraceFormatError,
    TraceSchemaError,
)
from repro.observe.profiler import (
    PROFILER,
    ProfileStat,
    Profiler,
    profile_scope,
    render_profile,
)
from repro.observe.tracer import NULL_TRACER, TraceFile, Tracer, read_trace

__all__ = [
    "DETECTOR_FIRED",
    "DIVERGENCE",
    "EVENT_TYPES",
    "EXPERIMENT_COMPLETED",
    "EXPERIMENT_QUARANTINED",
    "FAULT_INJECTED",
    "ITERATION_STATS",
    "NULL_TRACER",
    "PROFILER",
    "REGISTRY",
    "ROLLBACK",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ProfileStat",
    "Profiler",
    "TraceEvent",
    "TraceFile",
    "TraceFormatError",
    "TraceSchemaError",
    "Tracer",
    "counter",
    "histogram",
    "metrics_enabled",
    "metrics_snapshot",
    "profile_scope",
    "read_trace",
    "render_profile",
    "set_metrics_enabled",
]
