"""Trace analytics: paper-style reports from structured trace files.

Pure functions over trace events (a :class:`~repro.observe.TraceFile`
or a plain event list) that reconstruct the paper's campaign-level
results from one merged campaign trace instead of bespoke
per-benchmark reruns:

* :func:`propagation_summaries` — Fig. 4-style propagation stories per
  experiment (state-magnitude series, necessary-condition onsets,
  detection latency, rollbacks, divergence), reusing the condition
  analytics of :mod:`repro.core.analysis.propagation`;
* :func:`detection_latencies` / :func:`detection_latency_histogram` —
  Sec. 5.1 fault-to-detection latencies;
* :func:`condition_tallies` — Table 4 necessary-condition incidence and
  magnitude ranges per outcome;
* :func:`phase_vulnerability` — per-phase vulnerability breakdown (which
  third of training the fault hit vs. how it ended);
* :func:`campaign_summary` — everything above in one dict, the payload
  behind ``repro trace FILE --analyze``.

Every function is deterministic in the event payloads alone (wall-clock
timestamps and worker attribution stamps are ignored), so the same
experiment analyzed from a merged campaign trace and from a direct
single-run trace produces bit-identical results.
"""

from __future__ import annotations

from repro.core.analysis.propagation import (
    PropagationTrace,
    condition_magnitude_in_window,
    condition_onsets,
)
from repro.observe.events import (
    DETECTOR_FIRED,
    DIVERGENCE,
    EXPERIMENT_FINISHED,
    FAULT_INJECTED,
    ITERATION_STATS,
    ROLLBACK,
    TraceEvent,
)
from repro.observe.tracer import TraceFile

#: Outcome labels counted as benign in vulnerability breakdowns
#: (the Table 3 taxonomy's two masked classes plus the engine's toy
#: "ok"; everything else is unexpected).
BENIGN_OUTCOMES = frozenset({"masked_improved", "masked_slight_degrade",
                             "masked", "ok"})


def _events(trace) -> list[TraceEvent]:
    if isinstance(trace, TraceFile):
        return trace.events
    return list(trace)


def experiments(trace) -> dict[str | None, list[TraceEvent]]:
    """Group events by their experiment ``key`` stamp, order preserved.

    Events without a key (a direct, single-experiment trace) group under
    ``None``."""
    groups: dict[str | None, list[TraceEvent]] = {}
    for event in _events(trace):
        key = event.data.get("key")
        groups.setdefault(key if isinstance(key, str) else None,
                          []).append(event)
    return groups


def propagation_trace(trace) -> PropagationTrace:
    """Rebuild a :class:`PropagationTrace` from ``iteration_stats`` events.

    The trace events carry the two necessary-condition series (optimizer
    history and BatchNorm moving-statistic extrema); the weight/gradient
    series are not traced per iteration and are filled with zeros.
    """
    out = PropagationTrace()
    for event in _events(trace):
        if event.type != ITERATION_STATS or event.iteration is None:
            continue
        out.iterations.append(int(event.iteration))
        out.max_weight.append(0.0)
        out.max_gradient.append(0.0)
        out.max_history.append(float(event.data.get("history_magnitude")
                                     or 0.0))
        out.max_mvar.append(float(event.data.get("mvar_magnitude") or 0.0))
    return out


#: Fault attributes copied verbatim from a ``fault_injected`` event
#: (attribution stamps like key/worker/attempt are deliberately not
#: part of the summary, so engine and direct traces analyze alike).
_FAULT_FIELDS = ("device", "site", "kind", "op", "ff_category", "model",
                 "num_faulty", "max_abs_faulty")


def experiment_summary(events: list[TraceEvent],
                       condition_window: int = 2) -> dict:
    """One experiment's Fig. 4-style propagation story as a plain dict."""
    ptrace = propagation_trace(events)
    summary: dict = {
        "key": next((e.data["key"] for e in events
                     if isinstance(e.data.get("key"), str)), None),
        "iterations": [int(i) for i in ptrace.iterations],
        "loss": [float(e.data.get("loss", 0.0)) for e in events
                 if e.type == ITERATION_STATS],
        "max_history": [float(v) for v in ptrace.max_history],
        "max_mvar": [float(v) for v in ptrace.max_mvar],
        "fault": None,
        "onsets": [],
        "condition_window": {},
        "detections": [{"iteration": e.iteration,
                        "condition": e.data.get("condition"),
                        "magnitude": e.data.get("magnitude"),
                        "bound": e.data.get("bound")}
                       for e in events if e.type == DETECTOR_FIRED],
        "detection_latency": None,
        "rollbacks": [{"iteration": e.iteration,
                       "resume_iteration": e.data.get("resume_iteration"),
                       "strategy": e.data.get("strategy")}
                      for e in events if e.type == ROLLBACK],
        "divergence_at": next((e.iteration for e in events
                               if e.type == DIVERGENCE), None),
        "outcome": next((e.data.get("outcome") for e in events
                         if e.type == EXPERIMENT_FINISHED), None),
    }
    injected = next((e for e in events if e.type == FAULT_INJECTED), None)
    if injected is not None:
        fault_iteration = int(injected.iteration)
        summary["fault"] = {"iteration": fault_iteration,
                            **{f: injected.data.get(f)
                               for f in _FAULT_FIELDS}}
        summary["onsets"] = [
            {"condition": o.condition, "iteration": o.iteration,
             "magnitude": o.magnitude,
             "latency_from_fault": o.latency_from_fault}
            for o in condition_onsets(ptrace, fault_iteration)]
        summary["condition_window"] = condition_magnitude_in_window(
            ptrace, fault_iteration, window=condition_window)
        if summary["detections"]:
            summary["detection_latency"] = \
                int(summary["detections"][0]["iteration"]) - fault_iteration
    return summary


def propagation_summaries(trace, condition_window: int = 2) \
        -> dict[str | None, dict]:
    """Per-experiment Fig. 4-style summaries, keyed by experiment key."""
    return {key: experiment_summary(events, condition_window)
            for key, events in experiments(trace).items()}


def detection_latencies(trace) -> list[dict]:
    """Fault-to-first-detection latency per experiment (Sec. 5.1).

    Only experiments carrying a ``fault_injected`` event contribute; the
    latency is ``None`` for faults the detector never caught."""
    out = []
    for key, events in experiments(trace).items():
        injected = next((e for e in events if e.type == FAULT_INJECTED), None)
        if injected is None:
            continue
        fired = next((e for e in events if e.type == DETECTOR_FIRED), None)
        out.append({
            "key": key,
            "fault_iteration": int(injected.iteration),
            "detected_at": None if fired is None else int(fired.iteration),
            "latency": (None if fired is None
                        else int(fired.iteration) - int(injected.iteration)),
            "condition": None if fired is None else fired.data.get("condition"),
        })
    return out


def detection_latency_histogram(trace) -> dict[int, int]:
    """Detection-latency histogram: latency (iterations) -> count."""
    histogram: dict[int, int] = {}
    for row in detection_latencies(trace):
        if row["latency"] is not None:
            histogram[row["latency"]] = histogram.get(row["latency"], 0) + 1
    return dict(sorted(histogram.items()))


def condition_tallies(trace, window: int = 2) -> dict:
    """Table 4: necessary-condition incidence and magnitude ranges.

    For every experiment with a fault, the optimizer-history and mvar
    extrema within ``window`` iterations of the injection are tallied
    per outcome label, along with how many experiments had a condition
    onset inside that window (the paper's "within two training
    iterations" claim)."""
    by_outcome: dict[str, dict] = {}
    experiments_with_fault = 0
    onset_within_window = 0
    onset_any = 0
    for summary in propagation_summaries(trace, condition_window=window).values():
        if summary["fault"] is None:
            continue
        experiments_with_fault += 1
        if summary["onsets"]:
            onset_any += 1
            if any(o["latency_from_fault"] <= window
                   for o in summary["onsets"]):
                onset_within_window += 1
        outcome = summary["outcome"] or "unknown"
        tally = by_outcome.setdefault(outcome, {
            "count": 0, "condition_fired": 0,
            "history_range": None, "mvar_range": None})
        tally["count"] += 1
        if summary["onsets"]:
            tally["condition_fired"] += 1
        for field, name in (("max_history", "history_range"),
                            ("max_mvar", "mvar_range")):
            value = summary["condition_window"].get(field, 0.0)
            if value <= 0.0:
                continue
            lo, hi = tally[name] or (value, value)
            tally[name] = (min(lo, value), max(hi, value))
    return {
        "window": int(window),
        "experiments": experiments_with_fault,
        "onset_any": onset_any,
        "onset_within_window": onset_within_window,
        "by_outcome": dict(sorted(by_outcome.items())),
    }


def phase_vulnerability(trace, phases: int = 3) -> list[dict]:
    """Vulnerability by training phase of the injection (Fig. 5 flavor).

    The observed iteration range is split into ``phases`` equal spans;
    each experiment is bucketed by its fault iteration, and the bucket
    tallies outcomes (benign vs. unexpected, per
    :data:`BENIGN_OUTCOMES`) and detections."""
    if phases < 1:
        raise ValueError(f"phases must be >= 1: {phases}")
    summaries = [s for s in propagation_summaries(trace).values()
                 if s["fault"] is not None]
    max_iteration = 0
    for event in _events(trace):
        if event.iteration is not None:
            max_iteration = max(max_iteration, int(event.iteration))
    span = max(max_iteration + 1, 1)
    buckets = []
    for p in range(phases):
        start = p * span // phases
        end = (p + 1) * span // phases if p < phases - 1 else span
        buckets.append({"phase": p, "start": start, "end": end,
                        "experiments": 0, "unexpected": 0, "detected": 0,
                        "unexpected_rate": 0.0})
    for summary in summaries:
        it = summary["fault"]["iteration"]
        index = min(it * phases // span, phases - 1)
        bucket = buckets[index]
        bucket["experiments"] += 1
        if (summary["outcome"] or "unknown") not in BENIGN_OUTCOMES:
            bucket["unexpected"] += 1
        if summary["detections"]:
            bucket["detected"] += 1
    for bucket in buckets:
        if bucket["experiments"]:
            bucket["unexpected_rate"] = \
                bucket["unexpected"] / bucket["experiments"]
    return buckets


def campaign_summary(trace, condition_window: int = 2,
                     phases: int = 3) -> dict:
    """Everything the trace can tell about a campaign, in one dict."""
    groups = experiments(trace)
    latencies = detection_latencies(trace)
    detected = [r for r in latencies if r["latency"] is not None]
    outcomes: dict[str, int] = {}
    divergences = 0
    for events in groups.values():
        outcome = next((e.data.get("outcome") for e in events
                        if e.type == EXPERIMENT_FINISHED), None)
        if outcome is not None:
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        if any(e.type == DIVERGENCE for e in events):
            divergences += 1
    mean_latency = (sum(r["latency"] for r in detected) / len(detected)
                    if detected else None)
    return {
        "experiments": len(groups),
        "with_fault": len(latencies),
        "detected": len(detected),
        "mean_detection_latency": mean_latency,
        "latency_histogram": detection_latency_histogram(trace),
        "outcomes": dict(sorted(outcomes.items())),
        "divergences": divergences,
        "condition_tallies": condition_tallies(trace, window=condition_window),
        "phase_vulnerability": phase_vulnerability(trace, phases=phases),
    }
