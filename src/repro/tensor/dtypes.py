"""Reduced-precision floating point emulation on top of NumPy float32.

The accelerator modeled in this study (Sec. 3.1 of the paper) performs MAC
operations in bfloat16 and element-wise operations in FP32, which is a
common mixed-precision setting for training.  NumPy has no native bfloat16,
so we emulate it by rounding float32 values to the nearest value
representable in bfloat16 (8-bit exponent, 7-bit mantissa).

All functions here are pure and vectorized; they are the numerical
foundation used both by the mini DL framework (``repro.nn``) when mixed
precision is enabled, and by the bit-level fault models (``repro.tensor.bits``).
"""

from __future__ import annotations

import numpy as np

#: Largest finite float32 magnitude.  Values beyond this overflow to inf,
#: which is the mechanism behind the paper's INFs/NaNs outcomes.
FLOAT32_MAX = float(np.finfo(np.float32).max)

#: Largest finite bfloat16 magnitude (same exponent range as float32,
#: 7 mantissa bits): 0x7F7F -> 3.3895e38.
BFLOAT16_MAX = 3.3895313892515355e38

#: Number of mantissa bits dropped when truncating float32 to bfloat16.
_BF16_SHIFT = 16


def to_bfloat16(x: np.ndarray | float) -> np.ndarray:
    """Round float32 values to the nearest bfloat16-representable value.

    Uses round-to-nearest-even on the upper 16 bits of the IEEE-754
    float32 encoding, which is the standard hardware conversion.  The
    result is returned as float32 (the values are exactly representable).
    """
    arr = np.asarray(x, dtype=np.float32)
    bits = arr.view(np.uint32)
    # Round-to-nearest-even: add 0x7FFF plus the LSB of the surviving part.
    lsb = (bits >> _BF16_SHIFT) & np.uint32(1)
    rounded = bits + np.uint32(0x7FFF) + lsb
    truncated = rounded & np.uint32(0xFFFF0000)
    out = truncated.view(np.float32)
    # NaNs must stay NaNs (rounding could carry into the exponent field of
    # an inf/NaN encoding; restore them explicitly).
    nan_mask = np.isnan(arr)
    if np.any(nan_mask):
        out = np.where(nan_mask, np.float32(np.nan), out)
    return out


def to_float16(x: np.ndarray | float) -> np.ndarray:
    """Round float32 values through IEEE float16 and back.

    Not used by the default accelerator configuration but exposed so the
    precision-misconfiguration fault (Table 3: a fault flips the data
    precision configuration) has a second target format.
    """
    with np.errstate(over="ignore"):
        return np.asarray(x, dtype=np.float32).astype(np.float16).astype(np.float32)


def to_int16_saturating(x: np.ndarray | float) -> np.ndarray:
    """Interpret values through a saturating int16 datapath.

    Models the paper's example of an immediate-INF/NaN source: "a fault in
    one of these FFs causes int16 MAC operations to be performed instead of
    bfloat16 operations" (Sec. 4.2.1).  Results are cast back to float32.
    """
    arr = np.asarray(x, dtype=np.float32)
    clipped = np.clip(np.nan_to_num(arr, nan=0.0), -32768, 32767)
    return np.trunc(clipped).astype(np.float32)


class Precision:
    """Named precision modes for accelerator compute units."""

    FP32 = "fp32"
    BF16 = "bf16"
    FP16 = "fp16"
    INT16 = "int16"

    _CASTS = {
        FP32: lambda x: np.asarray(x, dtype=np.float32),
        BF16: to_bfloat16,
        FP16: to_float16,
        INT16: to_int16_saturating,
    }

    @classmethod
    def cast(cls, x: np.ndarray | float, mode: str) -> np.ndarray:
        """Quantize ``x`` according to the named precision mode."""
        try:
            fn = cls._CASTS[mode]
        except KeyError:
            raise ValueError(f"unknown precision mode: {mode!r}") from None
        return fn(x)

    @classmethod
    def modes(cls) -> tuple[str, ...]:
        return tuple(cls._CASTS)


def quantized_matmul(
    a: np.ndarray,
    b: np.ndarray,
    input_precision: str = Precision.BF16,
    accumulate_precision: str = Precision.FP32,
) -> np.ndarray:
    """Matrix multiply with accelerator-style mixed precision.

    Inputs are quantized to ``input_precision`` (bfloat16 by default, as in
    the paper's adopted NVDLA configuration), multiplied, and accumulated in
    ``accumulate_precision`` (FP32 by default).
    """
    aq = Precision.cast(a, input_precision)
    bq = Precision.cast(b, input_precision)
    out = aq.astype(np.float32) @ bq.astype(np.float32)
    return Precision.cast(out, accumulate_precision)


def saturate_to_inf(x: np.ndarray) -> np.ndarray:
    """Map float32 overflow (|x| > FLOAT32_MAX) to signed infinity.

    NumPy already produces inf on overflow within float32 arithmetic; this
    helper is used when faulty values are synthesized in float64 and need
    the float32 overflow semantics the accelerator would exhibit.
    """
    arr = np.asarray(x, dtype=np.float64)
    with np.errstate(over="ignore"):
        out = arr.astype(np.float32)
    big = np.abs(arr) > FLOAT32_MAX
    if np.any(big):
        out = np.where(big, np.sign(arr).astype(np.float32) * np.float32(np.inf), out)
    return np.asarray(out, dtype=np.float32)
