"""Numerics substrate: reduced-precision emulation and bit manipulation."""

from repro.tensor.bits import (
    bit_field,
    bits_to_float32,
    flip_bfloat16_bit,
    flip_float32_bit,
    float32_to_bits,
    is_upper_exponent_bit,
    random_float32_pattern,
)
from repro.tensor.dtypes import (
    BFLOAT16_MAX,
    FLOAT32_MAX,
    Precision,
    quantized_matmul,
    saturate_to_inf,
    to_bfloat16,
    to_float16,
    to_int16_saturating,
)

__all__ = [
    "BFLOAT16_MAX",
    "FLOAT32_MAX",
    "Precision",
    "bit_field",
    "bits_to_float32",
    "flip_bfloat16_bit",
    "flip_float32_bit",
    "float32_to_bits",
    "is_upper_exponent_bit",
    "quantized_matmul",
    "random_float32_pattern",
    "saturate_to_inf",
    "to_bfloat16",
    "to_float16",
    "to_int16_saturating",
]
