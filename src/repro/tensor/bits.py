"""Bit-level manipulation of floating point values.

The hardware fault model in the paper is a single-cycle bit flip in a
single flip-flop (Sec. 3.2.1).  When that flip-flop is a datapath register
holding a float value, the software-visible effect is a single flipped bit
in the IEEE-754 encoding of one tensor element.  This module provides the
bit-flip primitives for float32 and bfloat16 encodings, plus classification
of bit positions into fields (sign / exponent / mantissa), which Sec. 4.3.1
uses: bit flips in the upper two exponent bits contribute 31.9%-44.3% of
all unexpected outcomes.
"""

from __future__ import annotations

import numpy as np

#: Bit layout of IEEE-754 float32: 1 sign, 8 exponent, 23 mantissa.
FLOAT32_BITS = 32
FLOAT32_SIGN_BIT = 31
FLOAT32_EXPONENT_BITS = range(23, 31)  # bits 23..30, bit 30 is the MSB
FLOAT32_MANTISSA_BITS = range(0, 23)

#: bfloat16 keeps float32's sign and exponent and the top 7 mantissa bits.
BFLOAT16_BITS = 16
BFLOAT16_SIGN_BIT = 15
BFLOAT16_EXPONENT_BITS = range(7, 15)
BFLOAT16_MANTISSA_BITS = range(0, 7)


def float32_to_bits(x: np.ndarray | float) -> np.ndarray:
    """Return the uint32 IEEE-754 encoding of float32 values."""
    return np.asarray(x, dtype=np.float32).view(np.uint32)


def bits_to_float32(bits: np.ndarray | int) -> np.ndarray:
    """Return the float32 values encoded by uint32 bit patterns."""
    return np.asarray(bits, dtype=np.uint32).view(np.float32)


def flip_float32_bit(x: np.ndarray | float, bit: int) -> np.ndarray:
    """Flip one bit (0 = LSB of mantissa, 31 = sign) of float32 values."""
    if not 0 <= bit < FLOAT32_BITS:
        raise ValueError(f"float32 bit index out of range: {bit}")
    bits = float32_to_bits(x)
    return bits_to_float32(bits ^ np.uint32(1 << bit))


def flip_bfloat16_bit(x: np.ndarray | float, bit: int) -> np.ndarray:
    """Flip one bit of the bfloat16 encoding of float32 values.

    The value is first truncated to bfloat16 (as it would be inside a
    bfloat16 datapath register), then the requested bit of the 16-bit
    encoding is flipped, and the result is widened back to float32.
    """
    if not 0 <= bit < BFLOAT16_BITS:
        raise ValueError(f"bfloat16 bit index out of range: {bit}")
    bits = float32_to_bits(x) & np.uint32(0xFFFF0000)
    return bits_to_float32(bits ^ np.uint32(1 << (bit + 16)))


def bit_field(bit: int, fmt: str = "float32") -> str:
    """Classify a bit index as ``"sign"``, ``"exponent"``, or ``"mantissa"``."""
    if fmt == "float32":
        sign, exponent = FLOAT32_SIGN_BIT, FLOAT32_EXPONENT_BITS
    elif fmt == "bfloat16":
        sign, exponent = BFLOAT16_SIGN_BIT, BFLOAT16_EXPONENT_BITS
    else:
        raise ValueError(f"unknown float format: {fmt!r}")
    if bit == sign:
        return "sign"
    if bit in exponent:
        return "exponent"
    return "mantissa"


def is_upper_exponent_bit(bit: int, fmt: str = "float32", count: int = 2) -> bool:
    """True if ``bit`` is one of the ``count`` most significant exponent bits.

    Sec. 4.3.1: "bit-flips that correspond to the upper two exponent bits
    (5.5% of all FFs) contribute to 31.9%-44.3% of all unexpected outcomes".
    """
    if fmt == "float32":
        exponent = FLOAT32_EXPONENT_BITS
    elif fmt == "bfloat16":
        exponent = BFLOAT16_EXPONENT_BITS
    else:
        raise ValueError(f"unknown float format: {fmt!r}")
    top = list(exponent)[-count:]
    return bit in top


def random_float32_pattern(rng: np.random.Generator, size: int | tuple = ()) -> np.ndarray:
    """Sample uniformly random float32 bit patterns.

    Used by Table 1 fault-model groups 1 and 3: "random faulty values that
    can span the entire data precision dynamic range".  Patterns that decode
    to NaN are re-encoded as signed infinity with probability 1/2 to keep a
    mix of INFs and NaNs (both occur in hardware; both are modeled).
    """
    bits = rng.integers(0, 2**32, size=size, dtype=np.uint64).astype(np.uint32)
    return bits_to_float32(bits)
