"""Tests for the Table 1 software fault models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.ffs import FFDescriptor
from repro.core.faults.software_models import (
    GLOBAL_GROUP_MODELS,
    DatapathBitFlip,
    Group1RandomOutputs,
    Group2ZeroOutputs,
    Group3SingleLaneRandom,
    Group4WrongOutputAddress,
    Group5WrongInput1Address,
    Group7ZeroInput1,
    Group9StaleInput1,
    LocalControlFault,
    all_model_names,
    model_for_ff,
)
from repro.tensor.bits import float32_to_bits


@pytest.fixture
def tensor(rng):
    return rng.normal(size=(2, 24, 4, 4)).astype(np.float32)


def global_ff(group, feedback=True):
    return FFDescriptor("global_control", group=group, has_feedback=feedback)


class TestRecordConsistency:
    @pytest.mark.parametrize("group", sorted(GLOBAL_GROUP_MODELS))
    def test_record_matches_tensor_change(self, group, tensor):
        rng = np.random.default_rng(group)
        model = GLOBAL_GROUP_MODELS[group]()
        faulty, record = model.apply(tensor, rng, global_ff(group))
        flat_faulty = faulty.reshape(-1)
        flat_orig = tensor.reshape(-1)
        # Everything outside recorded positions is untouched.
        mask = np.ones(tensor.size, dtype=bool)
        mask[record.positions] = False
        assert np.array_equal(flat_faulty[mask], flat_orig[mask])
        # Recorded faulty values match the tensor (NaN-safe).
        got = flat_faulty[record.positions]
        assert np.array_equal(got, record.faulty_values, equal_nan=True)

    @pytest.mark.parametrize("group", sorted(GLOBAL_GROUP_MODELS))
    def test_original_tensor_not_mutated(self, group, tensor):
        rng = np.random.default_rng(group)
        copy = tensor.copy()
        GLOBAL_GROUP_MODELS[group]().apply(tensor, rng, global_ff(group))
        assert np.array_equal(tensor, copy)

    def test_non_contiguous_input_handled(self, rng):
        """Regression test: conv weight gradients arrive as non-contiguous
        views (dw.T.reshape); faults must still be written."""
        base = rng.normal(size=(72, 16)).astype(np.float32)
        tensor = base.T.reshape(16, 8, 3, 3)
        assert not tensor.flags["C_CONTIGUOUS"]
        model = Group1RandomOutputs()
        faulty, record = model.apply(tensor, np.random.default_rng(3), global_ff(1))
        got = faulty.reshape(-1)[record.positions]
        assert np.array_equal(got, record.faulty_values, equal_nan=True)


class TestGroupSemantics:
    def test_group1_random_dynamic_range(self, tensor):
        hit_large = False
        for seed in range(20):
            _, record = Group1RandomOutputs().apply(
                tensor, np.random.default_rng(seed), global_ff(1)
            )
            if record.max_abs_faulty() > 1e20:
                hit_large = True
        assert hit_large  # random patterns span the dynamic range

    def test_group2_zeros(self, tensor):
        faulty, record = Group2ZeroOutputs().apply(
            tensor, np.random.default_rng(1), global_ff(2)
        )
        assert np.all(record.faulty_values == 0.0)
        assert record.num_faulty >= 16

    def test_group3_single_lane(self, tensor):
        _, record = Group3SingleLaneRandom().apply(
            tensor, np.random.default_rng(2), global_ff(3)
        )
        # At most one element per cycle: n_cycles bounds the count.
        assert record.num_faulty <= record.n_cycles

    def test_group4_moves_block(self, tensor):
        faulty, record = Group4WrongOutputAddress().apply(
            tensor, np.random.default_rng(3), global_ff(4)
        )
        # Holes (zeros) plus destinations: record covers both.
        assert record.num_faulty >= 32
        # The intended locations were never written: zeros.
        half = record.num_faulty // 2
        holes = record.positions[:half]
        assert np.all(faulty.reshape(-1)[holes] == 0.0)

    def test_group5_values_from_same_tensor(self, tensor):
        faulty, record = Group5WrongInput1Address().apply(
            tensor, np.random.default_rng(4), global_ff(5)
        )
        values = set(tensor.reshape(-1).tolist())
        assert all(float(v) in values for v in record.faulty_values)

    def test_group7_attenuates_with_fan_in(self, tensor):
        faulty, record = Group7ZeroInput1().apply(
            tensor, np.random.default_rng(5), global_ff(7, feedback=False),
            fan_in=128,
        )
        orig = record.original_values
        got = record.faulty_values
        ratios = got[orig != 0] / orig[orig != 0]
        assert np.all(ratios >= 0.0)
        assert np.all(ratios <= 1.0 + 1e-6)

    def test_group7_without_fan_in_zeroes(self, tensor):
        _, record = Group7ZeroInput1().apply(
            tensor, np.random.default_rng(6), global_ff(7), fan_in=None
        )
        assert np.all(record.faulty_values == 0.0)

    def test_group9_in_distribution(self, tensor):
        _, record = Group9StaleInput1().apply(
            tensor, np.random.default_rng(7), global_ff(9)
        )
        assert record.max_abs_faulty() <= np.abs(tensor).max() + 1e-6


class TestDatapathAndLocal:
    def test_datapath_single_element_bit_flip(self, tensor):
        ff = FFDescriptor("datapath", bit=30)
        faulty, record = DatapathBitFlip().apply(tensor, np.random.default_rng(1), ff)
        if record.num_faulty:  # lane may be masked
            assert record.num_faulty == 1
            orig_bits = float32_to_bits(record.original_values)
            new_bits = float32_to_bits(record.faulty_values)
            assert (orig_bits ^ new_bits) == np.uint32(1 << 30)

    def test_datapath_lane_masking(self):
        """A lane index beyond the tensor's channels produces no faulty
        elements — hardware masking of the bit flip."""
        tensor = np.ones((1, 4, 2, 2), dtype=np.float32)  # 4 channels < 16 lanes
        masked = 0
        for seed in range(40):
            _, record = DatapathBitFlip().apply(
                tensor, np.random.default_rng(seed), FFDescriptor("datapath", bit=5)
            )
            if record.num_faulty == 0:
                masked += 1
        assert masked > 0

    def test_local_control_random_value(self, tensor):
        ff = FFDescriptor("local_control", has_feedback=True)
        _, record = LocalControlFault().apply(tensor, np.random.default_rng(3), ff)
        assert record.num_faulty <= record.n_cycles


class TestDispatch:
    def test_model_for_ff(self):
        assert isinstance(model_for_ff(FFDescriptor("datapath", bit=1)), DatapathBitFlip)
        assert isinstance(model_for_ff(FFDescriptor("local_control")), LocalControlFault)
        assert isinstance(model_for_ff(global_ff(2)), Group2ZeroOutputs)
        with pytest.raises(ValueError):
            model_for_ff(FFDescriptor("global_control", group=11))
        with pytest.raises(ValueError):
            model_for_ff(FFDescriptor("bogus"))

    def test_all_model_names(self):
        names = all_model_names()
        assert "datapath" in names and "group10" in names
        assert len(names) == 12


class TestDeterminism:
    @given(st.integers(0, 1000), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_fault(self, seed, group):
        rng_data = np.random.default_rng(99)
        tensor = rng_data.normal(size=(1, 20, 3, 3)).astype(np.float32)
        model = GLOBAL_GROUP_MODELS[group]()
        f1, r1 = model.apply(tensor, np.random.default_rng(seed), global_ff(group))
        f2, r2 = model.apply(tensor, np.random.default_rng(seed), global_ff(group))
        assert np.array_equal(f1, f2, equal_nan=True)
        assert np.array_equal(r1.positions, r2.positions)

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_positions_always_in_bounds(self, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(int(rng.integers(1, 6)) for _ in range(int(rng.integers(1, 5))))
        tensor = rng.normal(size=shape).astype(np.float32)
        group = int(rng.integers(1, 11))
        model = GLOBAL_GROUP_MODELS[group]()
        _, record = model.apply(tensor, rng, global_ff(group))
        if record.num_faulty:
            assert record.positions.min() >= 0
            assert record.positions.max() < tensor.size


class TestPrecisionConfigFault:
    def test_small_values_quantized(self, rng):
        """Small activations pass through the int16 path distorted but
        finite (quantized to the fixed-point grid)."""
        from repro.core.faults.software_models import PrecisionConfigFault

        tensor = rng.normal(size=(1, 16, 4, 4)).astype(np.float32) * 0.01
        model = PrecisionConfigFault()
        faulty, record = model.apply(
            tensor, np.random.default_rng(1),
            FFDescriptor("global_control", group=1, has_feedback=True),
        )
        assert record.num_faulty >= 16
        assert np.all(np.isfinite(record.faulty_values))
        # Quantization grid: multiples of SCALE * 1 / SCALE = 1... values
        # are SCALE * int(x * SCALE) -> multiples of SCALE.
        assert np.all(record.faulty_values % 1.0 == 0)

    def test_large_values_hit_the_rails(self, rng):
        """Pre-scaled large values saturate at +-32767 and the FP32
        rescale amplifies them — the overflow path of Sec. 4.2.1."""
        from repro.core.faults.software_models import PrecisionConfigFault

        tensor = (rng.normal(size=(1, 16, 4, 4)) * 1e4).astype(np.float32)
        model = PrecisionConfigFault()
        _, record = model.apply(
            tensor, np.random.default_rng(2),
            FFDescriptor("global_control", group=1, has_feedback=True),
        )
        rail = 32767.0 * PrecisionConfigFault.SCALE
        assert np.abs(record.faulty_values).max() == pytest.approx(rail, rel=1e-4)


class TestConservationProperties:
    @given(st.integers(0, 2000))
    @settings(max_examples=30, deadline=None)
    def test_group4_conserves_moved_values(self, seed):
        """Group 4 moves values to wrong addresses: every non-zero faulty
        value written somewhere was an original value somewhere else (the
        data is displaced, not fabricated)."""
        from repro.core.faults.software_models import Group4WrongOutputAddress

        rng_data = np.random.default_rng(7)
        tensor = rng_data.normal(size=(1, 20, 3, 3)).astype(np.float32) + 5.0
        faulty, record = Group4WrongOutputAddress().apply(
            tensor, np.random.default_rng(seed), global_ff(4)
        )
        originals = set(tensor.reshape(-1).tolist())
        for value in record.faulty_values:
            v = float(value)
            assert v == 0.0 or v in originals

    @given(st.integers(0, 2000))
    @settings(max_examples=30, deadline=None)
    def test_group2_faulty_count_matches_cycle_geometry(self, seed):
        """Group 2's zeroed-element count is always a whole number of
        lane bursts (full cycles), clipped at the schedule end."""
        from repro.core.faults.software_models import Group2ZeroOutputs

        rng_data = np.random.default_rng(11)
        tensor = rng_data.normal(size=(2, 16, 3, 3)).astype(np.float32)
        _, record = Group2ZeroOutputs().apply(
            tensor, np.random.default_rng(seed), global_ff(2)
        )
        # 16 channels = exactly one full lane group per cycle.
        assert record.num_faulty % 16 == 0
        assert record.num_faulty <= 16 * record.n_cycles
