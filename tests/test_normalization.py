"""Tests for BatchNorm / LayerNorm, with emphasis on the moving-variance
history term at the center of the paper's analysis."""

import numpy as np
import pytest

from repro import nn
from repro.nn.normalization import batchnorm_layers, max_moving_variance
from tests.conftest import directional_gradcheck


class TestBatchNormForward:
    def test_normalizes_in_training(self, rng):
        bn = nn.BatchNorm(4)
        x = rng.normal(3.0, 2.0, size=(64, 4)).astype(np.float32)
        out = bn.forward(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-4)
        assert np.allclose(out.var(axis=0), 1.0, atol=1e-2)

    def test_4d_normalizes_per_channel(self, rng):
        bn = nn.BatchNorm(3)
        x = rng.normal(1.0, 3.0, size=(8, 3, 6, 6)).astype(np.float32)
        out = bn.forward(x)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)

    def test_moving_stats_update_formula(self, rng):
        """mvar_t = decay * mvar_{t-1} + (1-decay) * batch_var — the exact
        history-term recurrence of Sec. 4.2.2."""
        bn = nn.BatchNorm(2, momentum=0.9)
        x = rng.normal(0.0, 2.0, size=(128, 2)).astype(np.float32)
        prev_var = bn.moving_var.copy()
        bn.forward(x)
        expected = 0.9 * prev_var + 0.1 * x.var(axis=0)
        assert np.allclose(bn.moving_var, expected, rtol=1e-5)

    def test_eval_uses_moving_stats(self, rng):
        bn = nn.BatchNorm(2)
        x = rng.normal(size=(64, 2)).astype(np.float32)
        for _ in range(50):
            bn.forward(x)
        bn.training = False
        out_eval = bn.forward(x)
        mean, var = bn.moving_mean, bn.moving_var
        ref = (x - mean) / np.sqrt(var + bn.eps)
        assert np.allclose(out_eval, ref, atol=1e-4)

    def test_eval_does_not_update_stats(self, rng):
        bn = nn.BatchNorm(2)
        bn.training = False
        before = bn.moving_var.copy()
        bn.forward(rng.normal(size=(16, 2)).astype(np.float32))
        assert np.array_equal(bn.moving_var, before)

    def test_corrupted_mvar_degrades_eval_only(self, rng):
        """The LowTestAccuracy mechanism: a huge mvar leaves training-mode
        outputs untouched but destroys eval-mode outputs."""
        bn = nn.BatchNorm(2)
        x = rng.normal(size=(32, 2)).astype(np.float32)
        train_out = bn.forward(x)
        bn.moving_var[:] = 1e30
        train_out2 = bn.forward(x)
        assert np.allclose(train_out, train_out2, atol=1e-5)
        bn.training = False
        eval_out = bn.forward(x)
        # Outputs collapse toward beta (≈0): everything normalized away.
        assert np.abs(eval_out).max() < 1e-3

    def test_overflow_produces_inf_mvar(self):
        """Float32 overflow semantics: huge inputs overflow the variance,
        as on the accelerator (short-term INFs/NaNs precondition)."""
        bn = nn.BatchNorm(1)
        x = np.full((8, 1), 1e30, dtype=np.float32)
        x[0] = -1e30
        bn.forward(x)
        assert np.isinf(bn.moving_var[0])
        assert bn.history_magnitude() == float("inf")


class TestBatchNormBackward:
    def test_gradcheck_2d(self, rng):
        model = nn.Sequential(nn.Dense(4, 6, rng), nn.BatchNorm(6), nn.Tanh(),
                              nn.Dense(6, 3, rng))
        x = rng.normal(size=(16, 4)).astype(np.float32)
        y = rng.integers(0, 3, size=16)
        assert directional_gradcheck(model, x, nn.SoftmaxCrossEntropy(), y, rng) < 0.02

    def test_gradcheck_4d(self, rng):
        model = nn.Sequential(nn.Conv2D(2, 4, 3, rng), nn.BatchNorm(4), nn.Tanh(),
                              nn.GlobalAvgPool2D(), nn.Dense(4, 3, rng))
        x = rng.normal(size=(6, 2, 5, 5)).astype(np.float32)
        y = rng.integers(0, 3, size=6)
        assert directional_gradcheck(model, x, nn.SoftmaxCrossEntropy(), y, rng) < 0.02

    def test_invalid_ndim(self):
        bn = nn.BatchNorm(2)
        with pytest.raises(ValueError):
            bn.forward(np.zeros((2, 2, 2), np.float32))


class TestBatchNormState:
    def test_extra_state_round_trip(self, rng):
        bn = nn.BatchNorm(3)
        bn.forward(rng.normal(size=(16, 3)).astype(np.float32))
        state = {k: v.copy() for k, v in bn.extra_state().items()}
        bn.forward(rng.normal(size=(16, 3)).astype(np.float32))
        bn.load_extra_state(state)
        assert np.array_equal(bn.moving_var, state["moving_var"])

    def test_history_magnitude(self):
        bn = nn.BatchNorm(2)
        bn.moving_var[:] = [2.0, 5.0]
        bn.moving_mean[:] = [-7.0, 1.0]
        assert bn.history_magnitude() == 7.0


class TestModelHelpers:
    def test_batchnorm_layers_found(self, rng):
        model = nn.Sequential(nn.ResidualBlock(4, 8, rng, stride=2))
        layers = batchnorm_layers(model)
        assert len(layers) == 3  # bn1, bn2, proj_bn

    def test_max_moving_variance_no_bn(self, rng):
        model = nn.Sequential(nn.Dense(4, 4, rng))
        assert max_moving_variance(model) == 0.0

    def test_max_moving_variance(self, rng):
        model = nn.Sequential(nn.BatchNorm(2), nn.BatchNorm(2))
        model.layers[1].moving_var[:] = 42.0
        assert max_moving_variance(model) == 42.0


class TestLayerNorm:
    def test_normalizes_last_dim(self, rng):
        ln = nn.LayerNorm(8)
        x = rng.normal(2.0, 4.0, size=(4, 6, 8)).astype(np.float32)
        out = ln.forward(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-2)

    def test_no_history_terms(self):
        """LayerNorm has no moving statistics: the mvar necessary condition
        is structurally impossible in pure-LayerNorm workloads."""
        ln = nn.LayerNorm(4)
        assert ln.extra_state() == {}

    def test_gradcheck(self, rng):
        model = nn.Sequential(nn.Dense(5, 8, rng), nn.LayerNorm(8), nn.Tanh(),
                              nn.Dense(8, 3, rng))
        x = rng.normal(size=(10, 5)).astype(np.float32)
        y = rng.integers(0, 3, size=10)
        assert directional_gradcheck(model, x, nn.SoftmaxCrossEntropy(), y, rng) < 0.02
